/root/repo/target/release/deps/slpmt_annotate-fd8ae2858d719c85.d: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs

/root/repo/target/release/deps/libslpmt_annotate-fd8ae2858d719c85.rlib: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs

/root/repo/target/release/deps/libslpmt_annotate-fd8ae2858d719c85.rmeta: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs

crates/annotate/src/lib.rs:
crates/annotate/src/analysis.rs:
crates/annotate/src/ir.rs:
crates/annotate/src/table.rs:
