/root/repo/target/release/deps/slpmt_bench-ec112e5cf55f747c.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libslpmt_bench-ec112e5cf55f747c.rlib: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libslpmt_bench-ec112e5cf55f747c.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
