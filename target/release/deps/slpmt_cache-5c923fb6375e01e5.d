/root/repo/target/release/deps/slpmt_cache-5c923fb6375e01e5.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libslpmt_cache-5c923fb6375e01e5.rlib: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libslpmt_cache-5c923fb6375e01e5.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/meta.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
