/root/repo/target/release/deps/slpmt_logbuf-a3fa7bc96bd64fc4.d: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs

/root/repo/target/release/deps/libslpmt_logbuf-a3fa7bc96bd64fc4.rlib: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs

/root/repo/target/release/deps/libslpmt_logbuf-a3fa7bc96bd64fc4.rmeta: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs

crates/logbuf/src/lib.rs:
crates/logbuf/src/atom.rs:
crates/logbuf/src/ede.rs:
crates/logbuf/src/record.rs:
crates/logbuf/src/tiered.rs:
