/root/repo/target/release/deps/ablation-95a7cb7b3a20b2aa.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-95a7cb7b3a20b2aa: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
