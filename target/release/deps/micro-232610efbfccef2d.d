/root/repo/target/release/deps/micro-232610efbfccef2d.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-232610efbfccef2d: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
