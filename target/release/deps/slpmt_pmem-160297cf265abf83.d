/root/repo/target/release/deps/slpmt_pmem-160297cf265abf83.d: crates/pmem/src/lib.rs crates/pmem/src/addr.rs crates/pmem/src/config.rs crates/pmem/src/device.rs crates/pmem/src/heap.rs crates/pmem/src/log_region.rs crates/pmem/src/payload.rs crates/pmem/src/space.rs crates/pmem/src/stats.rs crates/pmem/src/wpq.rs

/root/repo/target/release/deps/libslpmt_pmem-160297cf265abf83.rlib: crates/pmem/src/lib.rs crates/pmem/src/addr.rs crates/pmem/src/config.rs crates/pmem/src/device.rs crates/pmem/src/heap.rs crates/pmem/src/log_region.rs crates/pmem/src/payload.rs crates/pmem/src/space.rs crates/pmem/src/stats.rs crates/pmem/src/wpq.rs

/root/repo/target/release/deps/libslpmt_pmem-160297cf265abf83.rmeta: crates/pmem/src/lib.rs crates/pmem/src/addr.rs crates/pmem/src/config.rs crates/pmem/src/device.rs crates/pmem/src/heap.rs crates/pmem/src/log_region.rs crates/pmem/src/payload.rs crates/pmem/src/space.rs crates/pmem/src/stats.rs crates/pmem/src/wpq.rs

crates/pmem/src/lib.rs:
crates/pmem/src/addr.rs:
crates/pmem/src/config.rs:
crates/pmem/src/device.rs:
crates/pmem/src/heap.rs:
crates/pmem/src/log_region.rs:
crates/pmem/src/payload.rs:
crates/pmem/src/space.rs:
crates/pmem/src/stats.rs:
crates/pmem/src/wpq.rs:
