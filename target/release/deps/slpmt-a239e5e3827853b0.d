/root/repo/target/release/deps/slpmt-a239e5e3827853b0.d: src/bin/slpmt.rs

/root/repo/target/release/deps/slpmt-a239e5e3827853b0: src/bin/slpmt.rs

src/bin/slpmt.rs:
