/root/repo/target/release/deps/slpmt-8dc8dbba4788b515.d: src/lib.rs

/root/repo/target/release/deps/libslpmt-8dc8dbba4788b515.rlib: src/lib.rs

/root/repo/target/release/deps/libslpmt-8dc8dbba4788b515.rmeta: src/lib.rs

src/lib.rs:
