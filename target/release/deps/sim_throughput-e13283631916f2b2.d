/root/repo/target/release/deps/sim_throughput-e13283631916f2b2.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/release/deps/sim_throughput-e13283631916f2b2: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
