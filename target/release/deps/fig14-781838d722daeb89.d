/root/repo/target/release/deps/fig14-781838d722daeb89.d: crates/bench/benches/fig14.rs

/root/repo/target/release/deps/fig14-781838d722daeb89: crates/bench/benches/fig14.rs

crates/bench/benches/fig14.rs:
