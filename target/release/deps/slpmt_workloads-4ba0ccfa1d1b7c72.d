/root/repo/target/release/deps/slpmt_workloads-4ba0ccfa1d1b7c72.d: crates/workloads/src/lib.rs crates/workloads/src/avl.rs crates/workloads/src/ctx.rs crates/workloads/src/hashtable.rs crates/workloads/src/heap.rs crates/workloads/src/inspector.rs crates/workloads/src/kv/mod.rs crates/workloads/src/kv/btree.rs crates/workloads/src/kv/ctree.rs crates/workloads/src/kv/rtree.rs crates/workloads/src/kv/skiplist.rs crates/workloads/src/rbtree.rs crates/workloads/src/runner.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libslpmt_workloads-4ba0ccfa1d1b7c72.rlib: crates/workloads/src/lib.rs crates/workloads/src/avl.rs crates/workloads/src/ctx.rs crates/workloads/src/hashtable.rs crates/workloads/src/heap.rs crates/workloads/src/inspector.rs crates/workloads/src/kv/mod.rs crates/workloads/src/kv/btree.rs crates/workloads/src/kv/ctree.rs crates/workloads/src/kv/rtree.rs crates/workloads/src/kv/skiplist.rs crates/workloads/src/rbtree.rs crates/workloads/src/runner.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libslpmt_workloads-4ba0ccfa1d1b7c72.rmeta: crates/workloads/src/lib.rs crates/workloads/src/avl.rs crates/workloads/src/ctx.rs crates/workloads/src/hashtable.rs crates/workloads/src/heap.rs crates/workloads/src/inspector.rs crates/workloads/src/kv/mod.rs crates/workloads/src/kv/btree.rs crates/workloads/src/kv/ctree.rs crates/workloads/src/kv/rtree.rs crates/workloads/src/kv/skiplist.rs crates/workloads/src/rbtree.rs crates/workloads/src/runner.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/avl.rs:
crates/workloads/src/ctx.rs:
crates/workloads/src/hashtable.rs:
crates/workloads/src/heap.rs:
crates/workloads/src/inspector.rs:
crates/workloads/src/kv/mod.rs:
crates/workloads/src/kv/btree.rs:
crates/workloads/src/kv/ctree.rs:
crates/workloads/src/kv/rtree.rs:
crates/workloads/src/kv/skiplist.rs:
crates/workloads/src/rbtree.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/ycsb.rs:
