/root/repo/target/release/deps/fig08-83b7a1feaa71578f.d: crates/bench/benches/fig08.rs

/root/repo/target/release/deps/fig08-83b7a1feaa71578f: crates/bench/benches/fig08.rs

crates/bench/benches/fig08.rs:
