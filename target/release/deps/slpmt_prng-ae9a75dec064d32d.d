/root/repo/target/release/deps/slpmt_prng-ae9a75dec064d32d.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/libslpmt_prng-ae9a75dec064d32d.rlib: crates/prng/src/lib.rs

/root/repo/target/release/deps/libslpmt_prng-ae9a75dec064d32d.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
