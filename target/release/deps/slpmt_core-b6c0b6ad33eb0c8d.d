/root/repo/target/release/deps/slpmt_core-b6c0b6ad33eb0c8d.d: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs

/root/repo/target/release/deps/libslpmt_core-b6c0b6ad33eb0c8d.rlib: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs

/root/repo/target/release/deps/libslpmt_core-b6c0b6ad33eb0c8d.rmeta: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs

crates/core/src/lib.rs:
crates/core/src/instr.rs:
crates/core/src/machine.rs:
crates/core/src/overhead.rs:
crates/core/src/recovery.rs:
crates/core/src/scheme.rs:
crates/core/src/signature.rs:
crates/core/src/stats.rs:
crates/core/src/txreg.rs:
