/root/repo/target/debug/examples/compiler_pass-74bc004c1aa1b972.d: examples/compiler_pass.rs

/root/repo/target/debug/examples/compiler_pass-74bc004c1aa1b972: examples/compiler_pass.rs

examples/compiler_pass.rs:
