/root/repo/target/debug/examples/quickstart-0743a59ee92a29eb.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0743a59ee92a29eb.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
