/root/repo/target/debug/examples/probe2-9c3846e0d5d73394.d: crates/workloads/examples/probe2.rs

/root/repo/target/debug/examples/probe2-9c3846e0d5d73394: crates/workloads/examples/probe2.rs

crates/workloads/examples/probe2.rs:
