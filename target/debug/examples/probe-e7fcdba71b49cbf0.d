/root/repo/target/debug/examples/probe-e7fcdba71b49cbf0.d: crates/workloads/examples/probe.rs Cargo.toml

/root/repo/target/debug/examples/libprobe-e7fcdba71b49cbf0.rmeta: crates/workloads/examples/probe.rs Cargo.toml

crates/workloads/examples/probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
