/root/repo/target/debug/examples/multithread-aba938b33e813246.d: examples/multithread.rs

/root/repo/target/debug/examples/multithread-aba938b33e813246: examples/multithread.rs

examples/multithread.rs:
