/root/repo/target/debug/examples/probe3-fc7a4cbdda795b54.d: crates/workloads/examples/probe3.rs Cargo.toml

/root/repo/target/debug/examples/libprobe3-fc7a4cbdda795b54.rmeta: crates/workloads/examples/probe3.rs Cargo.toml

crates/workloads/examples/probe3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
