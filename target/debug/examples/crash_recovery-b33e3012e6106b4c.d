/root/repo/target/debug/examples/crash_recovery-b33e3012e6106b4c.d: examples/crash_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libcrash_recovery-b33e3012e6106b4c.rmeta: examples/crash_recovery.rs Cargo.toml

examples/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
