/root/repo/target/debug/examples/inplace_update-95606bdbad573b64.d: examples/inplace_update.rs Cargo.toml

/root/repo/target/debug/examples/libinplace_update-95606bdbad573b64.rmeta: examples/inplace_update.rs Cargo.toml

examples/inplace_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
