/root/repo/target/debug/examples/probe3-af6ea2965e3c6a4f.d: crates/workloads/examples/probe3.rs

/root/repo/target/debug/examples/probe3-af6ea2965e3c6a4f: crates/workloads/examples/probe3.rs

crates/workloads/examples/probe3.rs:
