/root/repo/target/debug/examples/quickstart-bf34ad1b6e1a43bf.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bf34ad1b6e1a43bf: examples/quickstart.rs

examples/quickstart.rs:
