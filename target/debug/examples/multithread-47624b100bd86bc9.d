/root/repo/target/debug/examples/multithread-47624b100bd86bc9.d: examples/multithread.rs Cargo.toml

/root/repo/target/debug/examples/libmultithread-47624b100bd86bc9.rmeta: examples/multithread.rs Cargo.toml

examples/multithread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
