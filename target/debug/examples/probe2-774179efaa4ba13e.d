/root/repo/target/debug/examples/probe2-774179efaa4ba13e.d: crates/workloads/examples/probe2.rs Cargo.toml

/root/repo/target/debug/examples/libprobe2-774179efaa4ba13e.rmeta: crates/workloads/examples/probe2.rs Cargo.toml

crates/workloads/examples/probe2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
