/root/repo/target/debug/examples/probe-9a8d0d93ff7da29f.d: crates/workloads/examples/probe.rs

/root/repo/target/debug/examples/probe-9a8d0d93ff7da29f: crates/workloads/examples/probe.rs

crates/workloads/examples/probe.rs:
