/root/repo/target/debug/examples/inplace_update-4dd7c468e633f0a5.d: examples/inplace_update.rs

/root/repo/target/debug/examples/inplace_update-4dd7c468e633f0a5: examples/inplace_update.rs

examples/inplace_update.rs:
