/root/repo/target/debug/examples/compiler_pass-ef0d7ed8cb0a74ef.d: examples/compiler_pass.rs Cargo.toml

/root/repo/target/debug/examples/libcompiler_pass-ef0d7ed8cb0a74ef.rmeta: examples/compiler_pass.rs Cargo.toml

examples/compiler_pass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
