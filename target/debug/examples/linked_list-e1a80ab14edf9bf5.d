/root/repo/target/debug/examples/linked_list-e1a80ab14edf9bf5.d: examples/linked_list.rs Cargo.toml

/root/repo/target/debug/examples/liblinked_list-e1a80ab14edf9bf5.rmeta: examples/linked_list.rs Cargo.toml

examples/linked_list.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
