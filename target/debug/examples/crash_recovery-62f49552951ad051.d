/root/repo/target/debug/examples/crash_recovery-62f49552951ad051.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-62f49552951ad051: examples/crash_recovery.rs

examples/crash_recovery.rs:
