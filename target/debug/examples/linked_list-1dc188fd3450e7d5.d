/root/repo/target/debug/examples/linked_list-1dc188fd3450e7d5.d: examples/linked_list.rs

/root/repo/target/debug/examples/linked_list-1dc188fd3450e7d5: examples/linked_list.rs

examples/linked_list.rs:
