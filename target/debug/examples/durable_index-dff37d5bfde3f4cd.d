/root/repo/target/debug/examples/durable_index-dff37d5bfde3f4cd.d: examples/durable_index.rs Cargo.toml

/root/repo/target/debug/examples/libdurable_index-dff37d5bfde3f4cd.rmeta: examples/durable_index.rs Cargo.toml

examples/durable_index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
