/root/repo/target/debug/examples/durable_index-dac5af5d387fc7d3.d: examples/durable_index.rs

/root/repo/target/debug/examples/durable_index-dac5af5d387fc7d3: examples/durable_index.rs

examples/durable_index.rs:
