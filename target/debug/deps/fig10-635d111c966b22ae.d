/root/repo/target/debug/deps/fig10-635d111c966b22ae.d: crates/bench/benches/fig10.rs

/root/repo/target/debug/deps/fig10-635d111c966b22ae: crates/bench/benches/fig10.rs

crates/bench/benches/fig10.rs:
