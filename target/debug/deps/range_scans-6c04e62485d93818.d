/root/repo/target/debug/deps/range_scans-6c04e62485d93818.d: tests/range_scans.rs

/root/repo/target/debug/deps/range_scans-6c04e62485d93818: tests/range_scans.rs

tests/range_scans.rs:
