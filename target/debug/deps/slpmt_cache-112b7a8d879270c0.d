/root/repo/target/debug/deps/slpmt_cache-112b7a8d879270c0.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libslpmt_cache-112b7a8d879270c0.rlib: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libslpmt_cache-112b7a8d879270c0.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/meta.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
