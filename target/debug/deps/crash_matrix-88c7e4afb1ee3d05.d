/root/repo/target/debug/deps/crash_matrix-88c7e4afb1ee3d05.d: crates/core/tests/crash_matrix.rs

/root/repo/target/debug/deps/crash_matrix-88c7e4afb1ee3d05: crates/core/tests/crash_matrix.rs

crates/core/tests/crash_matrix.rs:
