/root/repo/target/debug/deps/removals-31f267ba82f9aaca.d: tests/removals.rs Cargo.toml

/root/repo/target/debug/deps/libremovals-31f267ba82f9aaca.rmeta: tests/removals.rs Cargo.toml

tests/removals.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
