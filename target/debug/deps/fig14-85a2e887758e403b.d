/root/repo/target/debug/deps/fig14-85a2e887758e403b.d: crates/bench/benches/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-85a2e887758e403b.rmeta: crates/bench/benches/fig14.rs Cargo.toml

crates/bench/benches/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
