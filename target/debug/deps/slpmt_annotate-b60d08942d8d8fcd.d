/root/repo/target/debug/deps/slpmt_annotate-b60d08942d8d8fcd.d: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs

/root/repo/target/debug/deps/slpmt_annotate-b60d08942d8d8fcd: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs

crates/annotate/src/lib.rs:
crates/annotate/src/analysis.rs:
crates/annotate/src/ir.rs:
crates/annotate/src/table.rs:
