/root/repo/target/debug/deps/ablation-092e1d88a30613e7.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-092e1d88a30613e7: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
