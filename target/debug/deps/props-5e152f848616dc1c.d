/root/repo/target/debug/deps/props-5e152f848616dc1c.d: crates/annotate/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-5e152f848616dc1c.rmeta: crates/annotate/tests/props.rs Cargo.toml

crates/annotate/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
