/root/repo/target/debug/deps/determinism-c70db2a65e0e4195.d: crates/bench/tests/determinism.rs

/root/repo/target/debug/deps/determinism-c70db2a65e0e4195: crates/bench/tests/determinism.rs

crates/bench/tests/determinism.rs:
