/root/repo/target/debug/deps/props-858dc248951f5b4f.d: crates/cache/tests/props.rs

/root/repo/target/debug/deps/props-858dc248951f5b4f: crates/cache/tests/props.rs

crates/cache/tests/props.rs:
