/root/repo/target/debug/deps/slpmt_workloads-fe33b85d2f95548f.d: crates/workloads/src/lib.rs crates/workloads/src/avl.rs crates/workloads/src/ctx.rs crates/workloads/src/hashtable.rs crates/workloads/src/heap.rs crates/workloads/src/inspector.rs crates/workloads/src/kv/mod.rs crates/workloads/src/kv/btree.rs crates/workloads/src/kv/ctree.rs crates/workloads/src/kv/rtree.rs crates/workloads/src/kv/skiplist.rs crates/workloads/src/rbtree.rs crates/workloads/src/runner.rs crates/workloads/src/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_workloads-fe33b85d2f95548f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/avl.rs crates/workloads/src/ctx.rs crates/workloads/src/hashtable.rs crates/workloads/src/heap.rs crates/workloads/src/inspector.rs crates/workloads/src/kv/mod.rs crates/workloads/src/kv/btree.rs crates/workloads/src/kv/ctree.rs crates/workloads/src/kv/rtree.rs crates/workloads/src/kv/skiplist.rs crates/workloads/src/rbtree.rs crates/workloads/src/runner.rs crates/workloads/src/ycsb.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/avl.rs:
crates/workloads/src/ctx.rs:
crates/workloads/src/hashtable.rs:
crates/workloads/src/heap.rs:
crates/workloads/src/inspector.rs:
crates/workloads/src/kv/mod.rs:
crates/workloads/src/kv/btree.rs:
crates/workloads/src/kv/ctree.rs:
crates/workloads/src/kv/rtree.rs:
crates/workloads/src/kv/skiplist.rs:
crates/workloads/src/rbtree.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
