/root/repo/target/debug/deps/schemes-50438dce75a542b6.d: tests/schemes.rs Cargo.toml

/root/repo/target/debug/deps/libschemes-50438dce75a542b6.rmeta: tests/schemes.rs Cargo.toml

tests/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
