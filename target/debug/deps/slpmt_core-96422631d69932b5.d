/root/repo/target/debug/deps/slpmt_core-96422631d69932b5.d: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_core-96422631d69932b5.rmeta: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/instr.rs:
crates/core/src/machine.rs:
crates/core/src/overhead.rs:
crates/core/src/recovery.rs:
crates/core/src/scheme.rs:
crates/core/src/signature.rs:
crates/core/src/stats.rs:
crates/core/src/txreg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
