/root/repo/target/debug/deps/fig08-fa89531e134596e1.d: crates/bench/benches/fig08.rs

/root/repo/target/debug/deps/fig08-fa89531e134596e1: crates/bench/benches/fig08.rs

crates/bench/benches/fig08.rs:
