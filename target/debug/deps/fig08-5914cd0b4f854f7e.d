/root/repo/target/debug/deps/fig08-5914cd0b4f854f7e.d: crates/bench/benches/fig08.rs Cargo.toml

/root/repo/target/debug/deps/libfig08-5914cd0b4f854f7e.rmeta: crates/bench/benches/fig08.rs Cargo.toml

crates/bench/benches/fig08.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
