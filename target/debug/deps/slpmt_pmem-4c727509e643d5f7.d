/root/repo/target/debug/deps/slpmt_pmem-4c727509e643d5f7.d: crates/pmem/src/lib.rs crates/pmem/src/addr.rs crates/pmem/src/config.rs crates/pmem/src/device.rs crates/pmem/src/heap.rs crates/pmem/src/log_region.rs crates/pmem/src/payload.rs crates/pmem/src/space.rs crates/pmem/src/stats.rs crates/pmem/src/wpq.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_pmem-4c727509e643d5f7.rmeta: crates/pmem/src/lib.rs crates/pmem/src/addr.rs crates/pmem/src/config.rs crates/pmem/src/device.rs crates/pmem/src/heap.rs crates/pmem/src/log_region.rs crates/pmem/src/payload.rs crates/pmem/src/space.rs crates/pmem/src/stats.rs crates/pmem/src/wpq.rs Cargo.toml

crates/pmem/src/lib.rs:
crates/pmem/src/addr.rs:
crates/pmem/src/config.rs:
crates/pmem/src/device.rs:
crates/pmem/src/heap.rs:
crates/pmem/src/log_region.rs:
crates/pmem/src/payload.rs:
crates/pmem/src/space.rs:
crates/pmem/src/stats.rs:
crates/pmem/src/wpq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
