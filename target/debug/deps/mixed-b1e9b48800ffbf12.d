/root/repo/target/debug/deps/mixed-b1e9b48800ffbf12.d: crates/bench/benches/mixed.rs

/root/repo/target/debug/deps/mixed-b1e9b48800ffbf12: crates/bench/benches/mixed.rs

crates/bench/benches/mixed.rs:
