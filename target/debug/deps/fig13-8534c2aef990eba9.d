/root/repo/target/debug/deps/fig13-8534c2aef990eba9.d: crates/bench/benches/fig13.rs

/root/repo/target/debug/deps/fig13-8534c2aef990eba9: crates/bench/benches/fig13.rs

crates/bench/benches/fig13.rs:
