/root/repo/target/debug/deps/slpmt-5d3878e799ba7115.d: src/bin/slpmt.rs

/root/repo/target/debug/deps/slpmt-5d3878e799ba7115: src/bin/slpmt.rs

src/bin/slpmt.rs:
