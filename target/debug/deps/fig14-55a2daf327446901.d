/root/repo/target/debug/deps/fig14-55a2daf327446901.d: crates/bench/benches/fig14.rs

/root/repo/target/debug/deps/fig14-55a2daf327446901: crates/bench/benches/fig14.rs

crates/bench/benches/fig14.rs:
