/root/repo/target/debug/deps/slpmt_logbuf-6e67451fa8e53932.d: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_logbuf-6e67451fa8e53932.rmeta: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs Cargo.toml

crates/logbuf/src/lib.rs:
crates/logbuf/src/atom.rs:
crates/logbuf/src/ede.rs:
crates/logbuf/src/record.rs:
crates/logbuf/src/tiered.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
