/root/repo/target/debug/deps/fig13-f323666d4a298b2b.d: crates/bench/benches/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-f323666d4a298b2b.rmeta: crates/bench/benches/fig13.rs Cargo.toml

crates/bench/benches/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
