/root/repo/target/debug/deps/fig11-cc396bdd142b79d9.d: crates/bench/benches/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-cc396bdd142b79d9.rmeta: crates/bench/benches/fig11.rs Cargo.toml

crates/bench/benches/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
