/root/repo/target/debug/deps/slpmt-88da1ea429b23081.d: src/bin/slpmt.rs

/root/repo/target/debug/deps/slpmt-88da1ea429b23081: src/bin/slpmt.rs

src/bin/slpmt.rs:
