/root/repo/target/debug/deps/slpmt_prng-b0b1fa5df46fa8f4.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_prng-b0b1fa5df46fa8f4.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
