/root/repo/target/debug/deps/slpmt_pmem-3464ec01be8819be.d: crates/pmem/src/lib.rs crates/pmem/src/addr.rs crates/pmem/src/config.rs crates/pmem/src/device.rs crates/pmem/src/heap.rs crates/pmem/src/log_region.rs crates/pmem/src/payload.rs crates/pmem/src/space.rs crates/pmem/src/stats.rs crates/pmem/src/wpq.rs

/root/repo/target/debug/deps/libslpmt_pmem-3464ec01be8819be.rlib: crates/pmem/src/lib.rs crates/pmem/src/addr.rs crates/pmem/src/config.rs crates/pmem/src/device.rs crates/pmem/src/heap.rs crates/pmem/src/log_region.rs crates/pmem/src/payload.rs crates/pmem/src/space.rs crates/pmem/src/stats.rs crates/pmem/src/wpq.rs

/root/repo/target/debug/deps/libslpmt_pmem-3464ec01be8819be.rmeta: crates/pmem/src/lib.rs crates/pmem/src/addr.rs crates/pmem/src/config.rs crates/pmem/src/device.rs crates/pmem/src/heap.rs crates/pmem/src/log_region.rs crates/pmem/src/payload.rs crates/pmem/src/space.rs crates/pmem/src/stats.rs crates/pmem/src/wpq.rs

crates/pmem/src/lib.rs:
crates/pmem/src/addr.rs:
crates/pmem/src/config.rs:
crates/pmem/src/device.rs:
crates/pmem/src/heap.rs:
crates/pmem/src/log_region.rs:
crates/pmem/src/payload.rs:
crates/pmem/src/space.rs:
crates/pmem/src/stats.rs:
crates/pmem/src/wpq.rs:
