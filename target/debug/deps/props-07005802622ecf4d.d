/root/repo/target/debug/deps/props-07005802622ecf4d.d: crates/logbuf/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-07005802622ecf4d.rmeta: crates/logbuf/tests/props.rs Cargo.toml

crates/logbuf/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
