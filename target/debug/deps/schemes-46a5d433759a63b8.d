/root/repo/target/debug/deps/schemes-46a5d433759a63b8.d: tests/schemes.rs

/root/repo/target/debug/deps/schemes-46a5d433759a63b8: tests/schemes.rs

tests/schemes.rs:
