/root/repo/target/debug/deps/fig12-739b25a1eac7b008.d: crates/bench/benches/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-739b25a1eac7b008.rmeta: crates/bench/benches/fig12.rs Cargo.toml

crates/bench/benches/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
