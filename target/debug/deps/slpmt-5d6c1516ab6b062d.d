/root/repo/target/debug/deps/slpmt-5d6c1516ab6b062d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt-5d6c1516ab6b062d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
