/root/repo/target/debug/deps/slpmt-9111e4cb34de5169.d: src/bin/slpmt.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt-9111e4cb34de5169.rmeta: src/bin/slpmt.rs Cargo.toml

src/bin/slpmt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
