/root/repo/target/debug/deps/battery-4547ebc0359ca89e.d: crates/core/tests/battery.rs Cargo.toml

/root/repo/target/debug/deps/libbattery-4547ebc0359ca89e.rmeta: crates/core/tests/battery.rs Cargo.toml

crates/core/tests/battery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
