/root/repo/target/debug/deps/battery-bd6539ad48d7d6d8.d: crates/core/tests/battery.rs

/root/repo/target/debug/deps/battery-bd6539ad48d7d6d8: crates/core/tests/battery.rs

crates/core/tests/battery.rs:
