/root/repo/target/debug/deps/model_based-43facd29f59891d0.d: tests/model_based.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_based-43facd29f59891d0.rmeta: tests/model_based.rs Cargo.toml

tests/model_based.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
