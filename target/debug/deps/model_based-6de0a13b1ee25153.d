/root/repo/target/debug/deps/model_based-6de0a13b1ee25153.d: tests/model_based.rs

/root/repo/target/debug/deps/model_based-6de0a13b1ee25153: tests/model_based.rs

tests/model_based.rs:
