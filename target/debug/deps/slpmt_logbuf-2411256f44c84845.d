/root/repo/target/debug/deps/slpmt_logbuf-2411256f44c84845.d: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_logbuf-2411256f44c84845.rmeta: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs Cargo.toml

crates/logbuf/src/lib.rs:
crates/logbuf/src/atom.rs:
crates/logbuf/src/ede.rs:
crates/logbuf/src/record.rs:
crates/logbuf/src/tiered.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
