/root/repo/target/debug/deps/slpmt_bench-fbc4f8c661836333.d: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_bench-fbc4f8c661836333.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
