/root/repo/target/debug/deps/multithread-a787335235ecf425.d: crates/core/tests/multithread.rs Cargo.toml

/root/repo/target/debug/deps/libmultithread-a787335235ecf425.rmeta: crates/core/tests/multithread.rs Cargo.toml

crates/core/tests/multithread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
