/root/repo/target/debug/deps/fig10-3c11b79eeb184daf.d: crates/bench/benches/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-3c11b79eeb184daf.rmeta: crates/bench/benches/fig10.rs Cargo.toml

crates/bench/benches/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
