/root/repo/target/debug/deps/ablation-0ca59d53e0c00f23.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-0ca59d53e0c00f23.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
