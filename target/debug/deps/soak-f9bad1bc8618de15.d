/root/repo/target/debug/deps/soak-f9bad1bc8618de15.d: tests/soak.rs Cargo.toml

/root/repo/target/debug/deps/libsoak-f9bad1bc8618de15.rmeta: tests/soak.rs Cargo.toml

tests/soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
