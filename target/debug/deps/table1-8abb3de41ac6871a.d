/root/repo/target/debug/deps/table1-8abb3de41ac6871a.d: crates/bench/benches/table1.rs

/root/repo/target/debug/deps/table1-8abb3de41ac6871a: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
