/root/repo/target/debug/deps/slpmt_core-e6345306a35f6309.d: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs

/root/repo/target/debug/deps/slpmt_core-e6345306a35f6309: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs

crates/core/src/lib.rs:
crates/core/src/instr.rs:
crates/core/src/machine.rs:
crates/core/src/overhead.rs:
crates/core/src/recovery.rs:
crates/core/src/scheme.rs:
crates/core/src/signature.rs:
crates/core/src/stats.rs:
crates/core/src/txreg.rs:
