/root/repo/target/debug/deps/debug_soak-485d69f7bb133022.d: tests/debug_soak.rs

/root/repo/target/debug/deps/debug_soak-485d69f7bb133022: tests/debug_soak.rs

tests/debug_soak.rs:
