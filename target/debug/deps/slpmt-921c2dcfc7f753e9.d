/root/repo/target/debug/deps/slpmt-921c2dcfc7f753e9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt-921c2dcfc7f753e9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
