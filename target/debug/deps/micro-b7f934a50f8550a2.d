/root/repo/target/debug/deps/micro-b7f934a50f8550a2.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-b7f934a50f8550a2.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
