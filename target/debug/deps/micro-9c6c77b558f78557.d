/root/repo/target/debug/deps/micro-9c6c77b558f78557.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-9c6c77b558f78557: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
