/root/repo/target/debug/deps/slpmt_prng-6fbc3168fd582e64.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/slpmt_prng-6fbc3168fd582e64: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
