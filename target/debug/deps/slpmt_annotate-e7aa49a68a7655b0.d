/root/repo/target/debug/deps/slpmt_annotate-e7aa49a68a7655b0.d: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs

/root/repo/target/debug/deps/libslpmt_annotate-e7aa49a68a7655b0.rlib: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs

/root/repo/target/debug/deps/libslpmt_annotate-e7aa49a68a7655b0.rmeta: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs

crates/annotate/src/lib.rs:
crates/annotate/src/analysis.rs:
crates/annotate/src/ir.rs:
crates/annotate/src/table.rs:
