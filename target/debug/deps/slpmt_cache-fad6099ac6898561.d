/root/repo/target/debug/deps/slpmt_cache-fad6099ac6898561.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/slpmt_cache-fad6099ac6898561: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/meta.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
