/root/repo/target/debug/deps/ordering-3d1ead792ee47bd8.d: tests/ordering.rs Cargo.toml

/root/repo/target/debug/deps/libordering-3d1ead792ee47bd8.rmeta: tests/ordering.rs Cargo.toml

tests/ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
