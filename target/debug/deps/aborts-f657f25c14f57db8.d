/root/repo/target/debug/deps/aborts-f657f25c14f57db8.d: crates/core/tests/aborts.rs

/root/repo/target/debug/deps/aborts-f657f25c14f57db8: crates/core/tests/aborts.rs

crates/core/tests/aborts.rs:
