/root/repo/target/debug/deps/slpmt_logbuf-624a3887d67200e9.d: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs

/root/repo/target/debug/deps/slpmt_logbuf-624a3887d67200e9: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs

crates/logbuf/src/lib.rs:
crates/logbuf/src/atom.rs:
crates/logbuf/src/ede.rs:
crates/logbuf/src/record.rs:
crates/logbuf/src/tiered.rs:
