/root/repo/target/debug/deps/aborts-e43b915ac5c5aeeb.d: crates/core/tests/aborts.rs Cargo.toml

/root/repo/target/debug/deps/libaborts-e43b915ac5c5aeeb.rmeta: crates/core/tests/aborts.rs Cargo.toml

crates/core/tests/aborts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
