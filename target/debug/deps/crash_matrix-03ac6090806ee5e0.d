/root/repo/target/debug/deps/crash_matrix-03ac6090806ee5e0.d: crates/core/tests/crash_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_matrix-03ac6090806ee5e0.rmeta: crates/core/tests/crash_matrix.rs Cargo.toml

crates/core/tests/crash_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
