/root/repo/target/debug/deps/ordering-d667bd4008106303.d: tests/ordering.rs

/root/repo/target/debug/deps/ordering-d667bd4008106303: tests/ordering.rs

tests/ordering.rs:
