/root/repo/target/debug/deps/props-cdccc7b3d024fbe2.d: crates/pmem/tests/props.rs

/root/repo/target/debug/deps/props-cdccc7b3d024fbe2: crates/pmem/tests/props.rs

crates/pmem/tests/props.rs:
