/root/repo/target/debug/deps/props-923472db5ec2b400.d: crates/logbuf/tests/props.rs

/root/repo/target/debug/deps/props-923472db5ec2b400: crates/logbuf/tests/props.rs

crates/logbuf/tests/props.rs:
