/root/repo/target/debug/deps/props-b665a030a04b57c1.d: crates/annotate/tests/props.rs

/root/repo/target/debug/deps/props-b665a030a04b57c1: crates/annotate/tests/props.rs

crates/annotate/tests/props.rs:
