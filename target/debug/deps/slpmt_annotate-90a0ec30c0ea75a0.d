/root/repo/target/debug/deps/slpmt_annotate-90a0ec30c0ea75a0.d: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_annotate-90a0ec30c0ea75a0.rmeta: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs Cargo.toml

crates/annotate/src/lib.rs:
crates/annotate/src/analysis.rs:
crates/annotate/src/ir.rs:
crates/annotate/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
