/root/repo/target/debug/deps/slpmt_annotate-35dc20e01ad56e6a.d: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_annotate-35dc20e01ad56e6a.rmeta: crates/annotate/src/lib.rs crates/annotate/src/analysis.rs crates/annotate/src/ir.rs crates/annotate/src/table.rs Cargo.toml

crates/annotate/src/lib.rs:
crates/annotate/src/analysis.rs:
crates/annotate/src/ir.rs:
crates/annotate/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
