/root/repo/target/debug/deps/table1-82ec644d0020679a.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-82ec644d0020679a.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
