/root/repo/target/debug/deps/slpmt-8f4a157d33b98a8a.d: src/lib.rs

/root/repo/target/debug/deps/libslpmt-8f4a157d33b98a8a.rlib: src/lib.rs

/root/repo/target/debug/deps/libslpmt-8f4a157d33b98a8a.rmeta: src/lib.rs

src/lib.rs:
