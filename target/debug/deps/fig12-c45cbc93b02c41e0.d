/root/repo/target/debug/deps/fig12-c45cbc93b02c41e0.d: crates/bench/benches/fig12.rs

/root/repo/target/debug/deps/fig12-c45cbc93b02c41e0: crates/bench/benches/fig12.rs

crates/bench/benches/fig12.rs:
