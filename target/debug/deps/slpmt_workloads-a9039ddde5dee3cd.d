/root/repo/target/debug/deps/slpmt_workloads-a9039ddde5dee3cd.d: crates/workloads/src/lib.rs crates/workloads/src/avl.rs crates/workloads/src/ctx.rs crates/workloads/src/hashtable.rs crates/workloads/src/heap.rs crates/workloads/src/inspector.rs crates/workloads/src/kv/mod.rs crates/workloads/src/kv/btree.rs crates/workloads/src/kv/ctree.rs crates/workloads/src/kv/rtree.rs crates/workloads/src/kv/skiplist.rs crates/workloads/src/rbtree.rs crates/workloads/src/runner.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/slpmt_workloads-a9039ddde5dee3cd: crates/workloads/src/lib.rs crates/workloads/src/avl.rs crates/workloads/src/ctx.rs crates/workloads/src/hashtable.rs crates/workloads/src/heap.rs crates/workloads/src/inspector.rs crates/workloads/src/kv/mod.rs crates/workloads/src/kv/btree.rs crates/workloads/src/kv/ctree.rs crates/workloads/src/kv/rtree.rs crates/workloads/src/kv/skiplist.rs crates/workloads/src/rbtree.rs crates/workloads/src/runner.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/avl.rs:
crates/workloads/src/ctx.rs:
crates/workloads/src/hashtable.rs:
crates/workloads/src/heap.rs:
crates/workloads/src/inspector.rs:
crates/workloads/src/kv/mod.rs:
crates/workloads/src/kv/btree.rs:
crates/workloads/src/kv/ctree.rs:
crates/workloads/src/kv/rtree.rs:
crates/workloads/src/kv/skiplist.rs:
crates/workloads/src/rbtree.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/ycsb.rs:
