/root/repo/target/debug/deps/soak-55e9bf2598be1558.d: tests/soak.rs

/root/repo/target/debug/deps/soak-55e9bf2598be1558: tests/soak.rs

tests/soak.rs:
