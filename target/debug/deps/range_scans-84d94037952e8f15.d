/root/repo/target/debug/deps/range_scans-84d94037952e8f15.d: tests/range_scans.rs Cargo.toml

/root/repo/target/debug/deps/librange_scans-84d94037952e8f15.rmeta: tests/range_scans.rs Cargo.toml

tests/range_scans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
