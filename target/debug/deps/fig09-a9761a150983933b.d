/root/repo/target/debug/deps/fig09-a9761a150983933b.d: crates/bench/benches/fig09.rs

/root/repo/target/debug/deps/fig09-a9761a150983933b: crates/bench/benches/fig09.rs

crates/bench/benches/fig09.rs:
