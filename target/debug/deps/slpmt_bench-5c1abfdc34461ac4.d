/root/repo/target/debug/deps/slpmt_bench-5c1abfdc34461ac4.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/slpmt_bench-5c1abfdc34461ac4: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
