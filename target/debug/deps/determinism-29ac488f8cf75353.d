/root/repo/target/debug/deps/determinism-29ac488f8cf75353.d: crates/bench/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-29ac488f8cf75353.rmeta: crates/bench/tests/determinism.rs Cargo.toml

crates/bench/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
