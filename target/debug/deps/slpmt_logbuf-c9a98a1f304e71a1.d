/root/repo/target/debug/deps/slpmt_logbuf-c9a98a1f304e71a1.d: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs

/root/repo/target/debug/deps/libslpmt_logbuf-c9a98a1f304e71a1.rlib: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs

/root/repo/target/debug/deps/libslpmt_logbuf-c9a98a1f304e71a1.rmeta: crates/logbuf/src/lib.rs crates/logbuf/src/atom.rs crates/logbuf/src/ede.rs crates/logbuf/src/record.rs crates/logbuf/src/tiered.rs

crates/logbuf/src/lib.rs:
crates/logbuf/src/atom.rs:
crates/logbuf/src/ede.rs:
crates/logbuf/src/record.rs:
crates/logbuf/src/tiered.rs:
