/root/repo/target/debug/deps/slpmt_prng-7dc487be801a92de.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_prng-7dc487be801a92de.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
