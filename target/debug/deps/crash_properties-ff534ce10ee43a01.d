/root/repo/target/debug/deps/crash_properties-ff534ce10ee43a01.d: tests/crash_properties.rs

/root/repo/target/debug/deps/crash_properties-ff534ce10ee43a01: tests/crash_properties.rs

tests/crash_properties.rs:
