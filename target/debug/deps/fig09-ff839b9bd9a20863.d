/root/repo/target/debug/deps/fig09-ff839b9bd9a20863.d: crates/bench/benches/fig09.rs Cargo.toml

/root/repo/target/debug/deps/libfig09-ff839b9bd9a20863.rmeta: crates/bench/benches/fig09.rs Cargo.toml

crates/bench/benches/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
