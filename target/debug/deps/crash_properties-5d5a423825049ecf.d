/root/repo/target/debug/deps/crash_properties-5d5a423825049ecf.d: tests/crash_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_properties-5d5a423825049ecf.rmeta: tests/crash_properties.rs Cargo.toml

tests/crash_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
