/root/repo/target/debug/deps/removals-e54f214ba1a633dc.d: tests/removals.rs

/root/repo/target/debug/deps/removals-e54f214ba1a633dc: tests/removals.rs

tests/removals.rs:
