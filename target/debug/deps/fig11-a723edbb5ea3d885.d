/root/repo/target/debug/deps/fig11-a723edbb5ea3d885.d: crates/bench/benches/fig11.rs

/root/repo/target/debug/deps/fig11-a723edbb5ea3d885: crates/bench/benches/fig11.rs

crates/bench/benches/fig11.rs:
