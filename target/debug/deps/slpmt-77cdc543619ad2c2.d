/root/repo/target/debug/deps/slpmt-77cdc543619ad2c2.d: src/bin/slpmt.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt-77cdc543619ad2c2.rmeta: src/bin/slpmt.rs Cargo.toml

src/bin/slpmt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
