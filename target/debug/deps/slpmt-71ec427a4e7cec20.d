/root/repo/target/debug/deps/slpmt-71ec427a4e7cec20.d: src/lib.rs

/root/repo/target/debug/deps/slpmt-71ec427a4e7cec20: src/lib.rs

src/lib.rs:
