/root/repo/target/debug/deps/slpmt_bench-17a3f96de3aa65b3.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libslpmt_bench-17a3f96de3aa65b3.rlib: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libslpmt_bench-17a3f96de3aa65b3.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
