/root/repo/target/debug/deps/props-7fedeb813c901978.d: crates/pmem/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-7fedeb813c901978.rmeta: crates/pmem/tests/props.rs Cargo.toml

crates/pmem/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
