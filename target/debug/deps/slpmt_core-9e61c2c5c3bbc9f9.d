/root/repo/target/debug/deps/slpmt_core-9e61c2c5c3bbc9f9.d: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs

/root/repo/target/debug/deps/libslpmt_core-9e61c2c5c3bbc9f9.rlib: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs

/root/repo/target/debug/deps/libslpmt_core-9e61c2c5c3bbc9f9.rmeta: crates/core/src/lib.rs crates/core/src/instr.rs crates/core/src/machine.rs crates/core/src/overhead.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/signature.rs crates/core/src/stats.rs crates/core/src/txreg.rs

crates/core/src/lib.rs:
crates/core/src/instr.rs:
crates/core/src/machine.rs:
crates/core/src/overhead.rs:
crates/core/src/recovery.rs:
crates/core/src/scheme.rs:
crates/core/src/signature.rs:
crates/core/src/stats.rs:
crates/core/src/txreg.rs:
