/root/repo/target/debug/deps/multithread-d2183c8690737eb7.d: crates/core/tests/multithread.rs

/root/repo/target/debug/deps/multithread-d2183c8690737eb7: crates/core/tests/multithread.rs

crates/core/tests/multithread.rs:
