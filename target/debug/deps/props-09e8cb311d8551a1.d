/root/repo/target/debug/deps/props-09e8cb311d8551a1.d: crates/cache/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-09e8cb311d8551a1.rmeta: crates/cache/tests/props.rs Cargo.toml

crates/cache/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
