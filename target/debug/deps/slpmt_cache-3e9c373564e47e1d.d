/root/repo/target/debug/deps/slpmt_cache-3e9c373564e47e1d.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_cache-3e9c373564e47e1d.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/meta.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
