/root/repo/target/debug/deps/slpmt_bench-2915b58c91c7c763.d: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_bench-2915b58c91c7c763.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
