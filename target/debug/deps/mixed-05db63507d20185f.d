/root/repo/target/debug/deps/mixed-05db63507d20185f.d: crates/bench/benches/mixed.rs Cargo.toml

/root/repo/target/debug/deps/libmixed-05db63507d20185f.rmeta: crates/bench/benches/mixed.rs Cargo.toml

crates/bench/benches/mixed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
