/root/repo/target/debug/deps/slpmt_prng-071d062fa89b1db1.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libslpmt_prng-071d062fa89b1db1.rlib: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libslpmt_prng-071d062fa89b1db1.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
