/root/repo/target/debug/deps/slpmt_cache-4fde328430b112d1.d: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libslpmt_cache-4fde328430b112d1.rmeta: crates/cache/src/lib.rs crates/cache/src/config.rs crates/cache/src/meta.rs crates/cache/src/set_assoc.rs crates/cache/src/stats.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/config.rs:
crates/cache/src/meta.rs:
crates/cache/src/set_assoc.rs:
crates/cache/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
