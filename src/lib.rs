//! SLPMT — selective-logging hardware persistent-memory transactions.
//!
//! Facade crate re-exporting the whole simulator workspace. See the
//! individual crates for details:
//!
//! * [`pmem`] — persistent-memory device model (WPQ, image, heap, logs)
//! * [`cache`] — L1/L2/L3 hierarchy with SLPMT metadata bits
//! * [`logbuf`] — four-tier coalescing log buffer and baseline buffers
//! * [`core`] — the transaction engine and evaluated schemes
//! * [`annotate`] — the compiler-pass simulation (Patterns 1 and 2)
//! * [`workloads`] — durable data structures and the YCSB driver
//! * [`ptm`] — software persistent-transaction baselines (durabletx
//!   family) executed as explicit store/flush/fence streams
//! * [`kv`] — key/value service facade: memcached-text codec,
//!   sessions, admission control and the deterministic request loop
//! * [`trace`] — deterministic event tracing, metrics and Perfetto
//!   export
//!
//! # Example
//!
//! ```
//! use slpmt::core::{Machine, MachineConfig, Scheme, StoreKind};
//! use slpmt::pmem::PmAddr;
//!
//! let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
//! m.tx_begin();
//! m.store_u64(PmAddr::new(0x1000), 42, StoreKind::Store);
//! m.store_u64(PmAddr::new(0x2000), 7, StoreKind::log_free());
//! m.tx_commit();
//! assert_eq!(m.device().image().read_u64(PmAddr::new(0x1000)), 42);
//! ```

#![forbid(unsafe_code)]

pub use slpmt_annotate as annotate;
pub use slpmt_bench as bench;
pub use slpmt_cache as cache;
pub use slpmt_core as core;
pub use slpmt_kv as kv;
pub use slpmt_logbuf as logbuf;
pub use slpmt_pmem as pmem;
pub use slpmt_ptm as ptm;
pub use slpmt_trace as trace;
pub use slpmt_workloads as workloads;
