//! `slpmt` — command-line front end for the simulator.
//!
//! ```text
//! slpmt schemes                         list hardware designs
//! slpmt overhead                        §III-D hardware budget
//! slpmt run <index> [options]           run YCSB-load inserts
//! slpmt compare <index> [options]       all schemes side by side
//! slpmt matrix [options]                full scheme × index matrix (parallel)
//! slpmt trace [options]                 dump the persist-event trace
//! slpmt crashsweep [sweep options]      exhaustive persist-event crash sweep
//!
//! options: --scheme <name> --ops <n> --value <bytes>
//!          --annotations <manual|compiler|none> --latency <ns>
//! sweep options: --scheme <name|all> --workload <name|all>
//!                --seed <n> --ops <n> [--at <k>]
//!
//! `matrix` and `crashsweep` fan their cells across worker threads
//! (one per available core; override with SLPMT_THREADS, where 1
//! forces a serial run); the merged output is identical for any
//! worker count. `crashsweep --at K` replays exactly one failing
//! `(scheme, workload, seed, k)` tuple from a sweep report.
//! ```

use slpmt::cache::CacheConfig;
use slpmt::core::{HardwareOverhead, MachineConfig, Scheme};
use slpmt::pmem::PersistEvent;
use slpmt::workloads::runner::{run_inserts_with, IndexKind};
use slpmt::workloads::{ycsb_load, AnnotationSource};
use std::process::ExitCode;

struct Options {
    scheme: Scheme,
    ops: usize,
    value: usize,
    annotations: AnnotationSource,
    latency_ns: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scheme: Scheme::Slpmt,
            ops: 1000,
            value: 256,
            annotations: AnnotationSource::Manual,
            latency_ns: None,
        }
    }
}

fn parse_scheme(name: &str) -> Option<Scheme> {
    Scheme::ALL
        .into_iter()
        .chain(Scheme::REDO)
        .find(|s| s.to_string().eq_ignore_ascii_case(name))
}

fn parse_kind(name: &str) -> Option<IndexKind> {
    IndexKind::ALL
        .into_iter()
        .find(|k| k.to_string().eq_ignore_ascii_case(name))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = value()?;
                o.scheme = parse_scheme(&v).ok_or_else(|| format!("unknown scheme {v}"))?;
            }
            "--ops" => o.ops = value()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--value" => o.value = value()?.parse().map_err(|e| format!("--value: {e}"))?,
            "--annotations" => {
                o.annotations = match value()?.as_str() {
                    "manual" => AnnotationSource::Manual,
                    "compiler" => AnnotationSource::Compiler,
                    "none" => AnnotationSource::None,
                    other => return Err(format!("unknown annotation source {other}")),
                }
            }
            "--latency" => {
                o.latency_ns = Some(value()?.parse().map_err(|e| format!("--latency: {e}"))?)
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn config_for(o: &Options, scheme: Scheme) -> MachineConfig {
    let mut cfg = MachineConfig::for_scheme(scheme);
    if let Some(ns) = o.latency_ns {
        cfg.pm = cfg.pm.with_write_latency_ns(ns);
    }
    cfg
}

fn cmd_schemes() {
    println!(
        "{:<10} {:<6} {:<8} {:<9} {:<6} {:<11}",
        "scheme", "gran.", "buffer", "log-free", "lazy", "discipline"
    );
    for s in Scheme::ALL.into_iter().chain(Scheme::REDO) {
        let f = s.features();
        println!(
            "{:<10} {:<6} {:<8} {:<9} {:<6} {:<11}",
            s.to_string(),
            format!("{:?}", f.granularity),
            format!("{:?}", f.buffer),
            f.log_free,
            f.lazy,
            format!("{:?}", f.discipline),
        );
    }
}

fn cmd_overhead() {
    let oh = HardwareOverhead::for_config(&CacheConfig::default());
    println!("per-core SLPMT storage (§III-D):");
    println!(
        "  cache metadata : {} B ({} b/L1 line, {} b/L2 line)",
        oh.cache_meta_bytes, oh.l1_bits_per_line, oh.l2_bits_per_line
    );
    println!("  log buffer     : {} B", oh.log_buffer_bytes);
    println!("  signatures     : {} B", oh.signature_bytes);
    println!(
        "  total          : {:.1} KB (paper: 6.1 KB)",
        oh.total_bytes() as f64 / 1024.0
    );
}

fn cmd_run(kind: IndexKind, o: &Options) {
    let ops = ycsb_load(o.ops, o.value, 42);
    let r = run_inserts_with(
        config_for(o, o.scheme),
        kind,
        &ops,
        o.value,
        o.annotations,
        true,
    );
    println!(
        "{kind} under {} ({} × {} B inserts, verified)",
        o.scheme, o.ops, o.value
    );
    println!("  cycles        : {}", r.cycles);
    println!(
        "  media traffic : {} B ({} data lines, {} log records)",
        r.traffic.media_bytes(),
        r.traffic.data_lines,
        r.traffic.log_records
    );
    println!("{}", r.stats);
}

fn cmd_compare(kind: IndexKind, o: &Options) {
    let ops = ycsb_load(o.ops, o.value, 42);
    let base = run_inserts_with(
        config_for(o, Scheme::Fg),
        kind,
        &ops,
        o.value,
        o.annotations,
        false,
    );
    println!(
        "{kind}: {} × {} B inserts (speedup and traffic vs FG)",
        o.ops, o.value
    );
    for s in [
        Scheme::Fg,
        Scheme::FgLg,
        Scheme::FgLz,
        Scheme::Slpmt,
        Scheme::Atom,
        Scheme::Ede,
    ] {
        let r = run_inserts_with(config_for(o, s), kind, &ops, o.value, o.annotations, false);
        println!(
            "  {:<8} {:>12} cycles  {:>5.2}x  {:>9} media B  {:>+6.1}%",
            s.to_string(),
            r.cycles,
            r.speedup_vs(&base),
            r.traffic.media_bytes(),
            -r.traffic_reduction_vs(&base) * 100.0,
        );
    }
}

fn cmd_matrix(o: &Options) {
    use slpmt::bench::runner::{fig08_cells, run_matrix, threads};
    let ops = ycsb_load(o.ops, o.value, 42);
    let cells = fig08_cells(&IndexKind::ALL);
    let start = std::time::Instant::now();
    let results = run_matrix(&cells, &ops, o.value, o.annotations, o.latency_ns);
    let elapsed = start.elapsed();
    println!(
        "scheme × index matrix: {} cells, {} × {} B inserts, {} worker(s), {:.2}s",
        cells.len(),
        o.ops,
        o.value,
        threads(),
        elapsed.as_secs_f64(),
    );
    println!(
        "{:<18} {:>12} {:>8} {:>12} {:>10}",
        "cell", "cycles", "vs FG", "media B", "log recs"
    );
    let row = 1 + 5; // FG baseline + the five compared schemes
    for (k, chunk) in results.chunks_exact(row).enumerate() {
        let kind = IndexKind::ALL[k];
        let base = &chunk[0];
        for r in chunk {
            println!(
                "{:<18} {:>12} {:>7.2}x {:>12} {:>10}",
                format!("{kind}/{}", r.scheme),
                r.cycles,
                r.speedup_vs(base),
                r.traffic.media_bytes(),
                r.traffic.log_records,
            );
        }
    }
}

fn cmd_trace(o: &Options) {
    let ops = ycsb_load(o.ops.min(3), o.value, 42);
    let mut ctx = slpmt::workloads::PmContext::with_config(
        config_for(o, o.scheme),
        slpmt::annotate::AnnotationTable::new(),
    );
    let mut idx = IndexKind::Hashtable.build(&mut ctx, o.value, o.annotations);
    for op in &ops {
        idx.insert(&mut ctx, op.key, &op.value);
    }
    println!(
        "persist-event trace ({} inserts under {}):",
        ops.len(),
        o.scheme
    );
    for (i, e) in ctx.machine().device().events().iter().enumerate() {
        match e {
            PersistEvent::LogRecord { txn, addr, len } => {
                println!("{i:>4}  log    txn {txn:<3} {addr}  ({len} B)")
            }
            PersistEvent::DataLine { addr } => println!("{i:>4}  data   {addr}"),
            PersistEvent::CommitMarker { txn } => println!("{i:>4}  marker txn {txn}"),
            PersistEvent::LogTruncate => println!("{i:>4}  trunc"),
        }
    }
}

/// `slpmt crashsweep`: the exhaustive persist-event crash sweep, or a
/// single reproduced `(scheme, workload, seed, k)` point with `--at`.
fn cmd_crashsweep(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::bench::crashsweep::{run_sweep, sweep_cases};
    use slpmt::workloads::crashsweep::{check_point, count_events, SweepCase, SWEEP_SCHEMES};

    let mut schemes: Vec<Scheme> = SWEEP_SCHEMES.to_vec();
    let mut kinds = vec![IndexKind::Hashtable, IndexKind::Rbtree, IndexKind::Heap];
    let mut seed = 42u64;
    let mut ops = 50usize;
    let mut at: Option<u64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = value()?;
                if !v.eq_ignore_ascii_case("all") {
                    schemes = vec![parse_scheme(&v).ok_or_else(|| format!("unknown scheme {v}"))?];
                }
            }
            "--workload" => {
                let v = value()?;
                if !v.eq_ignore_ascii_case("all") {
                    kinds = vec![parse_kind(&v).ok_or_else(|| format!("unknown workload {v}"))?];
                }
            }
            "--seed" => seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--ops" => ops = value()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--at" => at = Some(value()?.parse().map_err(|e| format!("--at: {e}"))?),
            other => return Err(format!("unknown option {other}")),
        }
    }

    if let Some(k) = at {
        // Reproduce one tuple: exactly one scheme and workload.
        let (&scheme, &kind) = match (&schemes[..], &kinds[..]) {
            ([s], [w]) => (s, w),
            _ => return Err("--at needs exactly one --scheme and one --workload".into()),
        };
        let case = SweepCase::new(scheme, kind, seed, ops);
        return Ok(match check_point(&case, k) {
            Ok(()) => {
                println!("crashsweep OK {case} k={k}: recovered to the oracle state");
                ExitCode::SUCCESS
            }
            Err(fail) => {
                println!("{fail}");
                ExitCode::FAILURE
            }
        });
    }

    let cases = sweep_cases(&schemes, &kinds, seed, ops);
    let total: u64 = cases.iter().map(count_events).sum();
    println!(
        "sweeping {} case(s), {} persist events total (seed {seed}, {ops} ops) ...",
        cases.len(),
        total
    );
    let start = std::time::Instant::now();
    let report = run_sweep(&cases);
    print!("{report}");
    println!("({:.2}s)", start.elapsed().as_secs_f64());
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: slpmt <schemes|overhead|run <index>|compare <index>|matrix|trace|crashsweep> \
         [--scheme S] [--ops N] [--value B] [--annotations manual|compiler|none] [--latency NS]\n\
         crashsweep: [--scheme S|all] [--workload W|all] [--seed N] [--ops N] [--at K]\n\
         indices: {}",
        IndexKind::ALL.map(|k| k.to_string()).join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "schemes" => {
            cmd_schemes();
            ExitCode::SUCCESS
        }
        "overhead" => {
            cmd_overhead();
            ExitCode::SUCCESS
        }
        "run" | "compare" => {
            let Some(kind) = args.get(1).and_then(|k| parse_kind(k)) else {
                return usage();
            };
            match parse_options(&args[2..]) {
                Ok(o) => {
                    if cmd == "run" {
                        cmd_run(kind, &o);
                    } else {
                        cmd_compare(kind, &o);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "matrix" => match parse_options(&args[1..]) {
            Ok(o) => {
                cmd_matrix(&o);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "crashsweep" => match cmd_crashsweep(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "trace" => match parse_options(&args[1..]) {
            Ok(o) => {
                cmd_trace(&o);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
