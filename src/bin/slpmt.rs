//! `slpmt` — command-line front end for the simulator.
//!
//! ```text
//! slpmt schemes                         list hardware designs
//! slpmt overhead                        §III-D hardware budget
//! slpmt run <index> [options]           run YCSB-load inserts
//! slpmt compare <index> [options]       all schemes side by side
//! slpmt matrix [options]                full scheme × index matrix (parallel)
//! slpmt trace [trace options]           capture an event trace (Perfetto JSON)
//! slpmt crashsweep [sweep options]      exhaustive persist-event crash sweep
//! slpmt faults [fault options]          media-fault sweep (tear/poison/flip/jitter)
//! slpmt mc [mc options]                 deterministic multi-core run
//! slpmt shards <index> [shard options]  keyspace-sharded scaling run
//! slpmt ycsb [ycsb options]             named-mix matrix (A–F, delete-heavy, …)
//! slpmt serve [serve options]           KV service front end (memcached-text facade)
//! slpmt ptm [ptm options]               software-PTM baseline matrix (fences, WAF)
//!
//! options: --scheme <name> --ops <n> --value <bytes>
//!          --annotations <manual|compiler|none> --latency <ns>
//! trace options: --scheme <name> --workload <name> --ops <n>
//!                --value <bytes> --seed <n> --out <file>
//! sweep options: --scheme <name|all> --workload <name|all>
//!                --seed <n> --ops <n> [--at <k>]
//! fault options: sweep options plus --points <n> and
//!                --plan s<seed>:t<0|1>[:w<word>]:p<n>:f<n>:j<n>
//!                (repeatable; `--plan P --at K` replays one point)
//! mc options: --scheme <name> --cores <2-4> --seed <n>
//!             --sched <rr:K|weighted:K> --txns <n> --stores <n>
//!             --skew <theta-milli> [--crash-at <k>]
//! shard options: --scheme <name> --ops <n> --value <bytes> --shards <n>
//! ycsb options: --mix <a..f|delete-heavy|delete-heavy-zipf|churn|all>
//!               --scheme <name|all> --workload <name|all> --load <n>
//!               --ops <n> --value <bytes> --seed <n> [--sweep] [--faults]
//!               [--points <n>] [--shards <n>] [--json]
//! serve options: --mix <m[,m..]|all> --scheme <name|all> --workload <name>
//!                --shards <n[,n..]> --load <n> --requests <n> --value <bytes>
//!                --seed <n> --sessions <n> [--open-loop] [--gap <cycles>]
//!                [--jitter <window>] [--queue-limit <n>] [--json]
//! ptm options: --scheme <name|all> --workload <name|all> --ops <n>
//!              --value <bytes> [--json]
//!
//! `matrix` and `crashsweep` fan their cells across worker threads
//! (one per available core; override with SLPMT_THREADS, where 1
//! forces a serial run); the merged output is identical for any
//! worker count. `crashsweep --at K` replays exactly one failing
//! `(scheme, workload, seed, k)` tuple from a sweep report; `mc`
//! replays one `(scheme, cores, seed, schedule)` interleaving tuple
//! from an interleaving-sweep report (`--crash-at K` additionally arms
//! a crash at persist event K and oracle-checks recovery). `shards`
//! runs share-nothing keyspace shards on `SLPMT_THREADS` host workers
//! and reports *simulated* scaling (ops per kilocycle of makespan).
//! ```

use slpmt::cache::CacheConfig;
use slpmt::core::{HardwareOverhead, MachineConfig, MachineStats, PtmFlavor, Scheme, SchemeKind};
use slpmt::trace::{export_chrome_trace, JsonWriter, Metrics, TraceRecord};
use slpmt::workloads::runner::{run_inserts_with, IndexKind};
use slpmt::workloads::{ycsb_load, AnnotationSource};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The deterministic dump path for a captured trace: a sanitised stem
/// under `target/traces/`. The same reproducer tuple always maps to
/// the same path, so replaying `--at K` overwrites byte-identically.
fn trace_path(stem: &str) -> PathBuf {
    let safe: String = stem
        .to_ascii_lowercase()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect();
    Path::new("target/traces").join(format!("{safe}.json"))
}

/// Exports `records` as Chrome-trace JSON at `path` (parent created).
fn dump_trace(records: &[TraceRecord], path: &Path) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    std::fs::write(path, export_chrome_trace(records))
        .map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Emits every [`MachineStats`] counter under `key` in the current
/// JSON object (the machine-readable twin of `MachineStats::summary`).
fn json_stats(w: &mut JsonWriter, key: &str, s: &MachineStats) {
    w.key(key);
    w.begin_obj();
    for (name, v) in [
        ("loads", s.loads),
        ("stores", s.stores),
        ("store_ts", s.store_ts),
        ("tx_begins", s.tx_begins),
        ("tx_commits", s.tx_commits),
        ("tx_aborts", s.tx_aborts),
        ("suspended_aborts", s.suspended_aborts),
        ("cross_core_aborts", s.cross_core_aborts),
        ("cross_core_repair_aborts", s.cross_core_repair_aborts),
        ("log_records_created", s.log_records_created),
        ("log_records_discarded", s.log_records_discarded),
        ("commit_line_persists", s.commit_line_persists),
        ("lazy_lines_deferred", s.lazy_lines_deferred),
        ("lazy_lines_forced", s.lazy_lines_forced),
        ("lazy_lines_overflowed", s.lazy_lines_overflowed),
        ("signature_hits", s.signature_hits),
        ("commit_stall_cycles", s.commit_stall_cycles),
        ("fences", s.fences),
        ("flushes", s.flushes),
        ("fence_stall_cycles", s.fence_stall_cycles),
        ("compute_cycles", s.compute_cycles),
    ] {
        w.key(name);
        w.u64(v);
    }
    w.end_obj();
}

struct Options {
    scheme: Scheme,
    ops: usize,
    value: usize,
    annotations: AnnotationSource,
    latency_ns: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scheme: Scheme::Slpmt,
            ops: 1000,
            value: 256,
            annotations: AnnotationSource::Manual,
            latency_ns: None,
        }
    }
}

/// Hardware-only scheme lookup, resolved through the shared
/// [`SchemeKind::REGISTRY`] (the single source of scheme names).
fn parse_scheme(name: &str) -> Option<Scheme> {
    SchemeKind::parse(name).and_then(SchemeKind::hardware)
}

fn parse_kind(name: &str) -> Option<IndexKind> {
    IndexKind::ALL
        .into_iter()
        .find(|k| k.to_string().eq_ignore_ascii_case(name))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = value()?;
                o.scheme = parse_scheme(&v).ok_or_else(|| format!("unknown scheme {v}"))?;
            }
            "--ops" => o.ops = value()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--value" => o.value = value()?.parse().map_err(|e| format!("--value: {e}"))?,
            "--annotations" => {
                o.annotations = match value()?.as_str() {
                    "manual" => AnnotationSource::Manual,
                    "compiler" => AnnotationSource::Compiler,
                    "none" => AnnotationSource::None,
                    other => return Err(format!("unknown annotation source {other}")),
                }
            }
            "--latency" => {
                o.latency_ns = Some(value()?.parse().map_err(|e| format!("--latency: {e}"))?)
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn config_for(o: &Options, scheme: Scheme) -> MachineConfig {
    let mut cfg = MachineConfig::for_scheme(scheme);
    if let Some(ns) = o.latency_ns {
        cfg.pm = cfg.pm.with_write_latency_ns(ns);
    }
    cfg
}

fn cmd_schemes() {
    println!(
        "{:<10} {:<6} {:<8} {:<9} {:<6} {:<11}",
        "scheme", "gran.", "buffer", "log-free", "lazy", "discipline"
    );
    for k in SchemeKind::REGISTRY {
        match k.hardware() {
            Some(s) => {
                let f = s.features();
                println!(
                    "{:<10} {:<6} {:<8} {:<9} {:<6} {:<11}",
                    s.to_string(),
                    format!("{:?}", f.granularity),
                    format!("{:?}", f.buffer),
                    f.log_free,
                    f.lazy,
                    format!("{:?}", f.discipline),
                );
            }
            None => {
                let flavor = k.software().expect("registry entry is hw or sw");
                println!(
                    "{:<10} {:<6} {:<8} {:<9} {:<6} {:<11}",
                    k.to_string(),
                    "Word",
                    "SwArena",
                    false,
                    false,
                    format!(
                        "Sw{} ({} commit fence{})",
                        if flavor.is_redo() { "Redo" } else { "Undo" },
                        flavor.commit_fences(),
                        if flavor.commit_fences() == 1 { "" } else { "s" },
                    ),
                );
            }
        }
    }
}

fn cmd_overhead() {
    let oh = HardwareOverhead::for_config(&CacheConfig::default());
    println!("per-core SLPMT storage (§III-D):");
    println!(
        "  cache metadata : {} B ({} b/L1 line, {} b/L2 line)",
        oh.cache_meta_bytes, oh.l1_bits_per_line, oh.l2_bits_per_line
    );
    println!("  log buffer     : {} B", oh.log_buffer_bytes);
    println!("  signatures     : {} B", oh.signature_bytes);
    println!(
        "  total          : {:.1} KB (paper: 6.1 KB)",
        oh.total_bytes() as f64 / 1024.0
    );
}

fn cmd_run(kind: IndexKind, o: &Options) {
    let ops = ycsb_load(o.ops, o.value, 42);
    let r = run_inserts_with(
        config_for(o, o.scheme),
        kind,
        &ops,
        o.value,
        o.annotations,
        true,
    );
    println!(
        "{kind} under {} ({} × {} B inserts, verified)",
        o.scheme, o.ops, o.value
    );
    println!("  cycles        : {}", r.cycles);
    println!(
        "  media traffic : {} B ({} data lines, {} log records)",
        r.traffic.media_bytes(),
        r.traffic.data_lines,
        r.traffic.log_records
    );
    println!("{}", r.stats);
}

fn cmd_compare(kind: IndexKind, o: &Options) {
    let ops = ycsb_load(o.ops, o.value, 42);
    let base = run_inserts_with(
        config_for(o, Scheme::Fg),
        kind,
        &ops,
        o.value,
        o.annotations,
        false,
    );
    println!(
        "{kind}: {} × {} B inserts (speedup and traffic vs FG)",
        o.ops, o.value
    );
    for s in [
        Scheme::Fg,
        Scheme::FgLg,
        Scheme::FgLz,
        Scheme::Slpmt,
        Scheme::Atom,
        Scheme::Ede,
    ] {
        let r = run_inserts_with(config_for(o, s), kind, &ops, o.value, o.annotations, false);
        println!(
            "  {:<8} {:>12} cycles  {:>5.2}x  {:>9} media B  {:>+6.1}%",
            s.to_string(),
            r.cycles,
            r.speedup_vs(&base),
            r.traffic.media_bytes(),
            -r.traffic_reduction_vs(&base) * 100.0,
        );
    }
}

fn cmd_matrix(o: &Options, json: bool) {
    use slpmt::bench::runner::{fig08_cells, run_matrix, threads};
    let ops = ycsb_load(o.ops, o.value, 42);
    let cells = fig08_cells(&IndexKind::ALL);
    let start = std::time::Instant::now();
    let results = run_matrix(&cells, &ops, o.value, o.annotations, o.latency_ns);
    let elapsed = start.elapsed();
    let row = 1 + 5; // FG baseline + the five compared schemes
    if json {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("command");
        w.string("matrix");
        w.key("ops");
        w.u64(o.ops as u64);
        w.key("value_bytes");
        w.u64(o.value as u64);
        w.key("workers");
        w.u64(threads() as u64);
        w.key("elapsed_s");
        w.f64(elapsed.as_secs_f64());
        w.key("cells");
        w.begin_arr();
        for (k, chunk) in results.chunks_exact(row).enumerate() {
            let base = &chunk[0];
            for r in chunk {
                w.begin_obj();
                w.key("workload");
                w.string(&IndexKind::ALL[k].to_string());
                w.key("scheme");
                w.string(&r.scheme.to_string());
                w.key("cycles");
                w.u64(r.cycles);
                w.key("speedup_vs_fg");
                w.f64(r.speedup_vs(base));
                w.key("media_bytes");
                w.u64(r.traffic.media_bytes());
                w.key("data_lines");
                w.u64(r.traffic.data_lines);
                w.key("log_records");
                w.u64(r.traffic.log_records);
                w.key("logical_bytes");
                w.u64(r.logical_bytes);
                w.key("waf");
                w.f64(r.waf());
                json_stats(&mut w, "stats", &r.stats);
                w.end_obj();
            }
        }
        w.end_arr();
        w.end_obj();
        println!("{}", w.finish());
        return;
    }
    println!(
        "scheme × index matrix: {} cells, {} × {} B inserts, {} worker(s), {:.2}s",
        cells.len(),
        o.ops,
        o.value,
        threads(),
        elapsed.as_secs_f64(),
    );
    println!(
        "{:<18} {:>12} {:>8} {:>12} {:>10} {:>7}",
        "cell", "cycles", "vs FG", "media B", "log recs", "waf"
    );
    for (k, chunk) in results.chunks_exact(row).enumerate() {
        let kind = IndexKind::ALL[k];
        let base = &chunk[0];
        for r in chunk {
            println!(
                "{:<18} {:>12} {:>7.2}x {:>12} {:>10} {:>7.2}",
                format!("{kind}/{}", r.scheme),
                r.cycles,
                r.speedup_vs(base),
                r.traffic.media_bytes(),
                r.traffic.log_records,
                r.waf(),
            );
        }
    }
}

/// `slpmt trace`: run a seeded workload with event tracing on, export
/// the Chrome/Perfetto trace to `--out`, and print the metrics
/// snapshot folded from the very same records.
fn cmd_trace(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::workloads::runner::run_inserts_traced;

    let mut scheme = Scheme::Slpmt;
    let mut kind = IndexKind::Hashtable;
    let mut ops = 50usize;
    let mut value = 64usize;
    let mut seed = 42u64;
    let mut out = PathBuf::from("trace.json");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = val()?;
                scheme = parse_scheme(&v).ok_or_else(|| format!("unknown scheme {v}"))?;
            }
            "--workload" => {
                let v = val()?;
                kind = parse_kind(&v).ok_or_else(|| format!("unknown workload {v}"))?;
            }
            "--ops" => ops = val()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--value" => value = val()?.parse().map_err(|e| format!("--value: {e}"))?,
            "--seed" => seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => out = PathBuf::from(val()?),
            other => return Err(format!("unknown option {other}")),
        }
    }

    let stream = ycsb_load(ops, value, seed);
    let (r, records) = run_inserts_traced(
        MachineConfig::for_scheme(scheme),
        kind,
        &stream,
        value,
        AnnotationSource::Manual,
    );
    dump_trace(&records, &out)?;
    println!(
        "captured {} events: {kind} under {scheme}, {ops} × {value} B inserts (seed {seed})",
        records.len()
    );
    println!(
        "trace written to {} (open in Perfetto / chrome://tracing)",
        out.display()
    );
    println!("  {}", r.stats.summary());
    println!("{}", Metrics::from_records(&records));
    Ok(ExitCode::SUCCESS)
}

/// `slpmt crashsweep`: the exhaustive persist-event crash sweep, or a
/// single reproduced `(scheme, workload, seed, k)` point with `--at`.
fn cmd_crashsweep(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::bench::crashsweep::{run_sweep, sweep_cases};
    use slpmt::workloads::crashsweep::{
        check_point, count_events, trace_crash_at, SweepCase, SWEEP_SCHEMES,
    };

    let mut schemes: Vec<SchemeKind> = SWEEP_SCHEMES.iter().map(|&s| s.into()).collect();
    let mut kinds = vec![IndexKind::Hashtable, IndexKind::Rbtree, IndexKind::Heap];
    let mut seed = 42u64;
    let mut ops = 50usize;
    let mut at: Option<u64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = value()?;
                if v.eq_ignore_ascii_case("all") {
                    schemes = SchemeKind::REGISTRY.to_vec();
                } else {
                    schemes =
                        vec![SchemeKind::parse(&v).ok_or_else(|| format!("unknown scheme {v}"))?];
                }
            }
            "--workload" => {
                let v = value()?;
                if !v.eq_ignore_ascii_case("all") {
                    kinds = vec![parse_kind(&v).ok_or_else(|| format!("unknown workload {v}"))?];
                }
            }
            "--seed" => seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--ops" => ops = value()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--at" => at = Some(value()?.parse().map_err(|e| format!("--at: {e}"))?),
            other => return Err(format!("unknown option {other}")),
        }
    }

    if let Some(k) = at {
        // Reproduce one tuple: exactly one scheme and workload.
        let (&scheme, &kind) = match (&schemes[..], &kinds[..]) {
            ([s], [w]) => (s, w),
            _ => return Err("--at needs exactly one --scheme and one --workload".into()),
        };
        let case = SweepCase::new(scheme, kind, seed, ops);
        let verdict = check_point(&case, k);
        // Replays are capture runs: always dump the trace, to the same
        // deterministic path the sweep's auto-capture uses, so a
        // re-run reproduces the file byte-identically.
        let path = trace_path(&format!("crashsweep-{scheme}-{kind}-s{seed}-k{k}"));
        dump_trace(&trace_crash_at(&case, k), &path)?;
        return Ok(match verdict {
            Ok(()) => {
                println!("crashsweep OK {case} k={k}: recovered to the oracle state");
                println!("  trace: {}", path.display());
                ExitCode::SUCCESS
            }
            Err(fail) => {
                println!("{fail}");
                println!("  trace: {}", path.display());
                ExitCode::FAILURE
            }
        });
    }

    let cases = sweep_cases(&schemes, &kinds, seed, ops);
    let total: u64 = cases.iter().map(count_events).sum();
    println!(
        "sweeping {} case(s), {} persist events total (seed {seed}, {ops} ops) ...",
        cases.len(),
        total
    );
    let start = std::time::Instant::now();
    let report = run_sweep(&cases);
    print!("{report}");
    // Auto-capture: re-run each failing tuple with tracing on and dump
    // the trace next to it (capped — every tuple stays replayable via
    // `--at K`, which writes the same path).
    const CAPTURE_CAP: usize = 16;
    for fail in report.failures.iter().take(CAPTURE_CAP) {
        let c = &fail.case;
        let path = trace_path(&format!(
            "crashsweep-{}-{}-s{}-k{}",
            c.scheme, c.kind, c.seed, fail.k
        ));
        dump_trace(&trace_crash_at(c, fail.k), &path)?;
        println!("  trace for k={}: {}", fail.k, path.display());
    }
    if report.failures.len() > CAPTURE_CAP {
        println!(
            "  ({} more failure(s) not auto-captured; replay with --at K)",
            report.failures.len() - CAPTURE_CAP
        );
    }
    println!("({:.2}s)", start.elapsed().as_secs_f64());
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `slpmt faults`: the media-fault sweep — seeded crash points under
/// torn-write / poison / bit-flip / jitter plans — or a single
/// reproduced `(scheme, workload, seed, k, plan)` point with
/// `--plan … --at …`.
fn cmd_faults(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::bench::faultsweep::{fault_cases, run_fault_sweep};
    use slpmt::pmem::FaultPlan;
    use slpmt::workloads::crashsweep::{SweepCase, SWEEP_SCHEMES};
    use slpmt::workloads::faultsweep::{check_fault_point, trace_fault_at, FaultCase};

    let mut schemes: Vec<SchemeKind> = SWEEP_SCHEMES.iter().map(|&s| s.into()).collect();
    let mut kinds = vec![IndexKind::Hashtable, IndexKind::Rbtree, IndexKind::Heap];
    let mut seed = 42u64;
    let mut ops = 20usize;
    let mut points = 2usize;
    let mut plans: Vec<FaultPlan> = Vec::new();
    let mut at: Option<u64> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--json" {
            json = true;
            continue;
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = value()?;
                if v.eq_ignore_ascii_case("all") {
                    schemes = SchemeKind::REGISTRY.to_vec();
                } else {
                    schemes =
                        vec![SchemeKind::parse(&v).ok_or_else(|| format!("unknown scheme {v}"))?];
                }
            }
            "--workload" => {
                let v = value()?;
                if !v.eq_ignore_ascii_case("all") {
                    kinds = vec![parse_kind(&v).ok_or_else(|| format!("unknown workload {v}"))?];
                }
            }
            "--seed" => seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--ops" => ops = value()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--points" => points = value()?.parse().map_err(|e| format!("--points: {e}"))?,
            "--plan" => plans.push(value()?.parse().map_err(|e| format!("--plan: {e}"))?),
            "--at" => at = Some(value()?.parse().map_err(|e| format!("--at: {e}"))?),
            other => return Err(format!("unknown option {other}")),
        }
    }

    if let Some(k) = at {
        // Reproduce one failure tuple verbatim.
        let (&scheme, &kind, &plan) = match (&schemes[..], &kinds[..], &plans[..]) {
            ([s], [w], [p]) => (s, w, p),
            _ => return Err("--at needs exactly one --scheme, --workload and --plan".into()),
        };
        let case = FaultCase {
            base: SweepCase::new(scheme, kind, seed, ops),
            plan,
        };
        let verdict = check_fault_point(&case, k);
        // Replays are capture runs: dump to the deterministic path the
        // sweep's auto-capture uses (byte-identical on every re-run).
        let path = trace_path(&format!("faultsweep-{scheme}-{kind}-s{seed}-p{plan}-k{k}"));
        dump_trace(&trace_fault_at(&case, k), &path)?;
        return Ok(match verdict {
            Ok(()) => {
                println!("faultsweep OK {case} k={k}: degradation rules held");
                println!("  trace: {}", path.display());
                ExitCode::SUCCESS
            }
            Err(fail) => {
                println!("{fail}");
                println!("  trace: {}", path.display());
                ExitCode::FAILURE
            }
        });
    }

    let cases = fault_cases(&schemes, &kinds, seed, ops, &plans);
    if !json {
        println!(
            "fault-sweeping {} cell(s) × {points} crash point(s) (seed {seed}, {ops} ops) ...",
            cases.len()
        );
    }
    let start = std::time::Instant::now();
    let report = run_fault_sweep(&cases, points);
    // Auto-capture: re-run each failing tuple with tracing on (capped;
    // every tuple stays replayable via `--plan P --at K`).
    const CAPTURE_CAP: usize = 16;
    let mut captured = Vec::new();
    for fail in report.failures.iter().take(CAPTURE_CAP) {
        let b = &fail.case.base;
        let path = trace_path(&format!(
            "faultsweep-{}-{}-s{}-p{}-k{}",
            b.scheme, b.kind, b.seed, fail.case.plan, fail.k
        ));
        dump_trace(&trace_fault_at(&fail.case, fail.k), &path)?;
        captured.push(path);
    }
    if json {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("command");
        w.string("faults");
        w.key("seed");
        w.u64(seed);
        w.key("ops");
        w.u64(ops as u64);
        w.key("points_per_case");
        w.u64(points as u64);
        w.key("cases");
        w.u64(report.cases as u64);
        w.key("points");
        w.u64(report.points as u64);
        w.key("clean");
        w.bool(report.is_clean());
        w.key("failures");
        w.begin_arr();
        for (i, fail) in report.failures.iter().enumerate() {
            let b = &fail.case.base;
            w.begin_obj();
            w.key("scheme");
            w.string(&b.scheme.to_string());
            w.key("workload");
            w.string(&b.kind.to_string());
            w.key("seed");
            w.u64(b.seed);
            w.key("ops");
            w.u64(b.ops as u64);
            w.key("plan");
            w.string(&fail.case.plan.to_string());
            w.key("k");
            w.u64(fail.k);
            w.key("detail");
            w.string(&fail.detail);
            if let Some(path) = captured.get(i) {
                w.key("trace");
                w.string(&path.display().to_string());
            }
            w.end_obj();
        }
        w.end_arr();
        w.key("elapsed_s");
        w.f64(start.elapsed().as_secs_f64());
        w.end_obj();
        println!("{}", w.finish());
    } else {
        print!("{report}");
        for (fail, path) in report.failures.iter().zip(&captured) {
            println!("  trace for k={}: {}", fail.k, path.display());
        }
        if report.failures.len() > CAPTURE_CAP {
            println!(
                "  ({} more failure(s) not auto-captured; replay with --plan P --at K)",
                report.failures.len() - CAPTURE_CAP
            );
        }
        println!("({:.2}s)", start.elapsed().as_secs_f64());
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `rr:SEED` or `weighted:SEED`, the format sweep reports print.
fn parse_sched(v: &str) -> Result<slpmt::core::Schedule, String> {
    use slpmt::core::Schedule;
    let (policy, seed) = v
        .split_once(':')
        .ok_or_else(|| format!("schedule {v} is not <rr|weighted>:<seed>"))?;
    let seed: u64 = seed.parse().map_err(|e| format!("schedule seed: {e}"))?;
    match policy {
        "rr" => Ok(Schedule::round_robin(seed)),
        "weighted" => Ok(Schedule::weighted(seed)),
        other => Err(format!("unknown schedule policy {other}")),
    }
}

/// `slpmt mc`: one deterministic multi-core run — the replay side of
/// the interleaving and multi-core crash sweeps.
fn cmd_mc(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::core::multi::{
        check_serialized_oracle, gen_programs, mc_check_point, mc_trace_crash_at, run_programs,
    };
    use slpmt::core::{McEvent, McSweepCase, ProgramSpec, Schedule};

    let mut case = McSweepCase::new(Scheme::Slpmt, 2, 42, Schedule::round_robin(42));
    let mut crash_at: Option<u64> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--json" {
            json = true;
            continue;
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = value()?;
                case.scheme = parse_scheme(&v).ok_or_else(|| format!("unknown scheme {v}"))?;
            }
            "--cores" => case.cores = value()?.parse().map_err(|e| format!("--cores: {e}"))?,
            "--seed" => case.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--sched" => case.sched = parse_sched(&value()?)?,
            "--txns" => {
                case.txns_per_core = value()?.parse().map_err(|e| format!("--txns: {e}"))?
            }
            "--stores" => {
                case.stores_per_txn = value()?.parse().map_err(|e| format!("--stores: {e}"))?
            }
            "--skew" => case.skew = value()?.parse().map_err(|e| format!("--skew: {e}"))?,
            "--crash-at" => {
                crash_at = Some(value()?.parse().map_err(|e| format!("--crash-at: {e}"))?)
            }
            other => return Err(format!("unknown option {other}")),
        }
    }

    if let Some(k) = crash_at {
        let verdict = mc_check_point(&case, k);
        // Replays are capture runs: dump the interleaving's trace to a
        // deterministic path (byte-identical on every re-run).
        let path = trace_path(&format!(
            "mc-{}-c{}-s{}-{}-k{k}",
            case.scheme, case.cores, case.seed, case.sched
        ));
        dump_trace(&mc_trace_crash_at(&case, k), &path)?;
        return Ok(match verdict {
            Ok(()) => {
                println!("mc OK {case} k={k}: recovered within the admissible set");
                println!("  trace: {}", path.display());
                ExitCode::SUCCESS
            }
            Err(fail) => {
                println!("{fail}");
                println!("  trace: {}", path.display());
                ExitCode::FAILURE
            }
        });
    }

    let mut spec = ProgramSpec::small(case.cores, case.seed);
    spec.txns_per_core = case.txns_per_core;
    spec.stores_per_txn = case.stores_per_txn;
    spec.shared_skew_milli = case.skew;
    let programs = gen_programs(&spec);
    let (mm, outcome) = run_programs(
        MachineConfig::for_scheme(case.scheme),
        &programs,
        case.sched,
    );
    let aborts = outcome
        .events
        .iter()
        .filter(|e| matches!(e, McEvent::ConflictAborted { .. }))
        .count();
    let oracle = check_serialized_oracle(&mm, &outcome);
    if json {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("command");
        w.string("mc");
        w.key("scheme");
        w.string(&case.scheme.to_string());
        w.key("cores");
        w.u64(case.cores as u64);
        w.key("seed");
        w.u64(case.seed);
        w.key("sched");
        w.string(&case.sched.to_string());
        w.key("txns_per_core");
        w.u64(case.txns_per_core as u64);
        w.key("stores_per_txn");
        w.u64(case.stores_per_txn as u64);
        w.key("skew_milli");
        w.u64(case.skew as u64);
        w.key("committed");
        w.u64(outcome.committed.len() as u64);
        w.key("cross_core_aborts");
        w.u64(aborts as u64);
        w.key("cycles");
        w.u64(outcome.now);
        w.key("image_digest");
        w.string(&format!("{:#018x}", outcome.image_digest));
        w.key("oracle_ok");
        w.bool(oracle.is_ok());
        if let Err(e) = &oracle {
            w.key("oracle_error");
            w.string(e);
        }
        json_stats(&mut w, "stats", &outcome.stats);
        w.end_obj();
        println!("{}", w.finish());
        return Ok(if oracle.is_ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    println!(
        "{case}: {} txns/core × {} stores",
        case.txns_per_core, case.stores_per_txn
    );
    println!(
        "  committed     : {} txns ({} cross-core aborts)",
        outcome.committed.len(),
        aborts
    );
    println!("  cycles        : {}", outcome.now);
    println!("  image digest  : {:#018x}", outcome.image_digest);
    for e in &outcome.events {
        match e {
            McEvent::Committed { core, seq } => println!("  core {core} committed txn {seq}"),
            McEvent::ConflictAborted {
                core,
                seq,
                by_core,
                line,
                is_write,
            } => println!(
                "  core {core} txn {seq} aborted by core {by_core} ({} line {line:#x})",
                if *is_write { "write to" } else { "read of" }
            ),
        }
    }
    Ok(match oracle {
        Ok(report) => {
            println!(
                "oracle OK: {} words checked, {} skipped",
                report.words_checked, report.words_skipped
            );
            println!("  {}", outcome.stats.summary());
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("oracle FAILED: {e}");
            ExitCode::FAILURE
        }
    })
}

/// `slpmt shards`: the share-nothing scaling run.
fn cmd_shards(kind: IndexKind, args: &[String]) -> Result<ExitCode, String> {
    use slpmt::bench::sharded::run_sharded;

    let mut scheme = Scheme::Slpmt;
    let mut ops = 1000usize;
    let mut value = 256usize;
    let mut shards = 4usize;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--json" {
            json = true;
            continue;
        }
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = val()?;
                scheme = parse_scheme(&v).ok_or_else(|| format!("unknown scheme {v}"))?;
            }
            "--ops" => ops = val()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--value" => value = val()?.parse().map_err(|e| format!("--value: {e}"))?,
            "--shards" => shards = val()?.parse().map_err(|e| format!("--shards: {e}"))?,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }

    let stream = ycsb_load(ops, value, 42);
    let run = |n: usize| {
        run_sharded(
            MachineConfig::for_scheme(scheme),
            kind,
            &stream,
            value,
            AnnotationSource::Manual,
            n,
            false,
        )
    };
    let base = run(1);
    let res = run(shards);
    if json {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("command");
        w.string("shards");
        w.key("workload");
        w.string(&kind.to_string());
        w.key("scheme");
        w.string(&scheme.to_string());
        w.key("ops");
        w.u64(ops as u64);
        w.key("value_bytes");
        w.u64(value as u64);
        w.key("shards");
        w.u64(shards as u64);
        w.key("makespan_cycles");
        w.u64(res.sim_cycles());
        w.key("total_cycles");
        w.u64(res.total_cycles());
        w.key("sim_ops_per_kcycle");
        w.f64(res.sim_ops_per_kcycle());
        w.key("speedup_vs_1_shard");
        w.f64(res.sim_ops_per_kcycle() / base.sim_ops_per_kcycle());
        w.key("media_bytes");
        w.u64(res.merged_traffic().media_bytes());
        w.key("per_shard");
        w.begin_arr();
        for r in &res.shards {
            w.begin_obj();
            w.key("commits");
            w.u64(r.stats.tx_commits);
            w.key("cycles");
            w.u64(r.cycles);
            w.end_obj();
        }
        w.end_arr();
        json_stats(&mut w, "stats", &res.merged_stats());
        w.end_obj();
        println!("{}", w.finish());
        return Ok(ExitCode::SUCCESS);
    }
    println!("{kind} under {scheme}: {ops} × {value} B inserts across {shards} shard(s)");
    for (s, r) in res.shards.iter().enumerate() {
        println!(
            "  shard {s}: {:>6} ops {:>12} cycles",
            r.stats.tx_commits, r.cycles
        );
    }
    println!(
        "  makespan      : {} cycles (slowest shard)",
        res.sim_cycles()
    );
    println!(
        "  sim throughput: {:.3} ops/kcycle ({:.2}x vs 1 shard)",
        res.sim_ops_per_kcycle(),
        res.sim_ops_per_kcycle() / base.sim_ops_per_kcycle()
    );
    println!(
        "  media traffic : {} B across shards",
        res.merged_traffic().media_bytes()
    );
    println!("  {}", res.merged_stats().summary());
    Ok(ExitCode::SUCCESS)
}

/// Short git revision for tagging benchmark snapshots, `unknown`
/// outside a work tree.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// `slpmt bench`: the performance snapshot behind `BENCH_<n>.json`
/// (`scripts/bench.sh`). Times three hot-path drivers — the
/// scheme×index matrix, the multi-core engine, and the 16-way sharded
/// driver at 1/4/8/16 workers — plus the per-op microbenches, and
/// emits one schema-stable JSON object. Simulated columns (cycles,
/// ops/kcycle) are deterministic; wall-clock columns are best-of
/// `--reps`, mirroring `scripts/trace_overhead.sh`'s best-of-N
/// discipline so one noisy run cannot fake a regression.
fn cmd_bench(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::bench::micro;
    use slpmt::bench::runner::{fig08_cells, run_matrix_with, threads};
    use slpmt::bench::sharded::run_sharded_with;
    use slpmt::core::multi::{gen_programs, run_programs};
    use slpmt::core::{ProgramSpec, Schedule};
    use std::time::Instant;

    let mut ops = 1000usize;
    let mut value = 256usize;
    let mut reps = 3u32;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--json" {
            json = true;
            continue;
        }
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--ops" => ops = val()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--value" => value = val()?.parse().map_err(|e| format!("--value: {e}"))?,
            "--reps" => reps = val()?.parse().map_err(|e| format!("--reps: {e}"))?,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if reps == 0 {
        return Err("--reps must be at least 1".into());
    }

    let stream = ycsb_load(ops, value, 42);
    let workers = threads();

    // Matrix: every fig08 cell once, fanned across the default worker
    // pool. Sim-throughput = simulated inserts retired per host second.
    let cells = fig08_cells(&IndexKind::ALL);
    let mut matrix_wall = f64::INFINITY;
    let mut matrix_cells = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        let results = run_matrix_with(
            &cells,
            workers,
            &stream,
            value,
            AnnotationSource::Manual,
            None,
        );
        matrix_wall = matrix_wall.min(t0.elapsed().as_secs_f64());
        matrix_cells = results.len();
    }
    let matrix_sim_ops = (matrix_cells * ops) as f64;
    let matrix_ops_per_s = matrix_sim_ops / matrix_wall;

    // Multi-core engine: a fixed 4-core round-robin program mix.
    let mut spec = ProgramSpec::small(4, 42);
    spec.txns_per_core = 64;
    spec.stores_per_txn = 8;
    let programs = gen_programs(&spec);
    let mc_ops: u64 = programs.iter().map(|p| p.len() as u64).sum();
    let mut mc_wall = f64::INFINITY;
    let mut mc_cycles = 0u64;
    let mut mc_commits = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (mm, _outcome) = run_programs(
            MachineConfig::for_scheme(Scheme::Slpmt),
            &programs,
            Schedule::round_robin(42),
        );
        mc_wall = mc_wall.min(t0.elapsed().as_secs_f64());
        mc_cycles = mm.machine().now();
        mc_commits = mm.machine().stats().tx_commits;
    }
    // Conflict aborts make commit counts schedule-dependent, so the
    // throughput metric is trace operations executed per host second.
    let mc_ops_per_s = mc_ops as f64 / mc_wall;

    // Sharded driver: 16 keyspace shards, worker sweep. The simulated
    // makespan is identical at every worker count (the bit-identity
    // property the sharded tests pin); only wall-clock moves.
    const SHARDS: usize = 16;
    let mut shard_makespan = 0u64;
    let mut shard_kcycle = 0.0f64;
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for &w in &[1usize, 4, 8, 16] {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = run_sharded_with(
                MachineConfig::for_scheme(Scheme::Slpmt),
                IndexKind::Hashtable,
                &stream,
                value,
                AnnotationSource::Manual,
                SHARDS,
                w,
                false,
            );
            best = best.min(t0.elapsed().as_secs_f64());
            if shard_makespan != 0 && shard_makespan != r.sim_cycles() {
                return Err(format!(
                    "sharded makespan diverged across worker counts: {} vs {}",
                    shard_makespan,
                    r.sim_cycles()
                ));
            }
            shard_makespan = r.sim_cycles();
            shard_kcycle = r.sim_ops_per_kcycle();
        }
        scaling.push((w, best));
    }

    // YCSB mix matrix: the named mixes (A–F + delete-heavy adversaries)
    // on the reference scheme/index. The summed simulated cycle count
    // is deterministic — any drift is a semantic change — while
    // sim-ops/s tracks host throughput of the mixed-op path.
    let ycsb_mixes: Vec<slpmt::workloads::ycsb::MixSpec> = slpmt::workloads::ycsb::MixSpec::NAMED
        .iter()
        .map(|&(_, m)| m)
        .collect();
    let ycsb_cfg = slpmt::bench::ycsb::YcsbConfig {
        load: ops.min(500),
        ops,
        value_size: 32,
        seed: 42,
    };
    let ycsb_cells =
        slpmt::bench::ycsb::ycsb_cells(&ycsb_mixes, &[Scheme::Slpmt], &[IndexKind::Hashtable]);
    let mut ycsb_wall = f64::INFINITY;
    let mut ycsb_sim_cycles = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let rows = slpmt::bench::ycsb::run_ycsb_matrix(&ycsb_cells, &ycsb_cfg, false);
        ycsb_wall = ycsb_wall.min(t0.elapsed().as_secs_f64());
        ycsb_sim_cycles = rows.iter().map(|r| r.result.cycles).sum();
    }
    let ycsb_sim_ops = (ycsb_cells.len() * ops) as f64;
    let ycsb_ops_per_s = ycsb_sim_ops / ycsb_wall;

    // KV serve: YCSB-B through the memcached-text facade at 4 shards.
    // The simulated cycle count and the response digest are
    // deterministic (bench.sh hard-gates both); wall time tracks host
    // throughput of the full parse/admit/dispatch service loop.
    let mut serve_cfg = slpmt::kv::service::ServeConfig::new(
        Scheme::Slpmt,
        IndexKind::KvBtree,
        slpmt::workloads::ycsb::MixSpec::YCSB_B,
    );
    serve_cfg.load = ops.min(500);
    serve_cfg.requests = ops;
    serve_cfg.value_size = 32;
    serve_cfg.shards = 4;
    let mut serve_wall = f64::INFINITY;
    let mut serve_row = slpmt::bench::serve::run_serve(&serve_cfg);
    serve_wall = serve_wall.min(serve_row.wall_s);
    for _ in 1..reps {
        let row = slpmt::bench::serve::run_serve(&serve_cfg);
        if row.digest != serve_row.digest || row.total_sim_cycles != serve_row.total_sim_cycles {
            return Err(format!(
                "serve run diverged across reps: digest {:016x} vs {:016x}, cycles {} vs {}",
                serve_row.digest, row.digest, serve_row.total_sim_cycles, row.total_sim_cycles
            ));
        }
        serve_wall = serve_wall.min(row.wall_s);
        serve_row = row;
    }
    let serve_req_per_s = serve_row.served as f64 / serve_wall;

    // Chaos: the crash-during-serve battery at a fixed modest shape
    // (its cost scales with points × trace length, not --ops). The
    // sweep digest, point counts and contract counters are
    // deterministic — bench.sh hard-gates them — while wall time
    // tracks host throughput of the full serve/recover/retry path.
    let chaos_cases_v = slpmt::bench::chaos::chaos_cases(
        &[Scheme::Slpmt, Scheme::SlpmtRedo],
        IndexKind::KvBtree,
        42,
        40,
        &[
            slpmt::workloads::ycsb::MixSpec::YCSB_A,
            slpmt::workloads::ycsb::MixSpec::YCSB_B,
        ],
    );
    let mut chaos_wall = f64::INFINITY;
    let mut chaos_report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = slpmt::bench::chaos::run_chaos_sweep(&chaos_cases_v, &[], 4);
        chaos_wall = chaos_wall.min(t0.elapsed().as_secs_f64());
        if let Some(prev) = &chaos_report {
            let prev: &slpmt::bench::chaos::ChaosSweepReport = prev;
            if prev.digest != r.digest {
                return Err(format!(
                    "chaos sweep diverged across reps: digest {:016x} vs {:016x}",
                    prev.digest, r.digest
                ));
            }
        }
        chaos_report = Some(r);
    }
    let chaos_report = chaos_report.expect("reps >= 1");
    if !chaos_report.is_clean() {
        return Err(format!("chaos bench sweep failed:\n{chaos_report}"));
    }
    let chaos_points_per_s = chaos_report.points as f64 / chaos_wall;

    // Software-PTM baselines: the five flavours on the hashtable at a
    // fixed shape. Cycles, fence counts and the folded digest are all
    // simulated and deterministic — bench.sh hard-gates total cycles
    // and the digest — while wall time tracks host throughput of the
    // explicit store/flush/fence instruction streams.
    let ptm_ops = ops.min(500);
    let ptm_stream = ycsb_load(ptm_ops, 32, 42);
    let ptm_cells = slpmt::bench::runner::matrix(&SchemeKind::SOFTWARE, &[IndexKind::Hashtable]);
    let mut ptm_wall = f64::INFINITY;
    let mut ptm_rows = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        ptm_rows = run_matrix_with(
            &ptm_cells,
            workers,
            &ptm_stream,
            32,
            AnnotationSource::Manual,
            None,
        );
        ptm_wall = ptm_wall.min(t0.elapsed().as_secs_f64());
    }
    let ptm_sim_cycles: u64 = ptm_rows.iter().map(|r| r.cycles).sum();
    let ptm_fences: u64 = ptm_rows.iter().map(|r| r.stats.fences).sum();
    let ptm_digest = {
        // FNV-1a over each row's deterministic columns, in cell order.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for r in &ptm_rows {
            fold(r.cycles);
            fold(r.stats.fences);
            fold(r.stats.flushes);
            fold(r.traffic.log_bytes);
            fold(r.logical_bytes);
        }
        h
    };
    let ptm_ops_per_s = (ptm_cells.len() * ptm_ops) as f64 / ptm_wall;

    let micro_rows = micro::run_all(4096, reps);

    if json {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("command");
        w.string("bench");
        w.key("schema");
        w.u64(1);
        w.key("git_sha");
        w.string(&git_sha());
        w.key("ops");
        w.u64(ops as u64);
        w.key("value_bytes");
        w.u64(value as u64);
        w.key("reps");
        w.u64(reps as u64);
        w.key("host_workers");
        w.u64(workers as u64);
        w.key("matrix");
        w.begin_obj();
        w.key("cells");
        w.u64(matrix_cells as u64);
        w.key("workers");
        w.u64(workers as u64);
        w.key("wall_s");
        w.f64(matrix_wall);
        w.key("sim_ops");
        w.u64(matrix_sim_ops as u64);
        w.key("sim_ops_per_s");
        w.f64(matrix_ops_per_s);
        w.end_obj();
        w.key("mc");
        w.begin_obj();
        w.key("cores");
        w.u64(4);
        w.key("commits");
        w.u64(mc_commits);
        w.key("sim_ops");
        w.u64(mc_ops);
        w.key("sim_cycles");
        w.u64(mc_cycles);
        w.key("wall_s");
        w.f64(mc_wall);
        w.key("sim_ops_per_s");
        w.f64(mc_ops_per_s);
        w.end_obj();
        w.key("shards");
        w.begin_obj();
        w.key("shards");
        w.u64(SHARDS as u64);
        w.key("makespan_cycles");
        w.u64(shard_makespan);
        w.key("sim_ops_per_kcycle");
        w.f64(shard_kcycle);
        w.key("scaling");
        w.begin_arr();
        for &(wk, wall) in &scaling {
            w.begin_obj();
            w.key("workers");
            w.u64(wk as u64);
            w.key("wall_s");
            w.f64(wall);
            w.key("ops_per_s");
            w.f64(ops as f64 / wall);
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.key("ycsb");
        w.begin_obj();
        w.key("cells");
        w.u64(ycsb_cells.len() as u64);
        w.key("load");
        w.u64(ycsb_cfg.load as u64);
        w.key("ops");
        w.u64(ycsb_cfg.ops as u64);
        w.key("value_bytes");
        w.u64(ycsb_cfg.value_size as u64);
        w.key("wall_s");
        w.f64(ycsb_wall);
        w.key("sim_ops");
        w.u64(ycsb_sim_ops as u64);
        w.key("sim_ops_per_s");
        w.f64(ycsb_ops_per_s);
        w.key("total_sim_cycles");
        w.u64(ycsb_sim_cycles);
        w.end_obj();
        w.key("serve");
        w.begin_obj();
        w.key("mix");
        w.string("b");
        w.key("shards");
        w.u64(serve_cfg.shards as u64);
        w.key("load");
        w.u64(serve_cfg.load as u64);
        w.key("requests");
        w.u64(serve_row.requests);
        w.key("served");
        w.u64(serve_row.served);
        w.key("shed");
        w.u64(serve_row.shed);
        w.key("total_sim_cycles");
        w.u64(serve_row.total_sim_cycles);
        w.key("makespan_cycles");
        w.u64(serve_row.makespan_cycles);
        w.key("digest");
        w.string(&format!("{:016x}", serve_row.digest));
        w.key("p50");
        w.u64(serve_row.overall.p50);
        w.key("p99");
        w.u64(serve_row.overall.p99);
        w.key("p999");
        w.u64(serve_row.overall.p999);
        w.key("wall_s");
        w.f64(serve_wall);
        w.key("req_per_s");
        w.f64(serve_req_per_s);
        w.end_obj();
        w.key("chaos");
        w.begin_obj();
        w.key("cases");
        w.u64(chaos_report.cases as u64);
        w.key("points");
        w.u64(chaos_report.points as u64);
        w.key("strict");
        w.u64(chaos_report.strict as u64);
        w.key("lossy");
        w.u64(chaos_report.lossy as u64);
        w.key("suppressed");
        w.u64(chaos_report.totals.suppressed);
        w.key("refused_writes");
        w.u64(chaos_report.totals.refused_writes);
        w.key("scrubbed");
        w.u64(chaos_report.totals.scrubbed);
        w.key("digest");
        w.string(&format!("{:016x}", chaos_report.digest));
        w.key("wall_s");
        w.f64(chaos_wall);
        w.key("points_per_s");
        w.f64(chaos_points_per_s);
        w.end_obj();
        w.key("ptm");
        w.begin_obj();
        w.key("cells");
        w.u64(ptm_cells.len() as u64);
        w.key("ops");
        w.u64(ptm_ops as u64);
        w.key("value_bytes");
        w.u64(32);
        w.key("total_sim_cycles");
        w.u64(ptm_sim_cycles);
        w.key("fences");
        w.u64(ptm_fences);
        w.key("digest");
        w.string(&format!("{ptm_digest:016x}"));
        w.key("wall_s");
        w.f64(ptm_wall);
        w.key("sim_ops_per_s");
        w.f64(ptm_ops_per_s);
        w.end_obj();
        w.key("micro");
        w.begin_arr();
        for row in &micro_rows {
            w.begin_obj();
            w.key("name");
            w.string(row.name);
            w.key("iters");
            w.u64(row.iters);
            w.key("sim_cycles_per_op");
            w.f64(row.sim_cycles_per_op);
            w.key("host_ns_per_op");
            w.f64(row.host_ns_per_op);
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        println!("{}", w.finish());
        return Ok(ExitCode::SUCCESS);
    }

    println!(
        "bench snapshot @ {} ({} × {} B inserts, best of {} reps)",
        git_sha(),
        ops,
        value,
        reps
    );
    println!(
        "  matrix : {matrix_cells} cells in {matrix_wall:.3}s @ {workers} workers \
         → {matrix_ops_per_s:.0} sim-ops/s"
    );
    println!(
        "  mc     : {mc_ops} trace ops ({mc_commits} commits, {mc_cycles} cycles) \
         in {mc_wall:.3}s → {mc_ops_per_s:.0} sim-ops/s"
    );
    println!(
        "  shards : {SHARDS} shards, makespan {shard_makespan} cycles \
         ({shard_kcycle:.3} ops/kcycle)"
    );
    for &(wk, wall) in &scaling {
        println!(
            "    {wk:>2} workers: {wall:.3}s wall ({:.0} ops/s)",
            ops as f64 / wall
        );
    }
    println!(
        "  ycsb   : {} mix cells in {ycsb_wall:.3}s → {ycsb_ops_per_s:.0} sim-ops/s \
         ({ycsb_sim_cycles} total cycles)",
        ycsb_cells.len()
    );
    println!(
        "  serve  : mix b × {} shards, {} served ({} total cycles, digest {:016x}) \
         in {serve_wall:.3}s → {serve_req_per_s:.0} req/s \
         [p50 {} p99 {} p999 {}]",
        serve_cfg.shards,
        serve_row.served,
        serve_row.total_sim_cycles,
        serve_row.digest,
        serve_row.overall.p50,
        serve_row.overall.p99,
        serve_row.overall.p999
    );
    println!(
        "  chaos  : {} points across {} cases ({} strict / {} lossy, digest {:016x}) \
         in {chaos_wall:.3}s → {chaos_points_per_s:.0} points/s",
        chaos_report.points,
        chaos_report.cases,
        chaos_report.strict,
        chaos_report.lossy,
        chaos_report.digest
    );
    println!(
        "  ptm    : {} flavour cells, {ptm_sim_cycles} total cycles, {ptm_fences} fences \
         (digest {ptm_digest:016x}) in {ptm_wall:.3}s → {ptm_ops_per_s:.0} sim-ops/s",
        ptm_cells.len()
    );
    println!("  micro  :");
    for row in &micro_rows {
        println!(
            "    {:<8} {:>8} iters  {:>10.1} sim-cycles/op  {:>9.1} host-ns/op",
            row.name, row.iters, row.sim_cycles_per_op, row.host_ns_per_op
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// `slpmt ptm`: the software persistent-transaction baseline matrix.
/// Every PTM flavour (plus the SLPMT hardware reference point) runs
/// the same insert workload over the selected indexes; each cell
/// reports simulated cycles, fence and flush counts, log traffic and
/// the write-amplification factor. Every column is simulated, so
/// output — including `--json` — is byte-identical across reruns and
/// `SLPMT_THREADS` settings.
fn cmd_ptm(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::bench::runner::{matrix, run_matrix};

    let mut schemes: Vec<SchemeKind> = std::iter::once(Scheme::Slpmt.into())
        .chain(SchemeKind::SOFTWARE)
        .collect();
    let mut kinds = vec![IndexKind::Hashtable];
    let mut ops = 500usize;
    let mut value = 64usize;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--json" {
            json = true;
            continue;
        }
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scheme" => {
                let v = val()?;
                if v.eq_ignore_ascii_case("all") {
                    schemes = SchemeKind::REGISTRY.to_vec();
                } else {
                    schemes =
                        vec![SchemeKind::parse(&v).ok_or_else(|| format!("unknown scheme {v}"))?];
                }
            }
            "--workload" => {
                let v = val()?;
                if v.eq_ignore_ascii_case("all") {
                    kinds = IndexKind::ALL.to_vec();
                } else {
                    kinds = vec![parse_kind(&v).ok_or_else(|| format!("unknown workload {v}"))?];
                }
            }
            "--ops" => ops = val()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--value" => value = val()?.parse().map_err(|e| format!("--value: {e}"))?,
            other => return Err(format!("unknown option {other}")),
        }
    }

    let stream = ycsb_load(ops, value, 42);
    let cells = matrix(&schemes, &kinds);
    let results = run_matrix(&cells, &stream, value, AnnotationSource::Manual, None);

    if json {
        // Deliberately no wall-clock or worker-count field: this object
        // is diffed byte-for-byte across SLPMT_THREADS values in CI.
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("command");
        w.string("ptm");
        w.key("schema");
        w.u64(1);
        w.key("ops");
        w.u64(ops as u64);
        w.key("value_bytes");
        w.u64(value as u64);
        w.key("rows");
        w.begin_arr();
        for r in &results {
            w.begin_obj();
            w.key("scheme");
            w.string(&r.scheme.to_string());
            w.key("workload");
            w.string(&r.kind.to_string());
            w.key("sim_cycles");
            w.u64(r.cycles);
            w.key("txns");
            w.u64(r.stats.tx_commits);
            w.key("fences");
            w.u64(r.stats.fences);
            w.key("flushes");
            w.u64(r.stats.flushes);
            w.key("fence_stall_cycles");
            w.u64(r.stats.fence_stall_cycles);
            w.key("data_bytes");
            w.u64(r.traffic.data_bytes);
            w.key("log_bytes");
            w.u64(r.traffic.log_bytes);
            w.key("log_records");
            w.u64(r.traffic.log_records);
            w.key("logical_bytes");
            w.u64(r.logical_bytes);
            w.key("waf");
            w.f64(r.waf());
            w.key("fences_per_txn");
            w.f64(if r.stats.tx_commits == 0 {
                0.0
            } else {
                r.stats.fences as f64 / r.stats.tx_commits as f64
            });
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        println!("{}", w.finish());
        return Ok(ExitCode::SUCCESS);
    }

    println!(
        "ptm matrix: {} cell(s), {} × {} B inserts",
        cells.len(),
        ops,
        value
    );
    println!(
        "{:<22} {:>12} {:>8} {:>7} {:>8} {:>10} {:>7}",
        "cell", "cycles", "fences", "f/txn", "flushes", "log B", "waf"
    );
    for r in &results {
        let per_txn = if r.stats.tx_commits == 0 {
            0.0
        } else {
            r.stats.fences as f64 / r.stats.tx_commits as f64
        };
        println!(
            "{:<22} {:>12} {:>8} {:>7.2} {:>8} {:>10} {:>7.2}",
            format!("{}/{}", r.kind, r.scheme),
            r.cycles,
            r.stats.fences,
            per_txn,
            r.stats.flushes,
            r.traffic.log_bytes,
            r.waf(),
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// `slpmt ycsb`: the named-mix perf matrix — YCSB A–F plus the
/// delete-heavy / zipfian adversaries — with per-class simulated
/// p50/p99 latencies, optional sampled crash / media-fault sweeps over
/// the same cells (streaming recovery oracle), and an optional sharded
/// run. Every reported number is simulated (cycles, counts), never
/// wall-clock, so output — including `--json` — is bit-identical
/// across reruns and `SLPMT_THREADS` settings.
fn cmd_ycsb(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::bench::crashsweep::run_sweep_sampled;
    use slpmt::bench::faultsweep::{fault_cases_mixed, run_fault_sweep};
    use slpmt::bench::sharded::run_sharded_mixed;
    use slpmt::bench::ycsb::{run_ycsb_matrix, sweep_case_of, ycsb_cells, YcsbConfig};
    use slpmt::workloads::ycsb::{ycsb_mix, MixSpec};

    let mut mixes: Vec<MixSpec> = MixSpec::NAMED.iter().map(|&(_, m)| m).collect();
    let mut schemes: Vec<SchemeKind> = vec![Scheme::Slpmt.into()];
    let mut kinds = vec![IndexKind::Hashtable];
    let mut cfg = YcsbConfig::default();
    let mut points = 50usize;
    let mut sweep = false;
    let mut faults = false;
    let mut shards = 0usize;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                json = true;
                continue;
            }
            "--sweep" => {
                sweep = true;
                continue;
            }
            "--faults" => {
                faults = true;
                continue;
            }
            _ => {}
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--mix" => {
                let v = value()?;
                if !v.eq_ignore_ascii_case("all") {
                    mixes = vec![v.parse().map_err(|e| format!("--mix: {e}"))?];
                }
            }
            "--scheme" => {
                let v = value()?;
                if v.eq_ignore_ascii_case("all") {
                    schemes = SchemeKind::REGISTRY.to_vec();
                } else {
                    schemes =
                        vec![SchemeKind::parse(&v).ok_or_else(|| format!("unknown scheme {v}"))?];
                }
            }
            "--workload" => {
                let v = value()?;
                if v.eq_ignore_ascii_case("all") {
                    kinds = IndexKind::ALL.to_vec();
                } else {
                    kinds = vec![parse_kind(&v).ok_or_else(|| format!("unknown workload {v}"))?];
                }
            }
            "--load" => cfg.load = value()?.parse().map_err(|e| format!("--load: {e}"))?,
            "--ops" => cfg.ops = value()?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--value" => cfg.value_size = value()?.parse().map_err(|e| format!("--value: {e}"))?,
            "--seed" => cfg.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--points" => points = value()?.parse().map_err(|e| format!("--points: {e}"))?,
            "--shards" => shards = value()?.parse().map_err(|e| format!("--shards: {e}"))?,
            other => return Err(format!("unknown option {other}")),
        }
    }
    let mix_label = |m: &MixSpec| {
        m.name()
            .map(str::to_string)
            .unwrap_or_else(|| m.to_string())
    };
    let cells = ycsb_cells(&mixes, &schemes, &kinds);
    let rows = run_ycsb_matrix(&cells, &cfg, true);

    // Optional sharded pass: the same mixes through the keyspace-
    // sharded driver, one run per (mix, scheme, kind) cell.
    let mut shard_rows: Vec<(String, String, String, u64, f64)> = Vec::new();
    if shards > 0 {
        for cell in &cells {
            let (load, ops) = ycsb_mix(cfg.load, cfg.ops, cfg.value_size, cfg.seed, &cell.mix);
            let r = run_sharded_mixed(
                MachineConfig::for_kind(cell.scheme),
                cell.kind,
                &load,
                &ops,
                cfg.value_size,
                AnnotationSource::Manual,
                shards,
                true,
            );
            shard_rows.push((
                mix_label(&cell.mix),
                cell.scheme.to_string(),
                cell.kind.to_string(),
                r.sim_cycles(),
                r.sim_ops_per_kcycle(),
            ));
        }
    }

    // Optional durability gates over the same cells: sampled
    // persist-event crash sweep, then the media-fault battery.
    let cases: Vec<_> = cells.iter().map(|c| sweep_case_of(c, &cfg)).collect();
    let sweep_report = sweep.then(|| run_sweep_sampled(&cases, points));
    let fault_report = faults.then(|| run_fault_sweep(&fault_cases_mixed(&cases, &[]), points));

    if json {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("command");
        w.string("ycsb");
        w.key("schema");
        w.u64(1);
        w.key("load");
        w.u64(cfg.load as u64);
        w.key("ops");
        w.u64(cfg.ops as u64);
        w.key("value_bytes");
        w.u64(cfg.value_size as u64);
        w.key("seed");
        w.u64(cfg.seed);
        w.key("rows");
        w.begin_arr();
        for row in &rows {
            w.begin_obj();
            w.key("mix");
            w.string(&mix_label(&row.cell.mix));
            w.key("spec");
            w.string(&row.cell.mix.to_string());
            w.key("scheme");
            w.string(&row.cell.scheme.to_string());
            w.key("workload");
            w.string(&row.cell.kind.to_string());
            w.key("sim_cycles");
            w.u64(row.result.cycles);
            w.key("data_bytes");
            w.u64(row.result.traffic.data_bytes);
            w.key("log_bytes");
            w.u64(row.result.traffic.log_bytes);
            w.key("fences");
            w.u64(row.result.stats.fences);
            w.key("flushes");
            w.u64(row.result.stats.flushes);
            w.key("logical_bytes");
            w.u64(row.result.logical_bytes);
            w.key("waf");
            w.f64(row.result.waf());
            w.key("latencies");
            w.begin_obj();
            for (name, s) in row.lat.present() {
                w.key(name);
                w.begin_obj();
                w.key("count");
                w.u64(s.count);
                w.key("p50");
                w.u64(s.p50);
                w.key("p99");
                w.u64(s.p99);
                w.key("max");
                w.u64(s.max);
                w.key("total");
                w.u64(s.total);
                w.end_obj();
            }
            w.end_obj();
            w.end_obj();
        }
        w.end_arr();
        if !shard_rows.is_empty() {
            w.key("shards");
            w.begin_obj();
            w.key("shards");
            w.u64(shards as u64);
            w.key("rows");
            w.begin_arr();
            for (mix, scheme, kind, makespan, kcycle) in &shard_rows {
                w.begin_obj();
                w.key("mix");
                w.string(mix);
                w.key("scheme");
                w.string(scheme);
                w.key("workload");
                w.string(kind);
                w.key("makespan_cycles");
                w.u64(*makespan);
                w.key("sim_ops_per_kcycle");
                w.f64(*kcycle);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
        }
        let mut sweep_json =
            |key: &str, points: usize, cases: u64, clean: bool, fails: &[String]| {
                w.key(key);
                w.begin_obj();
                w.key("points");
                w.u64(points as u64);
                w.key("cases");
                w.u64(cases);
                w.key("clean");
                w.bool(clean);
                w.key("failures");
                w.begin_arr();
                for f in fails {
                    w.string(f);
                }
                w.end_arr();
                w.end_obj();
            };
        if let Some(report) = &sweep_report {
            let fails: Vec<String> = report.failures.iter().map(|f| f.to_string()).collect();
            sweep_json(
                "crash_sweep",
                report.points,
                report.cases as u64,
                report.is_clean(),
                &fails,
            );
        }
        if let Some(report) = &fault_report {
            let fails: Vec<String> = report.failures.iter().map(|f| f.to_string()).collect();
            sweep_json(
                "fault_sweep",
                report.points,
                report.cases as u64,
                report.is_clean(),
                &fails,
            );
        }
        w.end_obj();
        println!("{}", w.finish());
    } else {
        println!(
            "ycsb matrix: {} cell(s) ({} load + {} ops, {} B values, seed {})",
            rows.len(),
            cfg.load,
            cfg.ops,
            cfg.value_size,
            cfg.seed
        );
        for row in &rows {
            println!(
                "  {:<18} {:<10} {:<10} {:>9} cycles  {:>7} fences  waf {:.2}",
                mix_label(&row.cell.mix),
                row.cell.scheme.to_string(),
                row.cell.kind.to_string(),
                row.result.cycles,
                row.result.stats.fences,
                row.result.waf()
            );
            for (name, s) in row.lat.present() {
                println!(
                    "      {name:<7} n={:<5} p50={:<6} p99={:<6} max={}",
                    s.count, s.p50, s.p99, s.max
                );
            }
        }
        for (mix, scheme, kind, makespan, kcycle) in &shard_rows {
            println!(
                "  shards={shards} {mix:<14} {scheme:<10} {kind:<10} makespan {makespan} \
                 cycles ({kcycle:.3} ops/kcycle)"
            );
        }
        if let Some(report) = &sweep_report {
            print!("crash {report}");
        }
        if let Some(report) = &fault_report {
            print!("{report}");
        }
    }
    let clean = sweep_report.as_ref().is_none_or(|r| r.is_clean())
        && fault_report.as_ref().is_none_or(|r| r.is_clean());
    Ok(if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `slpmt serve`: the deterministic KV request-serving front end — the
/// memcached-text facade over the simulated machine. Each (mix,
/// shards) cell runs the full load/encode/admit/dispatch loop and
/// reports simulated p50/p99/p999 request latencies plus the
/// response-byte digest CI diffs across `SLPMT_THREADS` settings.
/// Every reported figure is simulated (cycles, counts, digests), never
/// wall-clock, so output — including `--json` — is byte-identical at
/// any host worker count.
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::bench::serve::run_serve;
    use slpmt::kv::service::{ServeConfig, VERB_CLASSES};
    use slpmt::workloads::ycsb::MixSpec;

    let mut mixes = vec![MixSpec::YCSB_A, MixSpec::YCSB_B, MixSpec::YCSB_C];
    let mut schemes: Vec<SchemeKind> = vec![Scheme::Slpmt.into()];
    let mut kinds = vec![IndexKind::KvBtree];
    let mut shard_counts = vec![1usize, 4];
    let mut proto = ServeConfig::new(Scheme::Slpmt, IndexKind::KvBtree, MixSpec::YCSB_A);
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                json = true;
                continue;
            }
            "--open-loop" => {
                proto.open_loop = true;
                continue;
            }
            _ => {}
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--mix" => {
                let v = value()?;
                if v.eq_ignore_ascii_case("all") {
                    mixes = MixSpec::NAMED.iter().map(|&(_, m)| m).collect();
                } else {
                    mixes = v
                        .split(',')
                        .map(|s| s.parse().map_err(|e| format!("--mix: {e}")))
                        .collect::<Result<_, _>>()?;
                }
            }
            "--scheme" => {
                let v = value()?;
                if v.eq_ignore_ascii_case("all") {
                    schemes = SchemeKind::REGISTRY.to_vec();
                } else {
                    schemes =
                        vec![SchemeKind::parse(&v).ok_or_else(|| format!("unknown scheme {v}"))?];
                }
            }
            "--workload" => {
                let v = value()?;
                kinds = vec![parse_kind(&v).ok_or_else(|| format!("unknown workload {v}"))?];
            }
            "--shards" => {
                shard_counts = value()?
                    .split(',')
                    .map(|s| s.parse::<usize>().map_err(|e| format!("--shards: {e}")))
                    .collect::<Result<_, _>>()?;
                if shard_counts.contains(&0) {
                    return Err("--shards: shard counts must be at least 1".into());
                }
            }
            "--load" => proto.load = value()?.parse().map_err(|e| format!("--load: {e}"))?,
            "--requests" => {
                proto.requests = value()?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--value" => {
                proto.value_size = value()?.parse().map_err(|e| format!("--value: {e}"))?
            }
            "--seed" => proto.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--sessions" => {
                proto.sessions = value()?.parse().map_err(|e| format!("--sessions: {e}"))?
            }
            "--gap" => proto.mean_gap = value()?.parse().map_err(|e| format!("--gap: {e}"))?,
            "--jitter" => {
                proto.drain_jitter = value()?.parse().map_err(|e| format!("--jitter: {e}"))?
            }
            "--queue-limit" => {
                proto.admission.queue_limit = value()?
                    .parse()
                    .map_err(|e| format!("--queue-limit: {e}"))?
            }
            other => return Err(format!("unknown option {other}")),
        }
    }

    let mix_label = |m: &MixSpec| {
        m.name()
            .map(str::to_string)
            .unwrap_or_else(|| m.to_string())
    };
    let mut rows = Vec::new();
    for scheme in &schemes {
        for kind in &kinds {
            for mix in &mixes {
                for &shards in &shard_counts {
                    let mut cfg = proto.clone();
                    cfg.scheme = *scheme;
                    cfg.kind = *kind;
                    cfg.mix = *mix;
                    cfg.shards = shards;
                    rows.push(run_serve(&cfg));
                }
            }
        }
    }

    if json {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("command");
        w.string("serve");
        w.key("schema");
        w.u64(1);
        w.key("load");
        w.u64(proto.load as u64);
        w.key("requests");
        w.u64(proto.requests as u64);
        w.key("value_bytes");
        w.u64(proto.value_size as u64);
        w.key("seed");
        w.u64(proto.seed);
        w.key("sessions");
        w.u64(proto.sessions as u64);
        w.key("open_loop");
        w.bool(proto.open_loop);
        w.key("mean_gap");
        w.u64(proto.mean_gap);
        w.key("drain_jitter");
        w.u64(proto.drain_jitter);
        w.key("rows");
        w.begin_arr();
        for row in &rows {
            w.begin_obj();
            w.key("mix");
            w.string(&mix_label(&row.cfg.mix));
            w.key("scheme");
            w.string(&row.cfg.scheme.to_string());
            w.key("workload");
            w.string(&row.cfg.kind.to_string());
            w.key("shards");
            w.u64(row.cfg.shards as u64);
            w.key("requests");
            w.u64(row.requests);
            w.key("served");
            w.u64(row.served);
            w.key("shed");
            w.u64(row.shed);
            w.key("queued");
            w.u64(row.queued);
            w.key("queued_cycles");
            w.u64(row.queued_cycles);
            w.key("total_sim_cycles");
            w.u64(row.total_sim_cycles);
            w.key("makespan_cycles");
            w.u64(row.makespan_cycles);
            w.key("wpq_stall_cycles");
            w.u64(row.wpq_stall_cycles);
            w.key("response_bytes");
            w.u64(row.response_bytes);
            w.key("digest");
            w.string(&format!("{:016x}", row.digest));
            w.key("latency");
            w.begin_obj();
            w.key("overall");
            let lat_obj = |w: &mut JsonWriter, l: &slpmt::bench::serve::ServeLatency| {
                w.begin_obj();
                w.key("count");
                w.u64(l.count);
                w.key("p50");
                w.u64(l.p50);
                w.key("p99");
                w.u64(l.p99);
                w.key("p999");
                w.u64(l.p999);
                w.key("max");
                w.u64(l.max);
                w.end_obj();
            };
            lat_obj(&mut w, &row.overall);
            for (class, lat) in VERB_CLASSES.iter().zip(&row.per_verb) {
                if lat.count > 0 {
                    w.key(class);
                    lat_obj(&mut w, lat);
                }
            }
            w.end_obj();
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        println!("{}", w.finish());
    } else {
        println!(
            "serve matrix: {} cell(s) ({} load + {} requests, {} B values, seed {}, {} sessions)",
            rows.len(),
            proto.load,
            proto.requests,
            proto.value_size,
            proto.seed,
            proto.sessions
        );
        for row in &rows {
            println!(
                "  {:<14} {:<10} {:<10} shards={:<2} served {}/{} (shed {}, queued {}) \
                 makespan {} cycles digest {:016x}",
                mix_label(&row.cfg.mix),
                row.cfg.scheme.to_string(),
                row.cfg.kind.to_string(),
                row.cfg.shards,
                row.served,
                row.requests,
                row.shed,
                row.queued,
                row.makespan_cycles,
                row.digest
            );
            let print_lat = |name: &str, l: &slpmt::bench::serve::ServeLatency| {
                println!(
                    "      {name:<8} n={:<6} p50={:<6} p99={:<6} p999={:<6} max={}",
                    l.count, l.p50, l.p99, l.p999, l.max
                );
            };
            print_lat("overall", &row.overall);
            for (class, lat) in VERB_CLASSES.iter().zip(&row.per_verb) {
                if lat.count > 0 {
                    print_lat(class, lat);
                }
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_chaos(args: &[String]) -> Result<ExitCode, String> {
    use slpmt::bench::chaos::{chaos_cases, run_chaos_sweep};
    use slpmt::pmem::FaultPlan;
    use slpmt::workloads::faultsweep::default_plans;
    use slpmt::workloads::ycsb::MixSpec;

    let mut mixes = vec![MixSpec::YCSB_A, MixSpec::YCSB_B, MixSpec::DELETE_HEAVY];
    let mut schemes: Vec<SchemeKind> = vec![Scheme::Slpmt.into(), Scheme::SlpmtRedo.into()];
    let mut kind = IndexKind::KvBtree;
    let mut seed = 42u64;
    let mut requests = 40usize;
    let mut points = 3usize;
    let mut faults: Option<usize> = None;
    let mut plans: Vec<FaultPlan> = Vec::new();
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--json" {
            json = true;
            continue;
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--mix" => {
                let v = value()?;
                if v.eq_ignore_ascii_case("all") {
                    mixes = MixSpec::NAMED.iter().map(|&(_, m)| m).collect();
                } else {
                    mixes = v
                        .split(',')
                        .map(|s| s.parse().map_err(|e| format!("--mix: {e}")))
                        .collect::<Result<_, _>>()?;
                }
            }
            "--scheme" => {
                let v = value()?;
                if v.eq_ignore_ascii_case("all") {
                    schemes = vec![
                        Scheme::Slpmt.into(),
                        Scheme::SlpmtRedo.into(),
                        PtmFlavor::UndoLog.into(),
                        PtmFlavor::RedoLog.into(),
                    ];
                } else {
                    schemes =
                        vec![SchemeKind::parse(&v).ok_or_else(|| format!("unknown scheme {v}"))?];
                }
            }
            "--workload" => {
                let v = value()?;
                kind = parse_kind(&v).ok_or_else(|| format!("unknown workload {v}"))?;
            }
            "--seed" => seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--requests" => requests = value()?.parse().map_err(|e| format!("--requests: {e}"))?,
            "--points" => points = value()?.parse().map_err(|e| format!("--points: {e}"))?,
            "--faults" => faults = Some(value()?.parse().map_err(|e| format!("--faults: {e}"))?),
            "--plan" => plans.push(value()?.parse().map_err(|e| format!("--plan: {e}"))?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if plans.is_empty() {
        let defaults = default_plans(seed);
        let n = faults.unwrap_or(defaults.len()).min(defaults.len());
        plans = defaults[..n].to_vec();
    }

    let cases = chaos_cases(&schemes, kind, seed, requests, &mixes);
    if !json {
        println!(
            "chaos-sweeping {} case(s) × {points} crash point(s) × {} plan variant(s) \
             (seed {seed}, {requests} requests) ...",
            cases.len(),
            plans.len() + 1
        );
    }
    let report = run_chaos_sweep(&cases, &plans, points);
    let mix_label = |m: &MixSpec| {
        m.name()
            .map(str::to_string)
            .unwrap_or_else(|| m.to_string())
    };
    if json {
        // Deliberately no wall-clock field: this object is diffed
        // byte-for-byte across SLPMT_THREADS values in CI.
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("command");
        w.string("chaos");
        w.key("schema");
        w.u64(1);
        w.key("seed");
        w.u64(seed);
        w.key("requests");
        w.u64(requests as u64);
        w.key("points_per_plan");
        w.u64(points as u64);
        w.key("plans");
        w.u64(plans.len() as u64);
        w.key("workload");
        w.string(&kind.to_string());
        w.key("mixes");
        w.begin_arr();
        for m in &mixes {
            w.string(&mix_label(m));
        }
        w.end_arr();
        w.key("schemes");
        w.begin_arr();
        for s in &schemes {
            w.string(&s.to_string());
        }
        w.end_arr();
        w.key("cases");
        w.u64(report.cases as u64);
        w.key("points");
        w.u64(report.points as u64);
        w.key("strict");
        w.u64(report.strict as u64);
        w.key("lossy");
        w.u64(report.lossy as u64);
        w.key("lost_lines");
        w.u64(report.lost_lines);
        w.key("acked");
        w.u64(report.totals.acked);
        w.key("durable");
        w.u64(report.totals.durable);
        w.key("retried");
        w.u64(report.totals.retried);
        w.key("suppressed");
        w.u64(report.totals.suppressed);
        w.key("refused_writes");
        w.u64(report.totals.refused_writes);
        w.key("scrubbed");
        w.u64(report.totals.scrubbed);
        w.key("poison_checked");
        w.u64(report.poison_checked as u64);
        w.key("poison_caught");
        w.u64(report.poison_caught as u64);
        w.key("digest");
        w.string(&format!("{:016x}", report.digest));
        w.key("clean");
        w.bool(report.is_clean());
        w.key("failures");
        w.begin_arr();
        for fail in &report.failures {
            w.string(fail);
        }
        w.end_arr();
        w.end_obj();
        println!("{}", w.finish());
    } else {
        print!("{report}");
        println!("  digest {:016x}", report.digest);
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: slpmt <schemes|overhead|run <index>|compare <index>|matrix|trace|crashsweep|faults|mc|shards <index>|ycsb|serve|ptm|chaos|bench> \
         [--scheme S] [--ops N] [--value B] [--annotations manual|compiler|none] [--latency NS]\n\
         trace: [--scheme S] [--workload W] [--ops N] [--value B] [--seed N] [--out FILE]\n\
         crashsweep: [--scheme S|all] [--workload W|all] [--seed N] [--ops N] [--at K]\n\
         faults: [--scheme S|all] [--workload W|all] [--seed N] [--ops N] \
         [--points N] [--plan s<seed>:t<0|1>:p<n>:f<n>:j<n>] [--at K] [--json]\n\
         mc: [--scheme S] [--cores 2-4] [--seed N] [--sched rr:K|weighted:K] \
         [--txns N] [--stores N] [--skew THETA_MILLI] [--crash-at K] [--json]\n\
         shards: [--scheme S] [--ops N] [--value B] [--shards N] [--json]\n\
         ycsb: [--mix M|all] [--scheme S|all] [--workload W|all] [--load N] [--ops N] \
         [--value B] [--seed N] [--sweep] [--faults] [--points N] [--shards N] [--json]\n\
         serve: [--mix M[,M..]|all] [--scheme S|all] [--workload W] [--shards N[,N..]] \
         [--load N] [--requests N] [--value B] [--seed N] [--sessions N] \
         [--open-loop] [--gap CYCLES] [--jitter WINDOW] [--queue-limit N] [--json]\n\
         chaos: [--mix M[,M..]|all] [--scheme S|all] [--workload W] [--seed N] \
         [--requests N] [--points N] [--faults N] [--plan s<seed>:t<0|1>:p<n>:f<n>:j<n>] [--json]\n\
         ptm: [--scheme S|all] [--workload W|all] [--ops N] [--value B] [--json]\n\
         bench: [--ops N] [--value B] [--reps N] [--json]\n\
         matrix also accepts --json; sweep failures auto-dump traces to target/traces/\n\
         indices: {}",
        IndexKind::ALL.map(|k| k.to_string()).join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "schemes" => {
            cmd_schemes();
            ExitCode::SUCCESS
        }
        "overhead" => {
            cmd_overhead();
            ExitCode::SUCCESS
        }
        "run" | "compare" => {
            let Some(kind) = args.get(1).and_then(|k| parse_kind(k)) else {
                return usage();
            };
            match parse_options(&args[2..]) {
                Ok(o) => {
                    if cmd == "run" {
                        cmd_run(kind, &o);
                    } else {
                        cmd_compare(kind, &o);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "matrix" => {
            let json = args[1..].iter().any(|a| a == "--json");
            let rest: Vec<String> = args[1..]
                .iter()
                .filter(|a| *a != "--json")
                .cloned()
                .collect();
            match parse_options(&rest) {
                Ok(o) => {
                    cmd_matrix(&o, json);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "crashsweep" => match cmd_crashsweep(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "faults" => match cmd_faults(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "mc" => match cmd_mc(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "shards" => {
            let Some(kind) = args.get(1).and_then(|k| parse_kind(k)) else {
                return usage();
            };
            match cmd_shards(kind, &args[2..]) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "ycsb" => match cmd_ycsb(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "ptm" => match cmd_ptm(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "serve" => match cmd_serve(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "chaos" => match cmd_chaos(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "bench" => match cmd_bench(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "trace" => match cmd_trace(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
