#!/usr/bin/env bash
# Disabled-tracing overhead guard (DESIGN.md §11).
#
# The default build compiles the tracing hooks in but leaves them
# disabled at runtime — a single is-Some branch per hook. This script
# measures the price of that branch: it runs the sim_throughput hot
# path on the default build and on the `no-trace` build (hooks
# compiled out) and fails if the default build is more than 2% slower.
#
# Knobs:
#   TRACE_OVERHEAD_RUNS       best-of-N runs per side (default 3)
#   TRACE_OVERHEAD_MIN_RATIO  minimum default/no-trace ratio (default 0.98)
#   SLPMT_OPS                 workload size per cell (bench default 1000)
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${TRACE_OVERHEAD_RUNS:-3}"
MIN_RATIO="${TRACE_OVERHEAD_MIN_RATIO:-0.98}"

# Sums the per-scheme hot-path lines ("Fg  123456 sim-ops/s (...)").
aggregate() {
  awk '$3 == "sim-ops/s" { sum += $2 } END { printf "%.0f\n", sum }'
}

# best_of <label> [cargo feature flags...] — best hot-path aggregate
# over $RUNS runs (max, to shed scheduler noise).
best_of() {
  local label=$1
  shift
  local best=0 total
  for i in $(seq "$RUNS"); do
    total=$(cargo bench -q -p slpmt-bench --bench sim_throughput "$@" | aggregate)
    echo "  $label run $i/$RUNS: $total sim-ops/s (hot-path aggregate)" >&2
    if awk -v a="$total" -v b="$best" 'BEGIN { exit !(a > b) }'; then
      best=$total
    fi
  done
  echo "$best"
}

echo "== no-trace build (hooks compiled out) =="
baseline=$(best_of "no-trace" --features no-trace)
echo "== default build (hooks compiled in, disabled) =="
traced=$(best_of "default ")

if [ "$baseline" -le 0 ] || [ "$traced" -le 0 ]; then
  echo "trace_overhead: failed to parse sim_throughput output" >&2
  exit 1
fi

ratio=$(awk -v t="$traced" -v b="$baseline" 'BEGIN { printf "%.4f", t / b }')
echo "no-trace best: $baseline sim-ops/s"
echo "default  best: $traced sim-ops/s"
echo "ratio:         $ratio (minimum allowed $MIN_RATIO)"

if awk -v r="$ratio" -v m="$MIN_RATIO" 'BEGIN { exit !(r >= m) }'; then
  echo "trace overhead OK: disabled-path cost within budget"
else
  echo "trace overhead FAIL: default build is more than $(awk -v m="$MIN_RATIO" \
    'BEGIN { printf "%.0f%%", (1 - m) * 100 }') slower than the no-trace build" >&2
  exit 1
fi
