#!/usr/bin/env bash
# Performance snapshot + regression gate (DESIGN.md §12).
#
# Builds the release binary, runs `slpmt bench --json` (matrix,
# multi-core, 16-way sharded scaling, YCSB mixes, the KV serve front
# end, the software-PTM baselines, per-op microbenches; wall-clock
# columns best-of-N), writes the
# snapshot to BENCH_<n>.json — the next
# free index, so the repo accumulates a perf trajectory — and compares
# the host sim-throughput numbers against the newest committed
# BENCH_*.json. Fails if matrix or mc sim-ops/s regressed more than
# the allowed loss.
#
# Knobs:
#   BENCH_RUNS      best-of-N reps inside slpmt bench (default 3)
#   BENCH_OPS       inserts per matrix cell (default 1000)
#   BENCH_MAX_LOSS  max fractional throughput loss (default 0.05)
#   BENCH_OUT       output path (default BENCH_<next>.json)
#   BENCH_BASELINE  baseline path (default newest BENCH_*.json)
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${BENCH_RUNS:-3}"
OPS="${BENCH_OPS:-1000}"
MAX_LOSS="${BENCH_MAX_LOSS:-0.05}"

cargo build --release -q

baseline="${BENCH_BASELINE:-}"
if [ -z "$baseline" ]; then
  baseline=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -n 1 || true)
fi

out="${BENCH_OUT:-}"
if [ -z "$out" ]; then
  n=1
  while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
  out="BENCH_${n}.json"
fi

./target/release/slpmt bench --ops "$OPS" --reps "$RUNS" --json > "$out"
echo "wrote $out"

if [ -z "$baseline" ] || [ ! -e "$baseline" ]; then
  echo "no committed BENCH_*.json baseline; skipping regression gate"
  exit 0
fi

echo "gating against $baseline (max loss $MAX_LOSS)"
python3 - "$baseline" "$out" "$MAX_LOSS" <<'PY'
import json, sys

base = json.load(open(sys.argv[1]))
cur = json.load(open(sys.argv[2]))
max_loss = float(sys.argv[3])
fail = False
for section in ("matrix", "mc", "ycsb"):
    if section not in base:
        # Baselines predating the section (e.g. ycsb, added with
        # BENCH_7) can't gate it.
        print(f"{section:<6} absent from baseline; skipping")
        continue
    b = base[section]["sim_ops_per_s"]
    c = cur[section]["sim_ops_per_s"]
    ratio = c / b
    print(f"{section:<6} baseline {b:>12.0f} sim-ops/s  "
          f"current {c:>12.0f} sim-ops/s  ratio {ratio:.3f}")
    if ratio < 1.0 - max_loss:
        print(f"{section}: regressed more than {max_loss:.0%}",
              file=sys.stderr)
        fail = True
# The simulated shard makespan is deterministic: any drift is a
# semantic change, not noise, so it gates hard.
bm = base["shards"]["makespan_cycles"]
cm = cur["shards"]["makespan_cycles"]
if base["ops"] == cur["ops"] and base["value_bytes"] == cur["value_bytes"]:
    print(f"shards makespan: baseline {bm} cycles, current {cm} cycles")
    if bm != cm:
        print("shards: simulated makespan changed — semantics moved",
              file=sys.stderr)
        fail = True
# Same for the summed YCSB-mix cycle count (when both snapshots have
# the section and ran the same trace shape).
if "ycsb" in base and "ycsb" in cur:
    by, cy = base["ycsb"], cur["ycsb"]
    if all(by[k] == cy[k] for k in ("cells", "load", "ops", "value_bytes")):
        print(f"ycsb cycles: baseline {by['total_sim_cycles']}, "
              f"current {cy['total_sim_cycles']}")
        if by["total_sim_cycles"] != cy["total_sim_cycles"]:
            print("ycsb: simulated cycle count changed — semantics moved",
                  file=sys.stderr)
            fail = True
# KV serve front end (added with BENCH_8): soft host-throughput ratio,
# plus hard equality on the simulated cycle count and the response
# digest whenever both snapshots ran the same request shape.
if "serve" in base:
    bs, cs = base["serve"], cur["serve"]
    b, c = bs["req_per_s"], cs["req_per_s"]
    ratio = c / b
    print(f"serve  baseline {b:>12.0f} req/s      "
          f"current {c:>12.0f} req/s      ratio {ratio:.3f}")
    if ratio < 1.0 - max_loss:
        print(f"serve: regressed more than {max_loss:.0%}", file=sys.stderr)
        fail = True
    if all(bs[k] == cs[k] for k in ("mix", "shards", "load", "requests")):
        print(f"serve cycles: baseline {bs['total_sim_cycles']}, "
              f"current {cs['total_sim_cycles']}; "
              f"digest {bs['digest']} vs {cs['digest']}")
        if bs["total_sim_cycles"] != cs["total_sim_cycles"]:
            print("serve: simulated cycle count changed — semantics moved",
                  file=sys.stderr)
            fail = True
        if bs["digest"] != cs["digest"]:
            print("serve: response digest changed — wire bytes moved",
                  file=sys.stderr)
            fail = True
# Chaos battery (added with BENCH_9): soft host-throughput ratio, plus
# hard equality on the sweep digest and point outcomes whenever both
# snapshots ran the same matrix shape — the sweep is fully simulated,
# so any drift is semantic.
if "chaos" in base:
    bc, cc = base["chaos"], cur["chaos"]
    b, c = bc["points_per_s"], cc["points_per_s"]
    ratio = c / b
    print(f"chaos  baseline {b:>12.0f} points/s   "
          f"current {c:>12.0f} points/s   ratio {ratio:.3f}")
    if ratio < 1.0 - max_loss:
        print(f"chaos: regressed more than {max_loss:.0%}", file=sys.stderr)
        fail = True
    if all(bc[k] == cc[k] for k in ("cases", "points")):
        print(f"chaos digest: {bc['digest']} vs {cc['digest']} "
              f"({bc['strict']}/{bc['lossy']} vs {cc['strict']}/{cc['lossy']} "
              f"strict/lossy)")
        if bc["digest"] != cc["digest"]:
            print("chaos: sweep digest changed — semantics moved",
                  file=sys.stderr)
            fail = True
        if (bc["strict"], bc["lossy"]) != (cc["strict"], cc["lossy"]):
            print("chaos: point outcomes changed — semantics moved",
                  file=sys.stderr)
            fail = True
# Software-PTM baselines (added with BENCH_10): soft host-throughput
# ratio, plus hard equality on the summed simulated cycle count and
# the folded per-cell digest whenever both snapshots ran the same
# matrix shape — every gated column is simulated, so drift is
# semantic.
if "ptm" in base:
    bp, cp = base["ptm"], cur["ptm"]
    b, c = bp["sim_ops_per_s"], cp["sim_ops_per_s"]
    ratio = c / b
    print(f"ptm    baseline {b:>12.0f} sim-ops/s  "
          f"current {c:>12.0f} sim-ops/s  ratio {ratio:.3f}")
    if ratio < 1.0 - max_loss:
        print(f"ptm: regressed more than {max_loss:.0%}", file=sys.stderr)
        fail = True
    if all(bp[k] == cp[k] for k in ("cells", "ops", "value_bytes")):
        print(f"ptm cycles: baseline {bp['total_sim_cycles']}, "
              f"current {cp['total_sim_cycles']}; "
              f"digest {bp['digest']} vs {cp['digest']}")
        if bp["total_sim_cycles"] != cp["total_sim_cycles"]:
            print("ptm: simulated cycle count changed — semantics moved",
                  file=sys.stderr)
            fail = True
        if bp["digest"] != cp["digest"]:
            print("ptm: baseline digest changed — semantics moved",
                  file=sys.stderr)
            fail = True
sys.exit(1 if fail else 0)
PY
echo "bench gate OK"
