//! The Pattern 1 / Pattern 2 analyses (§IV-B).
//!
//! Both analyses run over a validated [`TxnIr`]:
//!
//! * **Pattern 1** computes the set of *allocation-derived* pointers
//!   (transitively, through analysable computations) and the set of
//!   *freed* regions. Stores through an allocation-derived base become
//!   `storeT(log-free)`; stores into a region the transaction frees
//!   become `storeT(lazy, log-free)` — they need neither log nor
//!   persistence.
//! * **Pattern 2** computes *recoverability*: a store may use the
//!   lazy-persistency `storeT` when its address and value can be
//!   re-derived after a crash that loses the deferred line. Our
//!   conservative criterion (the paper pairs the analysis with
//!   generated re-execution recovery; we pair it with structural
//!   recovery, so we demand more):
//!
//!   1. the value flows only through analysable computations from
//!      persistent pointers and loads — *opaque* computations (deep
//!      program semantics such as re-balancing colour logic) block it;
//!   2. the value does not depend on a fresh allocation's address
//!      (allocation placement is not stable across recovery) nor on
//!      by-value transaction inputs (key/value payloads are not
//!      re-derivable from the durable structure);
//!   3. every load the value depends on reads a location that the
//!      transaction never overwrites afterwards (otherwise the
//!      pre-image needed for re-derivation is destroyed — e.g. the
//!      in-node shifts of a B-tree).
//!
//! The opaque-computation and by-value-input rules are how the
//! analysis reproduces the paper's incompleteness ("the compiler fails
//! to infer deeper semantics ... and hence misses the variables
//! recording the colors or counters", §VI-D4).
//!
//! A site used by several stores receives the *join* of their results
//! (any disagreement degrades to the safest common annotation).

use crate::ir::{Inst, Operand, TxnIr, ValueId};
use crate::table::{Annotation, AnnotationTable};
use std::collections::{BTreeMap, BTreeSet};

/// Counters describing one analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Instructions visited.
    pub insts: usize,
    /// Stores rewritten to `storeT(log-free)` (Pattern 1, allocation).
    pub pattern1_log_free: usize,
    /// Stores rewritten to `storeT(lazy, log-free)` (Pattern 1, free).
    pub pattern1_lazy_log_free: usize,
    /// Stores rewritten to `storeT(lazy)` (Pattern 2).
    pub pattern2_lazy: usize,
    /// Stores left as plain `store`.
    pub plain: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Flow {
    /// Recoverable per Pattern 2 (analysable provenance).
    recoverable: bool,
    /// Depends (transitively) on a fresh allocation's address.
    alloc_tainted: bool,
    /// Depends on by-value transaction inputs (keys/values).
    input_tainted: bool,
    /// Depends on a load whose location is later overwritten.
    clobbered: bool,
    /// Is (derived from) an allocation base pointer per Pattern 1.
    alloc_derived: bool,
}

impl Flow {
    const CONST: Flow = Flow {
        recoverable: true,
        alloc_tainted: false,
        input_tainted: false,
        clobbered: false,
        alloc_derived: false,
    };

    fn stable_for_lazy(&self) -> bool {
        self.recoverable && !self.alloc_tainted && !self.input_tainted && !self.clobbered
    }

    fn merge_dep(&mut self, dep: Flow) {
        self.recoverable &= dep.recoverable;
        self.alloc_tainted |= dep.alloc_tainted;
        self.input_tainted |= dep.input_tainted;
        self.clobbered |= dep.clobbered;
    }
}

fn op_flow(op: Operand, flows: &BTreeMap<ValueId, Flow>) -> Flow {
    match op {
        Operand::Const(_) => Flow::CONST,
        Operand::Value(v) => flows.get(&v).copied().unwrap_or_default(),
    }
}

/// Join of two annotations for a shared site: agreement keeps the
/// annotation, disagreement degrades toward the safest (`Plain` unless
/// both skip logging, in which case the eager log-free form wins).
fn join(a: Annotation, b: Annotation) -> Annotation {
    use Annotation::*;
    if a == b {
        return a;
    }
    match (a, b) {
        (LogFree, LazyLogFree) | (LazyLogFree, LogFree) => LogFree,
        _ => Plain,
    }
}

/// Runs both analyses, producing the compiler's annotation table.
///
/// # Panics
///
/// Panics if the IR fails validation — analyses assume SSA form.
pub fn analyze(ir: &TxnIr) -> (AnnotationTable, AnalysisStats) {
    ir.validate()
        .unwrap_or_else(|e| panic!("analysis requires valid IR: {e}"));
    let mut stats = AnalysisStats::default();

    // Pre-pass 1: regions freed anywhere in the transaction.
    let mut freed_roots: BTreeSet<ValueId> = BTreeSet::new();
    // Pre-pass 2: for the location-stability rule, the instruction
    // index of the *last* store to each (base, field) location.
    let mut last_store_at: BTreeMap<(ValueId, u32), usize> = BTreeMap::new();
    for (i, inst) in ir.insts.iter().enumerate() {
        match inst {
            Inst::Free { ptr } => {
                freed_roots.insert(*ptr);
            }
            Inst::Store { base, field, .. } => {
                last_store_at.insert((*base, *field), i);
            }
            _ => {}
        }
    }

    let mut flows: BTreeMap<ValueId, Flow> = BTreeMap::new();
    // Status of the last value stored to each location, for loads that
    // read back a clobbered location.
    let mut stored_flow: BTreeMap<(ValueId, u32), Flow> = BTreeMap::new();
    let mut raw: BTreeMap<crate::ir::SiteId, Annotation> = BTreeMap::new();

    for (i, inst) in ir.insts.iter().enumerate() {
        stats.insts += 1;
        match inst {
            Inst::Param { dst, kind } => {
                let input = matches!(
                    kind,
                    crate::ir::ParamKind::Key | crate::ir::ParamKind::Value
                );
                flows.insert(
                    *dst,
                    Flow {
                        recoverable: true,
                        input_tainted: input,
                        ..Flow::CONST
                    },
                );
            }
            Inst::Alloc { dst } => {
                // The new region's contents are rebuildable (Pattern 1),
                // but its *address* is not stable across recovery.
                flows.insert(
                    *dst,
                    Flow {
                        recoverable: true,
                        alloc_tainted: true,
                        alloc_derived: true,
                        ..Flow::CONST
                    },
                );
            }
            Inst::Free { .. } => {}
            Inst::Load { dst, base, field } => {
                let b = flows.get(base).copied().unwrap_or_default();
                let mut f = match stored_flow.get(&(*base, *field)) {
                    // Location already overwritten in this transaction:
                    // the loaded value inherits the stored value's
                    // status.
                    Some(stored) => *stored,
                    // Flow-in location: recoverable iff the base
                    // pointer is analysable — and *clobbered* if the
                    // transaction overwrites the location later, since
                    // the pre-image would be lost.
                    None => Flow {
                        recoverable: true,
                        clobbered: last_store_at.get(&(*base, *field)).is_some_and(|&j| j > i),
                        ..Flow::CONST
                    },
                };
                // The base pointer's taints flow into the value, but
                // its *clobber* status does not: re-derivation walks
                // the post-crash structure rather than replaying the
                // exact pointer loads, so only the loaded location's
                // own pre-image matters.
                f.recoverable &= b.recoverable;
                f.alloc_tainted |= b.alloc_tainted;
                f.input_tainted |= b.input_tainted;
                f.alloc_derived = false;
                flows.insert(*dst, f);
            }
            Inst::Compute { dst, args, opaque } => {
                let mut f = Flow {
                    recoverable: !opaque,
                    ..Flow::CONST
                };
                for a in args {
                    let af = op_flow(*a, &flows);
                    f.merge_dep(af);
                    // Pointer derivation survives analysable computes
                    // (e.g. field address arithmetic).
                    f.alloc_derived |= af.alloc_derived && !opaque;
                }
                if *opaque {
                    f.recoverable = false;
                }
                flows.insert(*dst, f);
            }
            Inst::Store {
                site,
                base,
                field,
                src,
            } => {
                let b = flows.get(base).copied().unwrap_or_default();
                let s = op_flow(*src, &flows);
                let into_freed = freed_roots.contains(base);
                let annotation = if into_freed {
                    stats.pattern1_lazy_log_free += 1;
                    Annotation::LazyLogFree
                } else if b.alloc_derived {
                    stats.pattern1_log_free += 1;
                    Annotation::LogFree
                } else if b.recoverable && !b.alloc_tainted && s.stable_for_lazy() {
                    stats.pattern2_lazy += 1;
                    Annotation::Lazy
                } else {
                    stats.plain += 1;
                    Annotation::Plain
                };
                raw.entry(*site)
                    .and_modify(|a| *a = join(*a, annotation))
                    .or_insert(annotation);
                stored_flow.insert((*base, *field), s);
            }
        }
    }
    let mut table = AnnotationTable::new();
    for (site, a) in raw {
        table.set(site, a);
    }
    (table, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ParamKind, TxnIrBuilder};

    /// Figure 7: stores into a freshly-allocated node are log-free.
    #[test]
    fn pattern1_new_node_stores_are_log_free() {
        let mut b = TxnIrBuilder::new("list-insert");
        let pos = b.param(ParamKind::PersistentPtr);
        let v = b.param(ParamKind::Value);
        let x = b.alloc();
        let s_prev = b.store(x, 0, Operand::Value(pos)); // x->prev = pos
        let s_val = b.store(x, 1, Operand::Value(v)); // x->value = v
        let s_link = b.store(pos, 0, Operand::Value(x)); // pos->next = x
        let (t, stats) = analyze(&b.build());
        assert_eq!(t.get(s_prev), Annotation::LogFree);
        assert_eq!(t.get(s_val), Annotation::LogFree);
        // The linking store publishes a fresh address: must be logged
        // and eagerly persisted.
        assert_eq!(t.get(s_link), Annotation::Plain);
        assert_eq!(stats.pattern1_log_free, 2);
        assert_eq!(stats.plain, 1);
    }

    /// §IV-B: updates to a region the transaction frees need nothing.
    #[test]
    fn pattern1_freed_region_stores_are_lazy_log_free() {
        let mut b = TxnIrBuilder::new("remove");
        let victim = b.param(ParamKind::PersistentPtr);
        let s = b.store(victim, 0, Operand::Const(0)); // poison field
        b.free(victim);
        let (t, stats) = analyze(&b.build());
        assert_eq!(t.get(s), Annotation::LazyLogFree);
        assert_eq!(stats.pattern1_lazy_log_free, 1);
    }

    /// Pattern 2: a parent pointer whose value flows from parameters is
    /// lazily persistent (the rbtree example of §VI-D4).
    #[test]
    fn pattern2_parent_pointer_is_lazy() {
        let mut b = TxnIrBuilder::new("rb-link");
        let parent = b.param(ParamKind::PersistentPtr);
        let child = b.load(parent, 0); // existing child node
        let s = b.store(child, 3, Operand::Value(parent)); // child->parent = parent
        let (t, stats) = analyze(&b.build());
        assert_eq!(t.get(s), Annotation::Lazy);
        assert_eq!(stats.pattern2_lazy, 1);
    }

    /// Values produced by opaque computations (colour logic) are not
    /// recoverable: the compiler misses them, as Figure 13 reports.
    #[test]
    fn opaque_computation_blocks_lazy() {
        let mut b = TxnIrBuilder::new("rb-color");
        let parent = b.param(ParamKind::PersistentPtr);
        let child = b.load(parent, 0);
        let color = b.compute_opaque(vec![Operand::Value(child)]);
        let s = b.store(child, 4, Operand::Value(color));
        let (t, _) = analyze(&b.build());
        assert_eq!(t.get(s), Annotation::Plain);
    }

    /// A value depending on a fresh allocation's address cannot be
    /// rebuilt after recovery, so such stores stay eager.
    #[test]
    fn alloc_address_taints_lazy_candidates() {
        let mut b = TxnIrBuilder::new("bucket-push");
        let bucket = b.param(ParamKind::PersistentPtr);
        let node = b.alloc();
        let s = b.store(bucket, 0, Operand::Value(node)); // bucket->head = node
        let (t, _) = analyze(&b.build());
        assert_eq!(t.get(s), Annotation::Plain);
    }

    /// By-value inputs (keys, payloads) are not re-derivable from the
    /// durable structure: stores of them into existing memory stay
    /// eager (the heap's append-beyond-count slot).
    #[test]
    fn input_values_block_lazy() {
        let mut b = TxnIrBuilder::new("append");
        let arr = b.param(ParamKind::PersistentPtr);
        let key = b.param(ParamKind::Key);
        let s = b.store(arr, 0, Operand::Value(key));
        let (t, _) = analyze(&b.build());
        assert_eq!(t.get(s), Annotation::Plain);
    }

    /// Loads of locations the transaction later overwrites cannot feed
    /// lazy stores (B-tree shift pattern): the pre-image needed to
    /// re-derive the value is destroyed.
    #[test]
    fn later_clobbered_source_blocks_lazy() {
        let mut b = TxnIrBuilder::new("shift");
        let node = b.param(ParamKind::PersistentPtr);
        let k = b.load(node, 3);
        let s_shift = b.store(node, 4, Operand::Value(k)); // keys[4] = keys[3]
        let s_over = b.store(node, 3, Operand::Const(9)); // keys[3] = new
        let (t, _) = analyze(&b.build());
        assert_eq!(t.get(s_shift), Annotation::Plain);
        // Overwriting with a constant is re-derivable.
        assert_eq!(t.get(s_over), Annotation::Lazy);
    }

    /// Loads of locations already overwritten inherit the stored
    /// value's recoverability rather than flow-in status.
    #[test]
    fn clobbered_load_tracks_stored_value() {
        let mut b = TxnIrBuilder::new("clobber");
        let p = b.param(ParamKind::PersistentPtr);
        let n = b.alloc();
        // p->f0 = n (plain: publishes fresh address)
        b.store(p, 0, Operand::Value(n));
        // reload p->f0: value is the fresh address → tainted
        let re = b.load(p, 0);
        // q->f1 = re: tainted value → plain
        let q = b.param(ParamKind::PersistentPtr);
        let s = b.store(q, 1, Operand::Value(re));
        let (t, _) = analyze(&b.build());
        assert_eq!(t.get(s), Annotation::Plain);
    }

    /// Key movement (rtree / rehash): copying flow-in persistent data
    /// to another existing location is lazily persistent when the
    /// source stays intact.
    #[test]
    fn data_movement_is_lazy() {
        let mut b = TxnIrBuilder::new("move");
        let src_node = b.param(ParamKind::PersistentPtr);
        let dst_node = b.param(ParamKind::PersistentPtr);
        let k = b.load(src_node, 0);
        let s = b.store(dst_node, 0, Operand::Value(k));
        let (t, _) = analyze(&b.build());
        assert_eq!(t.get(s), Annotation::Lazy);
    }

    /// Analysable computation over recoverable, stable inputs stays
    /// lazy (the AVL height pattern: child heights feed the parent's).
    #[test]
    fn pure_compute_preserves_recoverability() {
        let mut b = TxnIrBuilder::new("height");
        let node = b.param(ParamKind::PersistentPtr);
        let child = b.load(node, 1);
        let ch = b.load(child, 2);
        let h = b.compute(vec![Operand::Value(ch), Operand::Const(1)]);
        let s = b.store(node, 2, Operand::Value(h));
        let (t, _) = analyze(&b.build());
        assert_eq!(t.get(s), Annotation::Lazy);
    }

    /// Duplicate sites join conservatively.
    #[test]
    fn duplicate_sites_join() {
        let mut b = TxnIrBuilder::new("dup");
        let p = b.param(ParamKind::PersistentPtr);
        let n = b.alloc();
        let site = b.store(n, 0, Operand::Const(1)); // LogFree
        b.store_at(site, p, 0, Operand::Value(n)); // Plain (tainted src)
        let (t, _) = analyze(&b.build());
        assert_eq!(t.get(site), Annotation::Plain);
    }

    #[test]
    fn duplicate_sites_agreeing_keep_annotation() {
        let mut b = TxnIrBuilder::new("dup2");
        let n = b.alloc();
        let site = b.store(n, 0, Operand::Const(1));
        b.store_at(site, n, 1, Operand::Const(2));
        let (t, _) = analyze(&b.build());
        assert_eq!(t.get(site), Annotation::LogFree);
    }

    #[test]
    fn stats_cover_all_stores() {
        let mut b = TxnIrBuilder::new("mixed");
        let p = b.param(ParamKind::PersistentPtr);
        let n = b.alloc();
        b.store(n, 0, Operand::Const(1)); // log-free
        b.store(p, 0, Operand::Value(n)); // plain (tainted)
        b.store(p, 1, Operand::Const(2)); // lazy
        let (_, stats) = analyze(&b.build());
        assert_eq!(
            stats.pattern1_log_free
                + stats.pattern1_lazy_log_free
                + stats.pattern2_lazy
                + stats.plain,
            3
        );
        assert_eq!(stats.insts, 5);
    }
}
