//! Annotation tables: per-site `storeT` operand settings.

use crate::ir::SiteId;
use std::collections::BTreeMap;
use std::fmt;

/// The rewrite decision for one store site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum Annotation {
    /// Keep the plain `store`.
    #[default]
    Plain,
    /// `storeT lazy=0 log-free=1` — Pattern 1 on allocated memory.
    LogFree,
    /// `storeT lazy=1 log-free=0` — Pattern 2.
    Lazy,
    /// `storeT lazy=1 log-free=1` — Pattern 1 on to-be-freed memory.
    LazyLogFree,
}

impl Annotation {
    /// `true` for any non-plain rewrite (a "variable" in the Figure 13
    /// found/total counting).
    pub fn is_selective(self) -> bool {
        self != Annotation::Plain
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Annotation::Plain => "store",
            Annotation::LogFree => "storeT(log-free)",
            Annotation::Lazy => "storeT(lazy)",
            Annotation::LazyLogFree => "storeT(lazy,log-free)",
        };
        f.write_str(s)
    }
}

/// Map from store site to rewrite decision. Sites absent from the
/// table execute a plain `store`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnnotationTable {
    entries: BTreeMap<SiteId, Annotation>,
}

impl AnnotationTable {
    /// Empty table (everything plain).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the annotation of `site`.
    pub fn set(&mut self, site: SiteId, a: Annotation) {
        if a == Annotation::Plain {
            self.entries.remove(&site);
        } else {
            self.entries.insert(site, a);
        }
    }

    /// The annotation of `site` ([`Annotation::Plain`] by default).
    pub fn get(&self, site: SiteId) -> Annotation {
        self.entries.get(&site).copied().unwrap_or_default()
    }

    /// Number of selectively-annotated sites.
    pub fn selective_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates annotated sites in ID order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, Annotation)> + '_ {
        self.entries.iter().map(|(&s, &a)| (s, a))
    }

    /// Compares a compiler-produced table against the manual reference,
    /// producing the Figure 13 found/total accounting.
    pub fn compare_to_manual(&self, manual: &AnnotationTable) -> AnnotationReport {
        let total_manual = manual.selective_count();
        let found = manual
            .iter()
            .filter(|(site, _)| self.get(*site).is_selective())
            .count();
        let exact = manual
            .iter()
            .filter(|(site, a)| self.get(*site) == *a)
            .count();
        let extra = self
            .iter()
            .filter(|(site, _)| !manual.get(*site).is_selective())
            .count();
        AnnotationReport {
            total_manual,
            found,
            exact,
            extra,
        }
    }
}

impl FromIterator<(SiteId, Annotation)> for AnnotationTable {
    fn from_iter<I: IntoIterator<Item = (SiteId, Annotation)>>(iter: I) -> Self {
        let mut t = AnnotationTable::new();
        for (s, a) in iter {
            t.set(s, a);
        }
        t
    }
}

/// Compiler-vs-manual comparison (Figure 13 left's "16 out of 26").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotationReport {
    /// Manually annotated variables.
    pub total_manual: usize,
    /// Of those, sites the compiler also annotated (any selective form).
    pub found: usize,
    /// Of those, sites where the compiler chose the identical form.
    pub exact: usize,
    /// Sites the compiler annotated that the manual table left plain.
    pub extra: usize,
}

impl fmt::Display for AnnotationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compiler found {}/{} manual annotations ({} exact, {} extra)",
            self.found, self.total_manual, self.exact, self.extra
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_plain() {
        let t = AnnotationTable::new();
        assert_eq!(t.get(SiteId(7)), Annotation::Plain);
        assert_eq!(t.selective_count(), 0);
    }

    #[test]
    fn set_and_get() {
        let mut t = AnnotationTable::new();
        t.set(SiteId(1), Annotation::LogFree);
        t.set(SiteId(2), Annotation::Lazy);
        assert_eq!(t.get(SiteId(1)), Annotation::LogFree);
        assert_eq!(t.selective_count(), 2);
        // Setting plain removes the entry.
        t.set(SiteId(1), Annotation::Plain);
        assert_eq!(t.selective_count(), 1);
    }

    #[test]
    fn comparison_counts() {
        let manual: AnnotationTable = [
            (SiteId(0), Annotation::LogFree),
            (SiteId(1), Annotation::Lazy),
            (SiteId(2), Annotation::LogFree),
        ]
        .into_iter()
        .collect();
        let compiler: AnnotationTable = [
            (SiteId(0), Annotation::LogFree),     // exact
            (SiteId(1), Annotation::LazyLogFree), // found, not exact
            (SiteId(9), Annotation::Lazy),        // extra
        ]
        .into_iter()
        .collect();
        let r = compiler.compare_to_manual(&manual);
        assert_eq!(r.total_manual, 3);
        assert_eq!(r.found, 2);
        assert_eq!(r.exact, 1);
        assert_eq!(r.extra, 1);
        assert!(r.to_string().contains("2/3"));
    }

    #[test]
    fn annotation_selectivity() {
        assert!(!Annotation::Plain.is_selective());
        assert!(Annotation::LogFree.is_selective());
        assert!(Annotation::Lazy.is_selective());
        assert!(Annotation::LazyLogFree.is_selective());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Annotation::LogFree.to_string(), "storeT(log-free)");
        assert_eq!(Annotation::Plain.to_string(), "store");
    }
}
