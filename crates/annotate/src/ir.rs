//! The transaction intermediate representation.
//!
//! A [`TxnIr`] is a straight-line, SSA-form description of one durable
//! transaction body: every value is defined exactly once, the
//! instruction that creates a variable is the first to update its
//! memory location, and stores carry a [`SiteId`] naming the run-time
//! store site they correspond to (the workloads use the same IDs when
//! executing). This mirrors the setting of §IV-B, where the analysis
//! runs after SSA construction and MemorySSA dependence analysis.

use std::fmt;

/// An SSA value identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

/// A run-time store site identifier. The workload executes its stores
/// tagged with the same IDs, so annotations transfer directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// What a flow-in parameter represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// A pointer to existing persistent data (e.g. the insert position).
    PersistentPtr,
    /// A by-value input recorded durably by the caller (key bytes).
    Key,
    /// A by-value input recorded durably by the caller (value bytes).
    Value,
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An SSA value.
    Value(ValueId),
    /// An immediate constant.
    Const(u64),
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = param` — a flow-in value, durable before the transaction
    /// (or re-suppliable on recovery, like the re-execution inputs of
    /// Clobber-NVM).
    Param {
        /// Defined value.
        dst: ValueId,
        /// What the parameter represents.
        kind: ParamKind,
    },
    /// `dst = malloc(..)` — a persistent allocation (Pattern 1 root).
    Alloc {
        /// Defined value: the new region's base pointer.
        dst: ValueId,
    },
    /// `free(ptr)` — the region dies within this transaction.
    Free {
        /// The doomed region's base pointer.
        ptr: ValueId,
    },
    /// `dst = load base.field`.
    Load {
        /// Defined value.
        dst: ValueId,
        /// Base pointer.
        base: ValueId,
        /// Field index (MemorySSA-style location = base + field).
        field: u32,
    },
    /// `store base.field = src`, the rewrite candidate.
    Store {
        /// Run-time site this instruction corresponds to.
        site: SiteId,
        /// Base pointer.
        base: ValueId,
        /// Field index.
        field: u32,
        /// Stored value.
        src: Operand,
    },
    /// `dst = f(args)` — a pure computation. When `opaque` is set the
    /// compiler cannot reason about it (deep program semantics, e.g.
    /// re-balancing colour logic), so its result is not considered
    /// recoverable even if the inputs are.
    Compute {
        /// Defined value.
        dst: ValueId,
        /// Inputs.
        args: Vec<Operand>,
        /// Whether the analysis must treat the result as unanalysable.
        opaque: bool,
    },
}

/// A straight-line transaction body in SSA form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxnIr {
    /// Human-readable name (benchmark / function).
    pub name: String,
    /// Instructions in program order.
    pub insts: Vec<Inst>,
}

impl TxnIr {
    /// Validates SSA form: each value defined exactly once, every use
    /// after its definition.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut defined = std::collections::BTreeSet::new();
        let check_use = |v: ValueId, defined: &std::collections::BTreeSet<ValueId>, at: usize| {
            if defined.contains(&v) {
                Ok(())
            } else {
                Err(format!(
                    "value v{} used before definition at inst {at}",
                    v.0
                ))
            }
        };
        let define = |v: ValueId, defined: &mut std::collections::BTreeSet<ValueId>, at: usize| {
            if defined.insert(v) {
                Ok(())
            } else {
                Err(format!("value v{} defined twice at inst {at}", v.0))
            }
        };
        for (i, inst) in self.insts.iter().enumerate() {
            match inst {
                Inst::Param { dst, .. } | Inst::Alloc { dst } => define(*dst, &mut defined, i)?,
                Inst::Free { ptr } => check_use(*ptr, &defined, i)?,
                Inst::Load { dst, base, .. } => {
                    check_use(*base, &defined, i)?;
                    define(*dst, &mut defined, i)?;
                }
                Inst::Store { base, src, .. } => {
                    check_use(*base, &defined, i)?;
                    if let Operand::Value(v) = src {
                        check_use(*v, &defined, i)?;
                    }
                }
                Inst::Compute { dst, args, .. } => {
                    for a in args {
                        if let Operand::Value(v) = a {
                            check_use(*v, &defined, i)?;
                        }
                    }
                    define(*dst, &mut defined, i)?;
                }
            }
        }
        Ok(())
    }

    /// All store sites in program order.
    pub fn store_sites(&self) -> Vec<SiteId> {
        self.insts
            .iter()
            .filter_map(|i| match i {
                Inst::Store { site, .. } => Some(*site),
                _ => None,
            })
            .collect()
    }
}

/// Fluent builder producing valid [`TxnIr`] with auto-assigned value
/// IDs.
///
/// ```
/// use slpmt_annotate::{TxnIrBuilder, ParamKind, Operand};
/// let mut b = TxnIrBuilder::new("insert");
/// let pos = b.param(ParamKind::PersistentPtr);
/// let val = b.param(ParamKind::Value);
/// let node = b.alloc();
/// b.store(node, 0, Operand::Value(val)); // x->value = v
/// b.store(node, 1, Operand::Value(pos)); // x->prev  = pos
/// b.store(pos, 2, Operand::Value(node)); // pos->next = x (linking)
/// let ir = b.build();
/// assert!(ir.validate().is_ok());
/// assert_eq!(ir.store_sites().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct TxnIrBuilder {
    ir: TxnIr,
    next_value: u32,
    next_site: u32,
}

impl TxnIrBuilder {
    /// Starts a builder for a transaction called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TxnIrBuilder {
            ir: TxnIr {
                name: name.into(),
                insts: Vec::new(),
            },
            next_value: 0,
            next_site: 0,
        }
    }

    fn fresh(&mut self) -> ValueId {
        let v = ValueId(self.next_value);
        self.next_value += 1;
        v
    }

    /// Adds a flow-in parameter.
    pub fn param(&mut self, kind: ParamKind) -> ValueId {
        let dst = self.fresh();
        self.ir.insts.push(Inst::Param { dst, kind });
        dst
    }

    /// Adds a persistent allocation.
    pub fn alloc(&mut self) -> ValueId {
        let dst = self.fresh();
        self.ir.insts.push(Inst::Alloc { dst });
        dst
    }

    /// Frees a region within the transaction.
    pub fn free(&mut self, ptr: ValueId) {
        self.ir.insts.push(Inst::Free { ptr });
    }

    /// Adds a load of `base.field`.
    pub fn load(&mut self, base: ValueId, field: u32) -> ValueId {
        let dst = self.fresh();
        self.ir.insts.push(Inst::Load { dst, base, field });
        dst
    }

    /// Adds a store to `base.field`, returning its site ID.
    pub fn store(&mut self, base: ValueId, field: u32, src: Operand) -> SiteId {
        let site = SiteId(self.next_site);
        self.next_site += 1;
        self.ir.insts.push(Inst::Store {
            site,
            base,
            field,
            src,
        });
        site
    }

    /// Adds a store with an explicit, caller-chosen site ID — used when
    /// the run-time store sites are a fixed enumeration the IR must
    /// match. A site may appear on several stores; the analysis joins
    /// their results conservatively.
    pub fn store_at(&mut self, site: SiteId, base: ValueId, field: u32, src: Operand) {
        self.next_site = self.next_site.max(site.0 + 1);
        self.ir.insts.push(Inst::Store {
            site,
            base,
            field,
            src,
        });
    }

    /// Adds an analysable pure computation.
    pub fn compute(&mut self, args: Vec<Operand>) -> ValueId {
        let dst = self.fresh();
        self.ir.insts.push(Inst::Compute {
            dst,
            args,
            opaque: false,
        });
        dst
    }

    /// Adds an *opaque* computation the analysis cannot see through.
    pub fn compute_opaque(&mut self, args: Vec<Operand>) -> ValueId {
        let dst = self.fresh();
        self.ir.insts.push(Inst::Compute {
            dst,
            args,
            opaque: true,
        });
        dst
    }

    /// Finishes the IR.
    ///
    /// # Panics
    ///
    /// Panics if the built IR fails [`TxnIr::validate`] — builder bugs
    /// only, since the builder assigns IDs itself.
    pub fn build(self) -> TxnIr {
        self.ir
            .validate()
            .unwrap_or_else(|e| panic!("builder produced invalid IR: {e}"));
        self.ir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_ssa() {
        let mut b = TxnIrBuilder::new("t");
        let p = b.param(ParamKind::PersistentPtr);
        let n = b.alloc();
        let v = b.load(p, 0);
        let c = b.compute(vec![Operand::Value(v), Operand::Const(1)]);
        b.store(n, 0, Operand::Value(c));
        b.free(p);
        let ir = b.build();
        assert_eq!(ir.insts.len(), 6);
        assert!(ir.validate().is_ok());
    }

    #[test]
    fn validate_rejects_use_before_def() {
        let ir = TxnIr {
            name: "bad".into(),
            insts: vec![Inst::Free { ptr: ValueId(0) }],
        };
        assert!(ir.validate().unwrap_err().contains("before definition"));
    }

    #[test]
    fn validate_rejects_double_definition() {
        let ir = TxnIr {
            name: "bad".into(),
            insts: vec![
                Inst::Alloc { dst: ValueId(0) },
                Inst::Alloc { dst: ValueId(0) },
            ],
        };
        assert!(ir.validate().unwrap_err().contains("defined twice"));
    }

    #[test]
    fn duplicate_sites_are_allowed() {
        // Run-time code reuses one site for many stores of the same
        // class (e.g. every child-slot initialisation of a fresh node),
        // so the IR permits it; the analysis joins conflicting results.
        let ir = TxnIr {
            name: "dup".into(),
            insts: vec![
                Inst::Alloc { dst: ValueId(0) },
                Inst::Store {
                    site: SiteId(0),
                    base: ValueId(0),
                    field: 0,
                    src: Operand::Const(1),
                },
                Inst::Store {
                    site: SiteId(0),
                    base: ValueId(0),
                    field: 1,
                    src: Operand::Const(2),
                },
            ],
        };
        assert!(ir.validate().is_ok());
    }

    #[test]
    fn store_sites_in_order() {
        let mut b = TxnIrBuilder::new("t");
        let n = b.alloc();
        let s0 = b.store(n, 0, Operand::Const(0));
        let s1 = b.store(n, 1, Operand::Const(1));
        let ir = b.build();
        assert_eq!(ir.store_sites(), vec![s0, s1]);
    }
}
