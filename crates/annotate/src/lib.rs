//! Compiler support for `storeT` — the §IV analyses as a library.
//!
//! The paper extends clang/LLVM (MemorySSA) with two analyses that
//! rewrite `store` into `storeT` automatically:
//!
//! * **Pattern 1 (log-free)**: stores into memory `malloc`-ed before or
//!   within the transaction need no undo log — on recovery the leaked
//!   allocation is garbage-collected. Stores into regions `free`-d by
//!   the same transaction need neither log nor persistence.
//! * **Pattern 2 (lazy persistence)**: flow-out stores whose address
//!   and value are recoverable from data that is itself recoverable or
//!   already persisted may use the lazy-persistency `storeT` (still
//!   logged).
//!
//! This crate reproduces those analyses over a small SSA-form
//! intermediate representation ([`ir`]) in which each workload encodes
//! its transaction body. The [`analysis`] module runs the patterns and
//! produces an [`table::AnnotationTable`] mapping
//! store *sites* to `storeT` operand settings; workloads consult the
//! table at run time, exactly as compiled code would execute the
//! rewritten instructions. [`table`] also diffs compiler output
//! against manual annotations, the measurement behind Figure 13
//! ("the compiler identifies 16 out of 26 manually annotated
//! variables").
//!
//! Like the paper's MemorySSA-based pass, the analysis is *sound but
//! incomplete*: computations marked opaque (deep program semantics
//! such as a red-black tree's colour logic) block recoverability, so
//! the compiler misses some manually-annotatable variables — never the
//! reverse direction that would threaten correctness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ir;
pub mod table;

pub use analysis::{analyze, AnalysisStats};
pub use ir::{Inst, Operand, ParamKind, SiteId, TxnIr, TxnIrBuilder, ValueId};
pub use table::{Annotation, AnnotationReport, AnnotationTable};
