//! Randomized tests for the compiler analyses: on arbitrary valid IR
//! the analysis never panics and respects its soundness rules.
//! Seeded generation replaces `proptest` (unavailable offline).

use slpmt_annotate::{analyze, Annotation, Inst, Operand, ParamKind, SiteId, TxnIr, ValueId};
use slpmt_prng::SimRng;

/// Generates a random valid SSA transaction body.
fn random_ir(rng: &mut SimRng) -> TxnIr {
    let mut insts = Vec::new();
    let mut values: Vec<ValueId> = Vec::new();
    let mut next_value = 0u32;
    let mut next_site = 0u32;
    let fresh = |values: &mut Vec<ValueId>, next_value: &mut u32| {
        let v = ValueId(*next_value);
        *next_value += 1;
        values.push(v);
        v
    };
    for _ in 0..rng.gen_usize(1..60) {
        let kind = rng.gen_range(0..6) as u8;
        let a = rng.next_u64() as u32;
        let b = rng.next_u64() as u32;
        let flag = rng.gen_bool(0.5);
        match kind {
            0 => {
                let dst = fresh(&mut values, &mut next_value);
                let pk = match a % 3 {
                    0 => ParamKind::PersistentPtr,
                    1 => ParamKind::Key,
                    _ => ParamKind::Value,
                };
                insts.push(Inst::Param { dst, kind: pk });
            }
            1 => {
                let dst = fresh(&mut values, &mut next_value);
                insts.push(Inst::Alloc { dst });
            }
            2 if !values.is_empty() => {
                let ptr = values[a as usize % values.len()];
                insts.push(Inst::Free { ptr });
            }
            3 if !values.is_empty() => {
                let base = values[a as usize % values.len()];
                let dst = fresh(&mut values, &mut next_value);
                insts.push(Inst::Load {
                    dst,
                    base,
                    field: b % 8,
                });
            }
            4 if !values.is_empty() => {
                let base = values[a as usize % values.len()];
                let src = if flag && values.len() > 1 {
                    Operand::Value(values[b as usize % values.len()])
                } else {
                    Operand::Const(b as u64)
                };
                insts.push(Inst::Store {
                    site: SiteId(next_site),
                    base,
                    field: b % 8,
                    src,
                });
                next_site += 1;
            }
            _ if !values.is_empty() => {
                let arg = Operand::Value(values[a as usize % values.len()]);
                let dst = fresh(&mut values, &mut next_value);
                insts.push(Inst::Compute {
                    dst,
                    args: vec![arg, Operand::Const(b as u64)],
                    opaque: flag,
                });
            }
            _ => {}
        }
    }
    TxnIr {
        name: "random".into(),
        insts,
    }
}

#[test]
fn analysis_total_and_sound() {
    for case in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(0xA77A ^ case);
        let ir = random_ir(&mut rng);
        if ir.validate().is_err() {
            continue;
        }
        let (table, stats) = analyze(&ir);
        // Totality: every store classified exactly once.
        let stores = ir.store_sites().len();
        assert_eq!(
            stats.pattern1_log_free
                + stats.pattern1_lazy_log_free
                + stats.pattern2_lazy
                + stats.plain,
            stores,
            "case {case}"
        );
        // Soundness spot rules, re-derived from the IR:
        let mut alloc_roots = std::collections::BTreeSet::new();
        for inst in &ir.insts {
            if let Inst::Alloc { dst } = inst {
                alloc_roots.insert(*dst);
            }
        }
        for inst in &ir.insts {
            if let Inst::Store { site, src, .. } = inst {
                // A store of a fresh allocation's address (directly) is
                // never lazily persistent: the address is not stable
                // across recovery.
                match src {
                    Operand::Value(v) if alloc_roots.contains(v) => {
                        assert_ne!(table.get(*site), Annotation::Lazy, "case {case}");
                    }
                    _ => {}
                }
            }
        }
    }
}
