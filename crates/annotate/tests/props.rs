//! Property tests for the compiler analyses: on arbitrary valid IR the
//! analysis never panics and respects its soundness rules.

use proptest::prelude::*;
use slpmt_annotate::{analyze, Annotation, Inst, Operand, ParamKind, SiteId, TxnIr, ValueId};

/// Generates a random valid SSA transaction body.
fn ir_strategy() -> impl Strategy<Value = TxnIr> {
    prop::collection::vec((0u8..6, any::<u32>(), any::<u32>(), any::<bool>()), 1..60).prop_map(
        |choices| {
            let mut insts = Vec::new();
            let mut values: Vec<ValueId> = Vec::new();
            let mut next_value = 0u32;
            let mut next_site = 0u32;
            let fresh = |values: &mut Vec<ValueId>, next_value: &mut u32| {
                let v = ValueId(*next_value);
                *next_value += 1;
                values.push(v);
                v
            };
            for (kind, a, b, flag) in choices {
                match kind {
                    0 => {
                        let dst = fresh(&mut values, &mut next_value);
                        let pk = match a % 3 {
                            0 => ParamKind::PersistentPtr,
                            1 => ParamKind::Key,
                            _ => ParamKind::Value,
                        };
                        insts.push(Inst::Param { dst, kind: pk });
                    }
                    1 => {
                        let dst = fresh(&mut values, &mut next_value);
                        insts.push(Inst::Alloc { dst });
                    }
                    2 if !values.is_empty() => {
                        let ptr = values[a as usize % values.len()];
                        insts.push(Inst::Free { ptr });
                    }
                    3 if !values.is_empty() => {
                        let base = values[a as usize % values.len()];
                        let dst = fresh(&mut values, &mut next_value);
                        insts.push(Inst::Load { dst, base, field: b % 8 });
                    }
                    4 if !values.is_empty() => {
                        let base = values[a as usize % values.len()];
                        let src = if flag && values.len() > 1 {
                            Operand::Value(values[b as usize % values.len()])
                        } else {
                            Operand::Const(b as u64)
                        };
                        insts.push(Inst::Store {
                            site: SiteId(next_site),
                            base,
                            field: b % 8,
                            src,
                        });
                        next_site += 1;
                    }
                    _ if !values.is_empty() => {
                        let arg = Operand::Value(values[a as usize % values.len()]);
                        let dst = fresh(&mut values, &mut next_value);
                        insts.push(Inst::Compute {
                            dst,
                            args: vec![arg, Operand::Const(b as u64)],
                            opaque: flag,
                        });
                    }
                    _ => {}
                }
            }
            TxnIr {
                name: "random".into(),
                insts,
            }
        },
    )
}

proptest! {
    #[test]
    fn analysis_total_and_sound(ir in ir_strategy()) {
        prop_assume!(ir.validate().is_ok());
        let (table, stats) = analyze(&ir);
        // Totality: every store classified exactly once.
        let stores = ir.store_sites().len();
        prop_assert_eq!(
            stats.pattern1_log_free + stats.pattern1_lazy_log_free
                + stats.pattern2_lazy + stats.plain,
            stores
        );
        // Soundness spot rules, re-derived from the IR:
        let mut alloc_roots = std::collections::BTreeSet::new();
        for inst in &ir.insts {
            if let Inst::Alloc { dst } = inst {
                alloc_roots.insert(*dst);
            }
        }
        for inst in &ir.insts {
            if let Inst::Store { site, src, .. } = inst {
                // A store of a fresh allocation's address (directly) is
                // never lazily persistent: the address is not stable
                // across recovery.
                match src {
                    Operand::Value(v) if alloc_roots.contains(v) => {
                        prop_assert_ne!(table.get(*site), Annotation::Lazy);
                    }
                    _ => {}
                }
            }
        }
    }
}
