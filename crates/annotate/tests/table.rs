//! Table I operand coverage for the annotation table: the four
//! `storeT` operand combinations, the plain-store default, and the
//! Figure 13 comparison accounting — exercised with seeded random
//! tables checked against a `BTreeMap` model.

use slpmt_annotate::{Annotation, AnnotationTable, SiteId};
use slpmt_prng::SimRng;
use std::collections::BTreeMap;

const FORMS: [Annotation; 4] = [
    Annotation::Plain,
    Annotation::LogFree,
    Annotation::Lazy,
    Annotation::LazyLogFree,
];

#[test]
fn every_operand_combination_round_trips() {
    let mut t = AnnotationTable::new();
    for (i, a) in FORMS.into_iter().enumerate() {
        t.set(SiteId(i as u32), a);
        assert_eq!(t.get(SiteId(i as u32)), a);
    }
    // Plain entries are not stored: three selective forms remain.
    assert_eq!(t.selective_count(), 3);
    // Display covers each Table I row exactly once.
    let shown: Vec<String> = FORMS.iter().map(ToString::to_string).collect();
    assert_eq!(
        shown,
        [
            "store",
            "storeT(log-free)",
            "storeT(lazy)",
            "storeT(lazy,log-free)"
        ]
    );
}

#[test]
fn random_tables_match_map_model() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x7AB1E ^ case);
        let mut t = AnnotationTable::new();
        let mut model: BTreeMap<u32, Annotation> = BTreeMap::new();
        for _ in 0..rng.gen_usize(1..120) {
            let site = rng.next_u64() as u32 % 40;
            let a = FORMS[rng.gen_usize(0..FORMS.len())];
            t.set(SiteId(site), a);
            if a == Annotation::Plain {
                model.remove(&site);
            } else {
                model.insert(site, a);
            }
        }
        assert_eq!(t.selective_count(), model.len(), "case {case}");
        for site in 0..40u32 {
            assert_eq!(
                t.get(SiteId(site)),
                model.get(&site).copied().unwrap_or(Annotation::Plain),
                "case {case} site {site}"
            );
        }
        // iter() yields exactly the selective entries, in ID order.
        let got: Vec<(u32, Annotation)> = t.iter().map(|(s, a)| (s.0, a)).collect();
        let want: Vec<(u32, Annotation)> = model.iter().map(|(&s, &a)| (s, a)).collect();
        assert_eq!(got, want, "case {case}");
        // Rebuilding through FromIterator is lossless.
        let rebuilt: AnnotationTable = t.iter().collect();
        assert_eq!(rebuilt, t, "case {case}");
    }
}

#[test]
fn comparison_report_bounds_hold_on_random_pairs() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0xF1613 ^ case);
        let gen_table = |rng: &mut SimRng| {
            (0..rng.gen_usize(0..30))
                .map(|_| {
                    (
                        SiteId(rng.next_u64() as u32 % 26),
                        FORMS[rng.gen_usize(1..FORMS.len())],
                    )
                })
                .collect::<AnnotationTable>()
        };
        let manual = gen_table(&mut rng);
        let compiler = gen_table(&mut rng);
        let r = compiler.compare_to_manual(&manual);
        assert_eq!(r.total_manual, manual.selective_count(), "case {case}");
        assert!(
            r.exact <= r.found,
            "case {case}: exact {} > found {}",
            r.exact,
            r.found
        );
        assert!(r.found <= r.total_manual, "case {case}");
        assert!(r.extra <= compiler.selective_count(), "case {case}");
        // found + extra never exceeds what the compiler annotated plus
        // what it missed... sanity: comparing a table to itself is
        // perfect.
        let self_r = manual.compare_to_manual(&manual);
        assert_eq!(self_r.found, self_r.total_manual, "case {case}");
        assert_eq!(self_r.exact, self_r.total_manual, "case {case}");
        assert_eq!(self_r.extra, 0, "case {case}");
    }
}

#[test]
fn selectivity_partitions_the_forms() {
    assert!(!Annotation::Plain.is_selective());
    for a in [
        Annotation::LogFree,
        Annotation::Lazy,
        Annotation::LazyLogFree,
    ] {
        assert!(a.is_selective(), "{a} must count as a Figure 13 variable");
    }
}
