//! Inline payload storage for log records.
//!
//! Log payloads are at most one cache line (64 bytes) and flow through
//! the hottest simulator path: store → log-buffer coalesce → flush →
//! WPQ → log region. Boxing each payload in a `Vec<u8>` put a heap
//! allocation (and later a free) on every logged store. [`PayloadBuf`]
//! inlines the bytes instead — a fixed array sized to the largest
//! tier record's 72-byte media format plus an explicit length — so
//! records are `Copy` and the whole path allocates nothing.

use std::ops::{Deref, DerefMut};

/// Inline capacity: the largest tier record (a full line) has a
/// 72-byte media format, so every payload fits with headroom.
pub const PAYLOAD_CAP: usize = 72;

/// A fixed-capacity inline byte buffer for log payloads.
///
/// Dereferences to `[u8]`, so slicing, iteration and length checks
/// read exactly like the `Vec<u8>` it replaces.
///
/// ```
/// use slpmt_pmem::PayloadBuf;
/// let p = PayloadBuf::from_slice(&[7; 16]);
/// assert_eq!(p.len(), 16);
/// assert_eq!(&p[..8], &[7; 8]);
/// ```
#[derive(Clone, Copy)]
pub struct PayloadBuf {
    len: u8,
    bytes: [u8; PAYLOAD_CAP],
}

impl PayloadBuf {
    /// Builds a buffer holding a copy of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds [`PAYLOAD_CAP`] bytes.
    pub fn from_slice(data: &[u8]) -> Self {
        assert!(
            data.len() <= PAYLOAD_CAP,
            "payload of {} bytes exceeds inline capacity {PAYLOAD_CAP}",
            data.len()
        );
        let mut bytes = [0u8; PAYLOAD_CAP];
        bytes[..data.len()].copy_from_slice(data);
        PayloadBuf {
            len: data.len() as u8,
            bytes,
        }
    }

    /// Builds a buffer holding `lo` followed by `hi` (buddy merge).
    ///
    /// # Panics
    ///
    /// Panics if the concatenation exceeds [`PAYLOAD_CAP`] bytes.
    pub fn concat(lo: &[u8], hi: &[u8]) -> Self {
        let total = lo.len() + hi.len();
        assert!(
            total <= PAYLOAD_CAP,
            "payload of {total} bytes exceeds inline capacity {PAYLOAD_CAP}"
        );
        let mut bytes = [0u8; PAYLOAD_CAP];
        bytes[..lo.len()].copy_from_slice(lo);
        bytes[lo.len()..total].copy_from_slice(hi);
        PayloadBuf {
            len: total as u8,
            bytes,
        }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }
}

impl Deref for PayloadBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for PayloadBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        let len = self.len as usize;
        &mut self.bytes[..len]
    }
}

impl AsRef<[u8]> for PayloadBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for PayloadBuf {
    fn from(data: &[u8]) -> Self {
        PayloadBuf::from_slice(data)
    }
}

impl PartialEq for PayloadBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PayloadBuf {}

impl PartialEq<[u8]> for PayloadBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PayloadBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for PayloadBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for PayloadBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slicing() {
        let p = PayloadBuf::from_slice(&[3; 32]);
        assert_eq!(p.len(), 32);
        assert!(!p.is_empty());
        assert_eq!(&p[..], &[3u8; 32][..]);
        assert_eq!(p, [3u8; 32]);
        assert_eq!(p, vec![3u8; 32]);
    }

    #[test]
    fn concat_is_ordered() {
        let p = PayloadBuf::concat(&[1; 8], &[2; 8]);
        assert_eq!(p.len(), 16);
        assert_eq!(&p[..8], &[1; 8]);
        assert_eq!(&p[8..], &[2; 8]);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut p = PayloadBuf::from_slice(&[0; 16]);
        p[8..16].copy_from_slice(&[9; 8]);
        assert_eq!(&p[..8], &[0; 8]);
        assert_eq!(&p[8..], &[9; 8]);
    }

    #[test]
    fn full_capacity_accepted() {
        let p = PayloadBuf::from_slice(&[1; PAYLOAD_CAP]);
        assert_eq!(p.len(), PAYLOAD_CAP);
    }

    #[test]
    #[should_panic(expected = "exceeds inline capacity")]
    fn oversize_rejected() {
        let _ = PayloadBuf::from_slice(&[0; PAYLOAD_CAP + 1]);
    }
}
