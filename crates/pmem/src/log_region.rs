//! Durable log-area layout.
//!
//! The transaction engine persists log records (after coalescing and
//! packing) into a dedicated region of persistent memory. This module
//! models the *content* of that region: the sequence of records that
//! actually reached the persistence domain, plus per-transaction commit
//! markers. Post-crash recovery walks this region — applying undo
//! records of unfinished transactions in reverse order (or redo records
//! of committed ones forward).
//!
//! Byte-level placement inside the region is not needed for recovery
//! correctness; traffic accounting for record bytes happens in
//! [`crate::stats::WriteTraffic`] where packing into 64-byte WPQ slots
//! is counted.

use crate::addr::PmAddr;
use crate::payload::PayloadBuf;
use std::collections::BTreeSet;

/// One log record as persisted: the image of `payload.len()` bytes at
/// `addr` (the *old* value for undo logging, the *new* value for redo).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistedRecord {
    /// Global sequence number of the owning transaction.
    pub txn: u64,
    /// Word-aligned start address the record covers.
    pub addr: PmAddr,
    /// Logged bytes (8 for a word record up to 64 for a line record),
    /// stored inline — records are plain `Copy` data.
    pub payload: PayloadBuf,
}

impl PersistedRecord {
    /// On-media size of the record: payload plus an 8-byte address tag,
    /// matching the 16/24/40/72-byte record formats of Figure 6.
    pub fn media_bytes(&self) -> u64 {
        self.payload.len() as u64 + 8
    }
}

/// The durable undo/redo log region.
///
/// Only records that really persisted (accepted by the WPQ) may be
/// appended, so the region's content *is* the crash-visible log.
///
/// ```
/// use slpmt_pmem::{LogRegion, PmAddr};
/// let mut log = LogRegion::new();
/// log.append(1, PmAddr::new(64), &[0u8; 8]);
/// assert_eq!(log.records_of(1).count(), 1);
/// assert!(!log.is_committed(1));
/// log.mark_committed(1);
/// assert!(log.is_committed(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogRegion {
    records: Vec<PersistedRecord>,
    committed: BTreeSet<u64>,
    bytes_appended: u64,
}

impl LogRegion {
    /// Creates an empty log region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a persisted record for transaction `txn`.
    ///
    /// # Panics
    ///
    /// Panics if the payload is empty or `addr` is not word-aligned —
    /// hardware only emits word-multiple records (Figure 6).
    pub fn append(&mut self, txn: u64, addr: PmAddr, payload: &[u8]) {
        assert!(!payload.is_empty(), "empty log record");
        assert!(addr.is_word_aligned(), "log record must be word-aligned");
        assert!(
            payload.len().is_multiple_of(crate::addr::WORD_BYTES),
            "log payload must be a whole number of words"
        );
        let rec = PersistedRecord {
            txn,
            addr,
            payload: PayloadBuf::from_slice(payload),
        };
        self.bytes_appended += rec.media_bytes();
        self.records.push(rec);
    }

    /// Marks transaction `txn` committed (its commit marker persisted).
    pub fn mark_committed(&mut self, txn: u64) {
        self.committed.insert(txn);
    }

    /// Whether a commit marker for `txn` is durable.
    pub fn is_committed(&self, txn: u64) -> bool {
        self.committed.contains(&txn)
    }

    /// All records, in persist order.
    pub fn records(&self) -> &[PersistedRecord] {
        &self.records
    }

    /// Records belonging to transaction `txn`, in persist order.
    pub fn records_of(&self, txn: u64) -> impl Iterator<Item = &PersistedRecord> {
        self.records.iter().filter(move |r| r.txn == txn)
    }

    /// Records of transactions that have **no** durable commit marker,
    /// in *reverse* persist order — the order undo recovery applies them.
    pub fn uncommitted_rev(&self) -> impl Iterator<Item = &PersistedRecord> {
        self.records
            .iter()
            .rev()
            .filter(move |r| !self.committed.contains(&r.txn))
    }

    /// Total bytes appended (records incl. metadata), an audit value.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Drops records of committed transactions (log truncation after a
    /// successful commit). Commit markers for truncated transactions are
    /// retained so recovery can still distinguish them.
    pub fn truncate_committed(&mut self) {
        let committed = &self.committed;
        self.records.retain(|r| !committed.contains(&r.txn));
    }

    /// Removes every record of transaction `txn` (an abort persisted
    /// its revocations, so the records must never be replayed by a
    /// later recovery). Returns how many records were dropped.
    pub fn drop_txn(&mut self, txn: u64) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.txn != txn);
        before - self.records.len()
    }

    /// Transactions with durable commit markers, in sequence order.
    pub fn committed_txns(&self) -> impl Iterator<Item = u64> + '_ {
        self.committed.iter().copied()
    }

    /// Empties the region entirely — records *and* markers. Used when
    /// recovery finishes and a new log epoch begins.
    pub fn reset(&mut self) {
        self.records.clear();
        self.committed.clear();
    }

    /// Number of live records in the region.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are live.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec_addrs<'a>(it: impl Iterator<Item = &'a PersistedRecord>) -> Vec<u64> {
        it.map(|r| r.addr.raw()).collect()
    }

    #[test]
    fn media_bytes_match_figure6() {
        // word / double / quad / line records: 16 / 24(32?) — Figure 6
        // gives 16, 24, 40, 72; payload+8 matches 16 (8B), 40 (32B), 72 (64B).
        // The 24-byte double-word record is payload 16 + 8.
        let w = PersistedRecord {
            txn: 0,
            addr: PmAddr::new(0),
            payload: PayloadBuf::from_slice(&[0; 8]),
        };
        assert_eq!(w.media_bytes(), 16);
        let d = PersistedRecord {
            txn: 0,
            addr: PmAddr::new(0),
            payload: PayloadBuf::from_slice(&[0; 16]),
        };
        assert_eq!(d.media_bytes(), 24);
        let q = PersistedRecord {
            txn: 0,
            addr: PmAddr::new(0),
            payload: PayloadBuf::from_slice(&[0; 32]),
        };
        assert_eq!(q.media_bytes(), 40);
        let l = PersistedRecord {
            txn: 0,
            addr: PmAddr::new(0),
            payload: PayloadBuf::from_slice(&[0; 64]),
        };
        assert_eq!(l.media_bytes(), 72);
    }

    #[test]
    fn append_and_query() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append(2, PmAddr::new(64), &[2; 8]);
        log.append(1, PmAddr::new(8), &[3; 8]);
        assert_eq!(log.len(), 3);
        assert_eq!(rec_addrs(log.records_of(1)), vec![0, 8]);
        assert_eq!(log.bytes_appended(), 48);
    }

    #[test]
    fn uncommitted_rev_order_and_filter() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append(1, PmAddr::new(8), &[2; 8]);
        log.append(2, PmAddr::new(64), &[3; 8]);
        log.mark_committed(2);
        assert_eq!(rec_addrs(log.uncommitted_rev()), vec![8, 0]);
    }

    #[test]
    fn truncation_keeps_uncommitted() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append(2, PmAddr::new(64), &[2; 8]);
        log.mark_committed(1);
        log.truncate_committed();
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].txn, 2);
        assert!(log.is_committed(1), "marker survives truncation");
    }

    #[test]
    fn drop_txn_removes_only_that_txn() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append(2, PmAddr::new(64), &[2; 8]);
        log.append(1, PmAddr::new(8), &[3; 8]);
        assert_eq!(log.drop_txn(1), 2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].txn, 2);
        assert_eq!(log.drop_txn(9), 0);
    }

    #[test]
    fn empty_region() {
        let log = LogRegion::new();
        assert!(log.is_empty());
        assert_eq!(log.uncommitted_rev().count(), 0);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_record_rejected() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(3), &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "whole number of words")]
    fn ragged_payload_rejected() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[0; 5]);
    }
}
