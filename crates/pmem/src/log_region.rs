//! Durable log-area layout.
//!
//! The transaction engine persists log records (after coalescing and
//! packing) into a dedicated region of persistent memory. This module
//! models the *content* of that region: the sequence of records that
//! actually reached the persistence domain, plus per-transaction commit
//! markers. Post-crash recovery walks this region — applying undo
//! records of unfinished transactions in reverse order (or redo records
//! of committed ones forward).
//!
//! Every record and marker carries a CRC32 + append-sequence checksum
//! conceptually packed into its 8-byte tag word, so recovery can
//! *validate* the region before trusting it: a persist torn by a
//! mid-write power failure or a bit flipped on the medium is classified
//! ([`RecordIntegrity`]) instead of being replayed verbatim. A commit
//! marker is two words (transaction sequence, checksum); a marker torn
//! at either word is unusable and the transaction counts as
//! uncommitted.
//!
//! Byte-level placement inside the region is not needed for recovery
//! correctness; traffic accounting for record bytes happens in
//! [`crate::stats::WriteTraffic`] where packing into 64-byte WPQ slots
//! is counted.

use crate::addr::PmAddr;
use crate::fault::crc32;
use crate::payload::PayloadBuf;
use std::collections::BTreeMap;

/// Validation class of one durable log record (or commit marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordIntegrity {
    /// Checksum matches and the persist completed: safe to replay.
    Intact,
    /// The persist tore mid-write (only a word prefix landed). Sound
    /// only at the log tail — persist ordering (Figure 4) puts the
    /// record before anything that depends on it, so a torn tail
    /// record simply never happened.
    Torn,
    /// The stored checksum disagrees with the content (media bit flip
    /// or a torn record found away from the tail): must not be
    /// replayed.
    Corrupt,
}

/// Durable state of one transaction's commit marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerState {
    /// Both marker words persisted and the checksum matches.
    Valid,
    /// The marker persist tore: only the first `word` 8-byte words
    /// landed. Recovery treats the transaction as uncommitted.
    Torn(u8),
}

/// One log record as persisted: the image of `payload.len()` bytes at
/// `addr` (the *old* value for undo logging, the *new* value for redo).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistedRecord {
    /// Global sequence number of the owning transaction.
    pub txn: u64,
    /// Word-aligned start address the record covers.
    pub addr: PmAddr,
    /// Logged bytes (8 for a word record up to 64 for a line record),
    /// stored inline — records are plain `Copy` data.
    pub payload: PayloadBuf,
    /// Append sequence number within the log region (packed into the
    /// record's 8-byte tag word alongside the checksum).
    pub seq: u64,
    /// CRC32 stored at append time, covering the tag fields and the
    /// payload as the writer intended them.
    pub crc: u32,
    /// `Some(w)` when the persist tore after `w` payload words; the
    /// missing tail reads as zeros.
    pub torn_words: Option<u8>,
}

/// Computes the checksum a record's tag word stores: CRC32 over the
/// append sequence, owning transaction, address and payload bytes.
pub fn record_crc(seq: u64, txn: u64, addr: PmAddr, payload: &[u8]) -> u32 {
    let mut bytes = Vec::with_capacity(24 + payload.len());
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&txn.to_le_bytes());
    bytes.extend_from_slice(&addr.raw().to_le_bytes());
    bytes.extend_from_slice(payload);
    crc32(&bytes)
}

/// Computes the checksum of a commit marker's second word: CRC32 over
/// the committed transaction sequence.
pub fn marker_crc(txn: u64) -> u32 {
    crc32(&txn.to_le_bytes())
}

impl PersistedRecord {
    /// On-media size of the record: payload plus an 8-byte tag word
    /// (address bits, append sequence and CRC32 packed together),
    /// matching the 16/24/40/72-byte record formats of Figure 6.
    pub fn media_bytes(&self) -> u64 {
        self.payload.len() as u64 + 8
    }

    /// The checksum the record's current content yields.
    pub fn computed_crc(&self) -> u32 {
        record_crc(self.seq, self.txn, self.addr, &self.payload)
    }

    /// Validation class of the record.
    pub fn integrity(&self) -> RecordIntegrity {
        if self.torn_words.is_some() {
            RecordIntegrity::Torn
        } else if self.crc == self.computed_crc() {
            RecordIntegrity::Intact
        } else {
            RecordIntegrity::Corrupt
        }
    }

    /// `true` when the record is safe to replay.
    pub fn is_intact(&self) -> bool {
        self.integrity() == RecordIntegrity::Intact
    }
}

/// What [`LogRegion::validate`] found (and fixed up) in the region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogValidation {
    /// Records whose persist tore mid-write (including the truncated
    /// tail).
    pub torn_records: usize,
    /// Torn records dropped from the log tail (the persist never
    /// logically happened; persist ordering makes this sound).
    pub torn_tail_truncated: usize,
    /// Records whose stored checksum disagrees with their content —
    /// bit flips, or torn records found away from the tail. Left in
    /// place but never replayed.
    pub corrupt_records: usize,
    /// Commit markers whose persist tore (their transactions count as
    /// uncommitted).
    pub torn_markers: usize,
}

/// The durable undo/redo log region.
///
/// Only records that really persisted (accepted by the WPQ) may be
/// appended, so the region's content *is* the crash-visible log.
///
/// ```
/// use slpmt_pmem::{LogRegion, PmAddr};
/// let mut log = LogRegion::new();
/// log.append(1, PmAddr::new(64), &[0u8; 8]);
/// assert_eq!(log.records_of(1).count(), 1);
/// assert!(!log.is_committed(1));
/// log.mark_committed(1);
/// assert!(log.is_committed(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogRegion {
    records: Vec<PersistedRecord>,
    /// Durable marker state per transaction. Only [`MarkerState::Valid`]
    /// entries count as committed; torn entries are recovery-visible
    /// evidence that a marker persist was interrupted.
    markers: BTreeMap<u64, MarkerState>,
    bytes_appended: u64,
    /// Next record append sequence number (monotonic, never reset by
    /// truncation — the sequence is part of each record's checksum).
    next_seq: u64,
    /// Highest transaction sequence whose *valid* marker has been
    /// retired by truncation — an audit watermark so commit history
    /// survives marker retirement (see
    /// [`max_committed_seq`](Self::max_committed_seq)).
    retired_committed: u64,
}

impl LogRegion {
    /// Creates an empty log region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a persisted record for transaction `txn`, stamping it
    /// with the next append sequence and its CRC32.
    ///
    /// # Panics
    ///
    /// Panics if the payload is empty or `addr` is not word-aligned —
    /// hardware only emits word-multiple records (Figure 6).
    pub fn append(&mut self, txn: u64, addr: PmAddr, payload: &[u8]) {
        self.append_inner(txn, addr, payload, None);
    }

    /// Appends a record whose persist *tore* after `words_landed`
    /// payload words: the tag word (with the intended checksum) is
    /// durable, the payload tail reads as zeros. Only the device's
    /// fault-injection path creates these.
    ///
    /// # Panics
    ///
    /// As [`append`](Self::append); additionally if `words_landed`
    /// does not leave at least one word missing.
    pub fn append_torn(&mut self, txn: u64, addr: PmAddr, payload: &[u8], words_landed: u8) {
        assert!(
            (words_landed as usize) < payload.len() / crate::addr::WORD_BYTES,
            "torn record must be missing at least one word"
        );
        self.append_inner(txn, addr, payload, Some(words_landed));
    }

    fn append_inner(&mut self, txn: u64, addr: PmAddr, payload: &[u8], torn: Option<u8>) {
        assert!(!payload.is_empty(), "empty log record");
        assert!(addr.is_word_aligned(), "log record must be word-aligned");
        assert!(
            payload.len().is_multiple_of(crate::addr::WORD_BYTES),
            "log payload must be a whole number of words"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        // The checksum covers the payload the writer *intended*: the
        // tag word lands first, so a torn record keeps the intended
        // CRC but loses payload words (zeros on the medium).
        let crc = record_crc(seq, txn, addr, payload);
        let mut payload = PayloadBuf::from_slice(payload);
        if let Some(w) = torn {
            let landed = w as usize * crate::addr::WORD_BYTES;
            payload[landed..].fill(0);
        }
        let rec = PersistedRecord {
            txn,
            addr,
            payload,
            seq,
            crc,
            torn_words: torn,
        };
        self.bytes_appended += rec.media_bytes();
        self.records.push(rec);
    }

    /// Marks transaction `txn` committed (its commit marker fully
    /// persisted).
    pub fn mark_committed(&mut self, txn: u64) {
        self.markers.insert(txn, MarkerState::Valid);
    }

    /// Records a commit marker whose persist tore after `word` 8-byte
    /// words (a marker is two words: sequence, checksum). The
    /// transaction stays uncommitted; recovery reports the torn
    /// marker.
    pub fn mark_committed_torn(&mut self, txn: u64, word: u8) {
        self.markers.entry(txn).or_insert(MarkerState::Torn(word));
    }

    /// Whether a *valid* commit marker for `txn` is durable. Torn
    /// markers do not count — recovery must treat their transactions
    /// as uncommitted.
    pub fn is_committed(&self, txn: u64) -> bool {
        matches!(self.markers.get(&txn), Some(MarkerState::Valid))
    }

    /// `true` unless `txn`'s marker is durably present but *torn* —
    /// the one state in which a marker-persist event in the trace must
    /// not be trusted.
    pub fn marker_usable(&self, txn: u64) -> bool {
        !matches!(self.markers.get(&txn), Some(MarkerState::Torn(_)))
    }

    /// Durable marker state of `txn`, if any marker persist reached
    /// the region.
    pub fn marker_state(&self, txn: u64) -> Option<MarkerState> {
        self.markers.get(&txn).copied()
    }

    /// All records, in persist order.
    pub fn records(&self) -> &[PersistedRecord] {
        &self.records
    }

    /// Records belonging to transaction `txn`, in persist order.
    pub fn records_of(&self, txn: u64) -> impl Iterator<Item = &PersistedRecord> {
        self.records.iter().filter(move |r| r.txn == txn)
    }

    /// Records of transactions that have **no** *valid* durable commit
    /// marker, in *reverse* persist order — the order undo recovery
    /// applies them.
    pub fn uncommitted_rev(&self) -> impl Iterator<Item = &PersistedRecord> {
        self.records
            .iter()
            .rev()
            .filter(move |r| !self.is_committed(r.txn))
    }

    /// Total bytes appended (records incl. metadata), an audit value.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Drops records of committed transactions (log truncation after a
    /// successful commit) and retires their commit markers: a
    /// truncated transaction's log epoch is over, so its marker must
    /// not leak into a later `reset`/recovery cycle. The commit fact
    /// survives in the [`max_committed_seq`](Self::max_committed_seq)
    /// watermark.
    pub fn truncate_committed(&mut self) {
        let committed: Vec<u64> = self.committed_txns().collect();
        if committed.is_empty() {
            return;
        }
        self.records.retain(|r| !committed.contains(&r.txn));
        for txn in committed {
            self.markers.remove(&txn);
            self.retired_committed = self.retired_committed.max(txn);
        }
    }

    /// Removes every record of transaction `txn` (an abort persisted
    /// its revocations, so the records must never be replayed by a
    /// later recovery) along with any marker bookkeeping for it.
    /// Returns how many records were dropped.
    pub fn drop_txn(&mut self, txn: u64) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.txn != txn);
        if let Some(MarkerState::Valid) = self.markers.remove(&txn) {
            // Defensive: dropping a committed txn's records still must
            // not erase the commit fact from the audit watermark.
            self.retired_committed = self.retired_committed.max(txn);
        }
        before - self.records.len()
    }

    /// Transactions with *valid* durable commit markers, in sequence
    /// order.
    pub fn committed_txns(&self) -> impl Iterator<Item = u64> + '_ {
        self.markers
            .iter()
            .filter(|(_, s)| matches!(s, MarkerState::Valid))
            .map(|(&t, _)| t)
    }

    /// Transactions whose commit marker is durably present but torn.
    pub fn torn_marker_txns(&self) -> impl Iterator<Item = u64> + '_ {
        self.markers
            .iter()
            .filter(|(_, s)| matches!(s, MarkerState::Torn(_)))
            .map(|(&t, _)| t)
    }

    /// Highest transaction sequence ever durably committed in this
    /// region — live valid markers *or* markers already retired by
    /// truncation. Single-core commit markers persist in sequence
    /// order, so this is the committed-prefix bound the crash-sweep
    /// oracle uses. Returns 0 when nothing ever committed.
    pub fn max_committed_seq(&self) -> u64 {
        self.committed_txns()
            .max()
            .unwrap_or(0)
            .max(self.retired_committed)
    }

    /// Validates the region before replay: drops torn records from the
    /// uncommitted log tail (their persist never logically completed),
    /// classifies everything else, and counts torn markers. Idempotent.
    pub fn validate(&mut self) -> LogValidation {
        let mut v = LogValidation::default();
        // A torn record is sound to discard only as the newest suffix
        // of the region: persist ordering guarantees nothing durable
        // depends on a record that tore at the crash boundary.
        while let Some(last) = self.records.last() {
            if last.torn_words.is_some() && !self.is_committed(last.txn) {
                self.records.pop();
                v.torn_records += 1;
                v.torn_tail_truncated += 1;
            } else {
                break;
            }
        }
        for rec in &self.records {
            match rec.integrity() {
                RecordIntegrity::Intact => {}
                // A torn record away from the tail (or of a committed
                // txn) should be impossible; treat it as corrupt so it
                // is never replayed.
                RecordIntegrity::Torn => {
                    v.torn_records += 1;
                    v.corrupt_records += 1;
                }
                RecordIntegrity::Corrupt => v.corrupt_records += 1,
            }
        }
        v.torn_markers = self.torn_marker_txns().count();
        v
    }

    /// Flips bit `bit` of record `index`'s payload, leaving the stored
    /// checksum untouched — the fault-injection hook for media bit
    /// flips. Returns the line addresses the record covers, or `None`
    /// if the index is out of range.
    pub fn corrupt_record_bit(&mut self, index: usize, bit: usize) -> Option<Vec<u64>> {
        let rec = self.records.get_mut(index)?;
        let bit = bit % (rec.payload.len() * 8);
        rec.payload[bit / 8] ^= 1 << (bit % 8);
        let first = rec.addr.line().raw();
        let last = PmAddr::new(rec.addr.raw() + rec.payload.len() as u64 - 1)
            .line()
            .raw();
        Some((first..=last).step_by(crate::addr::LINE_BYTES).collect())
    }

    /// Empties the region entirely — records *and* markers. Used when
    /// recovery finishes and a new log epoch begins.
    pub fn reset(&mut self) {
        self.records.clear();
        self.markers.clear();
    }

    /// Number of live records in the region.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are live.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec_addrs<'a>(it: impl Iterator<Item = &'a PersistedRecord>) -> Vec<u64> {
        it.map(|r| r.addr.raw()).collect()
    }

    fn rec(payload_len: usize) -> PersistedRecord {
        PersistedRecord {
            txn: 0,
            addr: PmAddr::new(0),
            payload: PayloadBuf::from_slice(&vec![0u8; payload_len]),
            seq: 0,
            crc: record_crc(0, 0, PmAddr::new(0), &vec![0u8; payload_len]),
            torn_words: None,
        }
    }

    #[test]
    fn media_bytes_match_figure6() {
        // word / double / quad / line records: Figure 6 gives 16, 24,
        // 40, 72 = payload + one 8-byte tag word. The tag packs the
        // address bits, append sequence and CRC32 — checksums add no
        // media bytes.
        assert_eq!(rec(8).media_bytes(), 16);
        assert_eq!(rec(16).media_bytes(), 24);
        assert_eq!(rec(32).media_bytes(), 40);
        assert_eq!(rec(64).media_bytes(), 72);
    }

    #[test]
    fn append_and_query() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append(2, PmAddr::new(64), &[2; 8]);
        log.append(1, PmAddr::new(8), &[3; 8]);
        assert_eq!(log.len(), 3);
        assert_eq!(rec_addrs(log.records_of(1)), vec![0, 8]);
        assert_eq!(log.bytes_appended(), 48);
    }

    #[test]
    fn appended_records_are_intact_and_sequenced() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append(1, PmAddr::new(8), &[2; 16]);
        let recs = log.records();
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
        assert!(recs.iter().all(|r| r.is_intact()));
    }

    #[test]
    fn uncommitted_rev_order_and_filter() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append(1, PmAddr::new(8), &[2; 8]);
        log.append(2, PmAddr::new(64), &[3; 8]);
        log.mark_committed(2);
        assert_eq!(rec_addrs(log.uncommitted_rev()), vec![8, 0]);
    }

    #[test]
    fn torn_marker_is_not_committed() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.mark_committed_torn(1, 0);
        assert!(!log.is_committed(1));
        assert!(!log.marker_usable(1));
        assert_eq!(log.marker_state(1), Some(MarkerState::Torn(0)));
        assert_eq!(log.uncommitted_rev().count(), 1, "txn rolls back");
        assert_eq!(log.torn_marker_txns().collect::<Vec<_>>(), vec![1]);
        assert_eq!(log.max_committed_seq(), 0);
    }

    #[test]
    fn truncation_retires_markers_and_keeps_watermark() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append(2, PmAddr::new(64), &[2; 8]);
        log.mark_committed(1);
        log.truncate_committed();
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].txn, 2);
        // Satellite regression: the marker must *not* leak across the
        // truncation — a later reset/recovery epoch would otherwise
        // inherit stale commit state.
        assert!(!log.is_committed(1), "marker retired with its records");
        assert_eq!(log.committed_txns().count(), 0);
        // ...but the commit fact survives as the audit watermark.
        assert_eq!(log.max_committed_seq(), 1);
        log.mark_committed(3);
        log.truncate_committed();
        assert_eq!(log.max_committed_seq(), 3);
        log.reset();
        assert_eq!(log.max_committed_seq(), 3, "watermark survives reset");
        assert_eq!(log.committed_txns().count(), 0);
    }

    #[test]
    fn drop_txn_removes_only_that_txn() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append(2, PmAddr::new(64), &[2; 8]);
        log.append(1, PmAddr::new(8), &[3; 8]);
        assert_eq!(log.drop_txn(1), 2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].txn, 2);
        assert_eq!(log.drop_txn(9), 0);
    }

    #[test]
    fn drop_txn_retires_marker_state() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.mark_committed_torn(1, 1);
        log.drop_txn(1);
        assert_eq!(log.marker_state(1), None, "torn marker retired");
        assert_eq!(log.max_committed_seq(), 0, "torn marker never commits");
        log.append(2, PmAddr::new(0), &[1; 8]);
        log.mark_committed(2);
        log.drop_txn(2);
        assert_eq!(log.marker_state(2), None);
        assert_eq!(
            log.max_committed_seq(),
            2,
            "valid marker folds into watermark"
        );
    }

    #[test]
    fn validate_truncates_torn_tail_only() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[1; 8]);
        log.append_torn(1, PmAddr::new(64), &[2; 16], 1);
        let v = log.validate();
        assert_eq!(v.torn_records, 1);
        assert_eq!(v.torn_tail_truncated, 1);
        assert_eq!(v.corrupt_records, 0);
        assert_eq!(log.len(), 1, "intact head survives");
        // Idempotent: a second pass finds nothing.
        assert_eq!(log.validate(), LogValidation::default());
    }

    #[test]
    fn validate_counts_flipped_record_as_corrupt() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[5; 8]);
        log.append(1, PmAddr::new(64), &[6; 8]);
        let lines = log.corrupt_record_bit(0, 3).unwrap();
        assert_eq!(lines, vec![0]);
        let v = log.validate();
        assert_eq!(v.corrupt_records, 1);
        assert_eq!(v.torn_records, 0);
        assert_eq!(log.len(), 2, "corrupt mid-log record is kept, skipped");
        assert!(!log.records()[0].is_intact());
        assert!(log.records()[1].is_intact());
    }

    #[test]
    fn torn_payload_tail_reads_zero() {
        let mut log = LogRegion::new();
        log.append_torn(1, PmAddr::new(0), &[0xAA; 24], 1);
        let r = &log.records()[0];
        assert_eq!(r.integrity(), RecordIntegrity::Torn);
        assert_eq!(&r.payload[..8], &[0xAA; 8]);
        assert_eq!(&r.payload[8..24], &[0u8; 16]);
    }

    #[test]
    fn empty_region() {
        let log = LogRegion::new();
        assert!(log.is_empty());
        assert_eq!(log.uncommitted_rev().count(), 0);
        assert_eq!(log.max_committed_seq(), 0);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_record_rejected() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(3), &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "whole number of words")]
    fn ragged_payload_rejected() {
        let mut log = LogRegion::new();
        log.append(1, PmAddr::new(0), &[0; 5]);
    }

    #[test]
    #[should_panic(expected = "missing at least one word")]
    fn fully_landed_torn_record_rejected() {
        let mut log = LogRegion::new();
        log.append_torn(1, PmAddr::new(0), &[0; 8], 1);
    }
}
