//! Persistent-memory addresses and geometry constants.
//!
//! The whole simulator shares one geometry, matching the paper's
//! assumptions (§III-B): 64-byte cache lines divided into eight 8-byte
//! words. [`PmAddr`] is a newtype over `u64` so that raw integers,
//! word indices and byte offsets cannot be confused.

use std::fmt;

/// Bytes per cache line (fixed at 64, as in the paper).
pub const LINE_BYTES: usize = 64;
/// Bytes per word — the granularity of fine-grain logging (§III-B).
pub const WORD_BYTES: usize = 8;
/// Words per cache line (`64 / 8 = 8`); one L1 log bit covers one word.
pub const WORDS_PER_LINE: usize = LINE_BYTES / WORD_BYTES;
/// Words per L2 log-bit group: L2 keeps one log bit per 32-byte half
/// (§III-B1), i.e. each L2 bit covers four words.
pub const WORDS_PER_L2_GROUP: usize = 4;
/// Number of L2 log bits per line (`8 / 4 = 2`).
pub const L2_GROUPS_PER_LINE: usize = WORDS_PER_LINE / WORDS_PER_L2_GROUP;

/// A byte address within the simulated persistent-memory space.
///
/// `PmAddr` is `Copy` and ordered, so it can be used directly as a map
/// key or sorted for deterministic iteration.
///
/// ```
/// use slpmt_pmem::addr::PmAddr;
/// let a = PmAddr::new(0x1238);
/// assert_eq!(a.line().raw(), 0x1200);
/// assert_eq!(a.word_in_line(), 7);
/// assert_eq!(a.offset_in_line(), 0x38);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PmAddr(u64);

impl PmAddr {
    /// Wraps a raw byte address.
    pub const fn new(raw: u64) -> Self {
        PmAddr(raw)
    }

    /// The raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The address of the cache line containing this byte.
    pub const fn line(self) -> PmAddr {
        PmAddr(self.0 & !(LINE_BYTES as u64 - 1))
    }

    /// `true` if this address is cache-line aligned.
    pub const fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(LINE_BYTES as u64)
    }

    /// `true` if this address is word (8-byte) aligned.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES as u64)
    }

    /// The address rounded down to its containing word.
    pub const fn word(self) -> PmAddr {
        PmAddr(self.0 & !(WORD_BYTES as u64 - 1))
    }

    /// Index (0..8) of the word containing this byte within its line.
    pub const fn word_in_line(self) -> usize {
        ((self.0 as usize) % LINE_BYTES) / WORD_BYTES
    }

    /// Index (0..2) of the 32-byte L2 log-bit group within its line.
    pub const fn l2_group_in_line(self) -> usize {
        self.word_in_line() / WORDS_PER_L2_GROUP
    }

    /// Byte offset (0..64) within the containing line.
    pub const fn offset_in_line(self) -> usize {
        (self.0 as usize) % LINE_BYTES
    }

    /// Address advanced by `bytes`.
    #[must_use]
    pub const fn add(self, bytes: u64) -> PmAddr {
        PmAddr(self.0 + bytes)
    }

    /// Checked difference in bytes (`self - other`).
    ///
    /// Returns `None` when `other > self`.
    pub fn byte_offset_from(self, other: PmAddr) -> Option<u64> {
        self.0.checked_sub(other.0)
    }
}

impl From<u64> for PmAddr {
    fn from(raw: u64) -> Self {
        PmAddr(raw)
    }
}

impl From<PmAddr> for u64 {
    fn from(addr: PmAddr) -> Self {
        addr.0
    }
}

impl fmt::Debug for PmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PmAddr({:#x})", self.0)
    }
}

impl fmt::Display for PmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for PmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(LINE_BYTES, WORDS_PER_LINE * WORD_BYTES);
        assert_eq!(WORDS_PER_LINE, WORDS_PER_L2_GROUP * L2_GROUPS_PER_LINE);
    }

    #[test]
    fn line_rounding() {
        assert_eq!(PmAddr::new(0).line(), PmAddr::new(0));
        assert_eq!(PmAddr::new(63).line(), PmAddr::new(0));
        assert_eq!(PmAddr::new(64).line(), PmAddr::new(64));
        assert_eq!(PmAddr::new(0x12345).line(), PmAddr::new(0x12340));
    }

    #[test]
    fn word_indices() {
        assert_eq!(PmAddr::new(0).word_in_line(), 0);
        assert_eq!(PmAddr::new(8).word_in_line(), 1);
        assert_eq!(PmAddr::new(56).word_in_line(), 7);
        assert_eq!(PmAddr::new(63).word_in_line(), 7);
        // The next line starts over.
        assert_eq!(PmAddr::new(64).word_in_line(), 0);
    }

    #[test]
    fn l2_groups() {
        assert_eq!(PmAddr::new(0).l2_group_in_line(), 0);
        assert_eq!(PmAddr::new(24).l2_group_in_line(), 0);
        assert_eq!(PmAddr::new(32).l2_group_in_line(), 1);
        assert_eq!(PmAddr::new(63).l2_group_in_line(), 1);
    }

    #[test]
    fn alignment_predicates() {
        assert!(PmAddr::new(0).is_line_aligned());
        assert!(!PmAddr::new(8).is_line_aligned());
        assert!(PmAddr::new(8).is_word_aligned());
        assert!(!PmAddr::new(9).is_word_aligned());
    }

    #[test]
    fn arithmetic() {
        let a = PmAddr::new(100);
        assert_eq!(a.add(28).raw(), 128);
        assert_eq!(a.add(28).byte_offset_from(a), Some(28));
        assert_eq!(a.byte_offset_from(a.add(1)), None);
    }

    #[test]
    fn conversions_and_formatting() {
        let a: PmAddr = 0xff_u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0xff);
        assert_eq!(format!("{a}"), "0xff");
        assert_eq!(format!("{a:?}"), "PmAddr(0xff)");
        assert_eq!(format!("{a:x}"), "ff");
        assert_eq!(format!("{a:X}"), "FF");
    }
}
