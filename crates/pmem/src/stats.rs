//! Write-traffic accounting.
//!
//! The paper's headline memory metric (Figures 8 right, 9 right, 11) is
//! *persistent-memory write traffic*, split into data-line bytes and
//! log bytes. [`WriteTraffic`] accumulates both along with event counts
//! useful for the ablation benches.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Byte and event counters for traffic into the persistence domain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteTraffic {
    /// Bytes of *data* cache lines persisted.
    pub data_bytes: u64,
    /// Bytes of *log* records persisted (including record metadata).
    pub log_bytes: u64,
    /// Number of data cache lines persisted.
    pub data_lines: u64,
    /// Number of log records persisted.
    pub log_records: u64,
    /// Number of 64-byte WPQ slots consumed (lines occupied, after
    /// packing log records into lines).
    pub wpq_lines: u64,
}

impl WriteTraffic {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total payload bytes written into the persistence domain.
    pub fn total_bytes(&self) -> u64 {
        self.data_bytes + self.log_bytes
    }

    /// Bytes actually written to the PM medium: the WPQ drains whole
    /// 64-byte lines, so a sparse log record still costs a full line.
    /// This is the "write traffic" metric of Figures 8, 9 and 11 —
    /// it is what makes unpacked (EDE) or line-granularity (ATOM)
    /// logging *more* expensive than the paper's packed word records.
    pub fn media_bytes(&self) -> u64 {
        self.wpq_lines * crate::addr::LINE_BYTES as u64
    }

    /// Records the persist of one full data line.
    pub fn count_data_line(&mut self) {
        self.data_bytes += crate::addr::LINE_BYTES as u64;
        self.data_lines += 1;
        self.wpq_lines += 1;
    }

    /// Records the persist of `records` log records totalling `bytes`
    /// of payload+metadata, packed into `lines` WPQ slots.
    pub fn count_log_flush(&mut self, records: u64, bytes: u64, lines: u64) {
        self.log_records += records;
        self.log_bytes += bytes;
        self.wpq_lines += lines;
    }

    /// Fractional reduction of this traffic's *media* bytes relative
    /// to a `baseline` (`1 - self/baseline`), the quantity plotted in
    /// Figures 8 and 11. Negative when this scheme writes more.
    ///
    /// Returns 0 when the baseline is zero.
    pub fn reduction_vs(&self, baseline: &WriteTraffic) -> f64 {
        let base = baseline.media_bytes();
        if base == 0 {
            return 0.0;
        }
        1.0 - self.media_bytes() as f64 / base as f64
    }
}

impl Add for WriteTraffic {
    type Output = WriteTraffic;
    fn add(mut self, rhs: WriteTraffic) -> WriteTraffic {
        self += rhs;
        self
    }
}

impl AddAssign for WriteTraffic {
    fn add_assign(&mut self, rhs: WriteTraffic) {
        self.data_bytes += rhs.data_bytes;
        self.log_bytes += rhs.log_bytes;
        self.data_lines += rhs.data_lines;
        self.log_records += rhs.log_records;
        self.wpq_lines += rhs.wpq_lines;
    }
}

impl fmt::Display for WriteTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data {} B ({} lines), log {} B ({} records), {} WPQ lines",
            self.data_bytes, self.data_lines, self.log_bytes, self.log_records, self.wpq_lines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_line_accounting() {
        let mut t = WriteTraffic::new();
        t.count_data_line();
        t.count_data_line();
        assert_eq!(t.data_bytes, 128);
        assert_eq!(t.data_lines, 2);
        assert_eq!(t.wpq_lines, 2);
        assert_eq!(t.total_bytes(), 128);
    }

    #[test]
    fn log_flush_accounting() {
        let mut t = WriteTraffic::new();
        t.count_log_flush(8, 128, 2);
        assert_eq!(t.log_records, 8);
        assert_eq!(t.log_bytes, 128);
        assert_eq!(t.wpq_lines, 2);
    }

    #[test]
    fn reduction_math() {
        let mut base = WriteTraffic::new();
        base.count_data_line(); // 64 B
        base.count_data_line(); // 128 B
        let mut mine = WriteTraffic::new();
        mine.count_data_line(); // 64 B
        let red = mine.reduction_vs(&base);
        assert!((red - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reduction_zero_baseline() {
        let t = WriteTraffic::new();
        assert_eq!(t.reduction_vs(&WriteTraffic::new()), 0.0);
    }

    #[test]
    fn add_combines_all_fields() {
        let mut a = WriteTraffic::new();
        a.count_data_line();
        let mut b = WriteTraffic::new();
        b.count_log_flush(3, 48, 1);
        let c = a + b;
        assert_eq!(c.data_lines, 1);
        assert_eq!(c.log_records, 3);
        assert_eq!(c.total_bytes(), 64 + 48);
    }

    #[test]
    fn display_is_nonempty() {
        let t = WriteTraffic::new();
        assert!(!format!("{t}").is_empty());
    }
}
