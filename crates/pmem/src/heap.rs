//! Persistent-heap allocator.
//!
//! Durable data structures allocate their nodes from a [`PmHeap`]
//! managing a range of the persistent address space. Matching the
//! paper's recovery story (§IV-B, Pattern 1), the allocator metadata
//! itself is *volatile*: after a crash the heap is reconstructed by a
//! mark phase that walks the recovered structure and a
//! [`rebuild`](PmHeap::rebuild) call — anything not reachable (nodes
//! allocated by an interrupted transaction whose linking store was
//! rolled back) is thereby garbage-collected, exactly the "persistent
//! inspector / GC reclaims the leaked variable x" behaviour.
//!
//! Allocation policy is first-fit over an address-ordered free list
//! with coalescing on free, which keeps placement deterministic — a
//! property the simulator's reproducible traces rely on.

use crate::addr::{PmAddr, WORD_BYTES};
use std::collections::BTreeMap;

/// First-fit allocator over a persistent address range.
///
/// ```
/// use slpmt_pmem::{PmHeap, PmAddr};
/// let mut heap = PmHeap::new(PmAddr::new(4096), 4096);
/// let a = heap.alloc(24).unwrap();
/// let b = heap.alloc(100).unwrap();
/// assert_ne!(a, b);
/// heap.free(a);
/// // First-fit reuses the earliest hole that fits.
/// assert_eq!(heap.alloc(24).unwrap(), a);
/// ```
#[derive(Debug, Clone)]
pub struct PmHeap {
    base: PmAddr,
    len: u64,
    /// Free extents keyed by start address → length (coalesced, disjoint).
    free: BTreeMap<u64, u64>,
    /// Live allocations keyed by start address → length.
    live: BTreeMap<u64, u64>,
}

fn align_up(n: u64) -> u64 {
    let a = WORD_BYTES as u64;
    n.div_ceil(a) * a
}

impl PmHeap {
    /// Creates a heap managing `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned or `len` is zero.
    pub fn new(base: PmAddr, len: u64) -> Self {
        assert!(base.is_word_aligned(), "heap base must be word-aligned");
        assert!(len > 0, "heap must be non-empty");
        let mut free = BTreeMap::new();
        free.insert(base.raw(), len);
        PmHeap {
            base,
            len,
            free,
            live: BTreeMap::new(),
        }
    }

    /// Base address of the managed range.
    pub fn base(&self) -> PmAddr {
        self.base
    }

    /// Length in bytes of the managed range.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no allocation is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().sum()
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocates `size` bytes (rounded up to whole words), first-fit.
    ///
    /// Returns `None` when no hole fits.
    pub fn alloc(&mut self, size: u64) -> Option<PmAddr> {
        let size = align_up(size.max(1));
        let (&start, &hole) = self.free.iter().find(|(_, &l)| l >= size)?;
        self.free.remove(&start);
        if hole > size {
            self.free.insert(start + size, hole - size);
        }
        self.live.insert(start, size);
        Some(PmAddr::new(start))
    }

    /// Frees the allocation starting at `addr`, coalescing neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not the start of a live allocation (double
    /// free or wild pointer).
    pub fn free(&mut self, addr: PmAddr) {
        let size = self
            .live
            .remove(&addr.raw())
            .unwrap_or_else(|| panic!("free of non-live allocation at {addr}"));
        self.insert_free(addr.raw(), size);
    }

    fn insert_free(&mut self, mut start: u64, mut size: u64) {
        // Coalesce with predecessor.
        if let Some((&p_start, &p_len)) = self.free.range(..start).next_back() {
            if p_start + p_len == start {
                self.free.remove(&p_start);
                start = p_start;
                size += p_len;
            }
        }
        // Coalesce with successor.
        if let Some(&s_len) = self.free.get(&(start + size)) {
            self.free.remove(&(start + size));
            size += s_len;
        }
        self.free.insert(start, size);
    }

    /// Size of the live allocation starting at `addr`, if any.
    pub fn allocation_size(&self, addr: PmAddr) -> Option<u64> {
        self.live.get(&addr.raw()).copied()
    }

    /// `true` if `addr` is the start of a live allocation.
    pub fn is_live(&self, addr: PmAddr) -> bool {
        self.live.contains_key(&addr.raw())
    }

    /// Iterates live allocations as `(start, size)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (PmAddr, u64)> + '_ {
        self.live.iter().map(|(&a, &s)| (PmAddr::new(a), s))
    }

    /// Post-crash garbage collection: rebuilds the heap so that exactly
    /// the allocations rooted in `reachable` survive. Returns the number
    /// of *leaked* allocations reclaimed (allocations that were live at
    /// crash time but are no longer reachable — e.g. nodes created by an
    /// interrupted transaction).
    ///
    /// Addresses in `reachable` that were not live are ignored: the
    /// caller may conservatively pass every pointer it finds.
    pub fn rebuild(&mut self, reachable: &[PmAddr]) -> usize {
        let keep: std::collections::BTreeSet<u64> = reachable
            .iter()
            .map(|a| a.raw())
            .filter(|a| self.live.contains_key(a))
            .collect();
        let doomed: Vec<u64> = self
            .live
            .keys()
            .copied()
            .filter(|a| !keep.contains(a))
            .collect();
        for a in &doomed {
            let size = self.live.remove(a).expect("doomed allocation is live");
            self.insert_free(*a, size);
        }
        doomed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> PmHeap {
        PmHeap::new(PmAddr::new(0x1000), 0x1000)
    }

    #[test]
    fn alloc_is_word_aligned_and_disjoint() {
        let mut h = heap();
        let a = h.alloc(10).unwrap();
        let b = h.alloc(10).unwrap();
        assert!(a.is_word_aligned());
        assert!(b.is_word_aligned());
        assert!(b.raw() >= a.raw() + 16, "10 rounds up to 16");
        assert_eq!(h.live_count(), 2);
    }

    #[test]
    fn free_then_realloc_first_fit() {
        let mut h = heap();
        let a = h.alloc(64).unwrap();
        let _b = h.alloc(64).unwrap();
        h.free(a);
        let c = h.alloc(32).unwrap();
        assert_eq!(c, a, "first fit reuses the earliest hole");
    }

    #[test]
    fn coalescing_restores_full_extent() {
        let mut h = heap();
        let a = h.alloc(100).unwrap();
        let b = h.alloc(100).unwrap();
        let c = h.alloc(100).unwrap();
        h.free(b);
        h.free(a);
        h.free(c);
        // Everything coalesced back into one extent covering the heap.
        let big = h.alloc(0x1000).unwrap();
        assert_eq!(big, PmAddr::new(0x1000));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut h = PmHeap::new(PmAddr::new(0), 64);
        assert!(h.alloc(64).is_some());
        assert!(h.alloc(8).is_none());
    }

    #[test]
    #[should_panic(expected = "non-live")]
    fn double_free_panics() {
        let mut h = heap();
        let a = h.alloc(8).unwrap();
        h.free(a);
        h.free(a);
    }

    #[test]
    fn rebuild_reclaims_leaks() {
        let mut h = heap();
        let keep1 = h.alloc(32).unwrap();
        let leak = h.alloc(32).unwrap();
        let keep2 = h.alloc(32).unwrap();
        let reclaimed = h.rebuild(&[keep1, keep2, PmAddr::new(0xdead000)]);
        assert_eq!(reclaimed, 1);
        assert!(h.is_live(keep1));
        assert!(!h.is_live(leak));
        assert!(h.is_live(keep2));
        // The hole is reusable.
        assert_eq!(h.alloc(32).unwrap(), leak);
    }

    #[test]
    fn coalescing_at_range_boundaries() {
        // Exactly fill the heap with three allocations so the first
        // and last touch the range boundaries, then free in an order
        // that exercises predecessor-only, successor-only and both-
        // sided coalescing against the boundary extents.
        let mut h = PmHeap::new(PmAddr::new(0x2000), 0x300);
        let lo = h.alloc(0x100).unwrap();
        let mid = h.alloc(0x100).unwrap();
        let hi = h.alloc(0x100).unwrap();
        assert_eq!(lo.raw(), 0x2000, "first allocation starts at base");
        assert_eq!(hi.raw() + 0x100, 0x2300, "last allocation ends at top");
        assert!(h.alloc(8).is_none(), "heap is exactly full");
        // Free the boundary blocks: two disjoint extents, nothing to
        // coalesce with beyond the range (no wraparound, no panic).
        h.free(lo);
        h.free(hi);
        assert!(h.alloc(0x101).is_none(), "holes must not merge across mid");
        // Freeing the middle merges all three into the original range.
        h.free(mid);
        assert_eq!(h.alloc(0x300).unwrap(), PmAddr::new(0x2000));
    }

    #[test]
    fn rebuild_with_empty_mark_set_reclaims_everything() {
        let mut h = heap();
        let a = h.alloc(40).unwrap();
        let b = h.alloc(40).unwrap();
        let reclaimed = h.rebuild(&[]);
        assert_eq!(reclaimed, 2);
        assert!(!h.is_live(a) && !h.is_live(b));
        assert!(h.is_empty());
        assert_eq!(h.live_bytes(), 0);
        // The reclaimed extents coalesced back into the whole range.
        assert_eq!(h.alloc(0x1000).unwrap(), h.base());
    }

    #[test]
    fn rebuild_with_empty_mark_set_on_empty_heap_is_noop() {
        let mut h = heap();
        assert_eq!(h.rebuild(&[]), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn exhaustion_returns_none_without_disturbing_state() {
        // A fragmented heap with enough total free bytes but no single
        // hole large enough must return None — not panic — and leave
        // both holes intact for later fitting requests.
        let mut h = PmHeap::new(PmAddr::new(0x1000), 0x100);
        let a = h.alloc(0x40).unwrap();
        let b = h.alloc(0x40).unwrap();
        let c = h.alloc(0x40).unwrap();
        let _d = h.alloc(0x40).unwrap();
        h.free(a);
        h.free(c);
        // 0x80 bytes free in two 0x40 holes: a 0x80 request has no fit.
        assert!(h.alloc(0x80).is_none());
        assert_eq!(h.live_bytes(), 0x80);
        assert_eq!(h.alloc(0x40).unwrap(), a, "first hole still usable");
        assert_eq!(h.alloc(0x40).unwrap(), c, "second hole still usable");
        assert!(h.alloc(1).is_none(), "now genuinely exhausted");
        assert_eq!(h.live_count(), 4);
        let _ = b;
    }

    #[test]
    fn accounting() {
        let mut h = heap();
        let a = h.alloc(24).unwrap();
        assert_eq!(h.allocation_size(a), Some(24));
        assert_eq!(h.live_bytes(), 24);
        h.free(a);
        assert!(h.is_empty());
        assert_eq!(h.live_bytes(), 0);
    }
}
