//! Write pending queue (WPQ) timing model.
//!
//! Intel ADR guarantees that data reaching the memory controller's WPQ
//! is flushed to the medium on power failure, so *persistence* in this
//! simulator means *acceptance by the WPQ* (paper §VI-B, \[49\]). The
//! queue has eight 64-byte entries (512 bytes) and drains serially at
//! the PM write latency. When all entries are occupied, the next push
//! stalls the requester until the oldest entry finishes draining —
//! this backpressure is the mechanism by which write-traffic reduction
//! becomes speedup.

use std::collections::VecDeque;

/// Result of pushing one line into the WPQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WpqPush {
    /// Cycle at which the requester is released (push accepted).
    pub accepted_at: u64,
    /// Cycles the requester stalled waiting for a free entry.
    pub stall_cycles: u64,
    /// Cycle at which the line will have fully drained to the medium.
    pub drained_at: u64,
}

/// A write pending queue with bounded occupancy draining through a
/// small number of parallel banks (PM devices expose bank-level
/// parallelism; each bank sustains one line per `write_cycles`).
///
/// ```
/// use slpmt_pmem::WritePendingQueue;
/// let mut wpq = WritePendingQueue::new(8, 1000, 8);
/// let first = wpq.push(0);
/// assert_eq!(first.stall_cycles, 0);
/// assert_eq!(first.accepted_at, 8); // accept latency only
/// ```
#[derive(Debug, Clone)]
pub struct WritePendingQueue {
    entries: usize,
    write_cycles: u64,
    accept_cycles: u64,
    /// Drain-completion times of in-flight entries, oldest first.
    inflight: VecDeque<u64>,
    /// Per-bank time at which the bank finishes its current line.
    bank_free: Vec<u64>,
    /// Total cycles requesters have stalled on a full queue.
    total_stall: u64,
    /// Total lines pushed.
    pushes: u64,
    /// Drain-jitter window in cycles (0 = deterministic drains). ADR
    /// makes drain *order* invisible to crash states, so jitter only
    /// perturbs completion timing within the window — the allowed
    /// reordering of a real memory controller.
    jitter_window: u64,
    /// Seed for the per-push jitter derivation.
    jitter_seed: u64,
}

/// Default number of parallel drain banks.
pub const DEFAULT_DRAIN_BANKS: usize = 2;

impl WritePendingQueue {
    /// Creates a queue with `entries` 64-byte slots, a per-line drain
    /// latency of `write_cycles`, an acceptance latency of
    /// `accept_cycles`, and [`DEFAULT_DRAIN_BANKS`] drain banks.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize, write_cycles: u64, accept_cycles: u64) -> Self {
        Self::with_banks(entries, write_cycles, accept_cycles, DEFAULT_DRAIN_BANKS)
    }

    /// Creates a queue with an explicit number of drain banks.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `banks` is zero.
    pub fn with_banks(entries: usize, write_cycles: u64, accept_cycles: u64, banks: usize) -> Self {
        assert!(entries > 0, "WPQ must have at least one entry");
        assert!(banks > 0, "WPQ needs at least one drain bank");
        WritePendingQueue {
            entries,
            write_cycles,
            accept_cycles,
            inflight: VecDeque::new(),
            bank_free: vec![0; banks],
            total_stall: 0,
            pushes: 0,
            jitter_window: 0,
            jitter_seed: 0,
        }
    }

    /// Updates the drain latency (Figure 12 sweeps PM write latency).
    pub fn set_write_cycles(&mut self, write_cycles: u64) {
        self.write_cycles = write_cycles;
    }

    /// Enables deterministic drain-completion jitter within `window`
    /// cycles (0 disables it and restores bit-identical behaviour).
    /// Jitter can reorder drain completions across banks, but never
    /// affects durability: acceptance by the queue is what persists.
    pub fn set_drain_jitter(&mut self, window: u64, seed: u64) {
        self.jitter_window = window;
        self.jitter_seed = seed;
    }

    /// Pushes one 64-byte line at simulated time `now`, returning when
    /// the requester proceeds and when the line drains.
    pub fn push(&mut self, now: u64) -> WpqPush {
        // Retire entries that finished draining by `now`.
        while let Some(&done) = self.inflight.front() {
            if done <= now {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        // Stall until a slot frees if the queue is full.
        let mut t = now;
        let mut stall = 0;
        if self.inflight.len() == self.entries {
            let free_at = *self.inflight.front().expect("full queue has a front");
            stall = free_at - now;
            t = free_at;
            self.inflight.pop_front();
        }
        let accepted_at = t + self.accept_cycles;
        // Banked drain: the entry occupies the earliest-free bank.
        let bank = (0..self.bank_free.len())
            .min_by_key(|&b| self.bank_free[b])
            .expect("at least one bank");
        let drain_start = accepted_at.max(self.bank_free[bank]);
        let mut drained_at = drain_start + self.write_cycles;
        if self.jitter_window > 0 {
            drained_at += crate::fault::mix64(self.jitter_seed ^ self.pushes) % self.jitter_window;
        }
        self.bank_free[bank] = drained_at;
        // Keep the occupancy queue ordered by completion time.
        let pos = self.inflight.partition_point(|&d| d <= drained_at);
        self.inflight.insert(pos, drained_at);
        self.total_stall += stall;
        self.pushes += 1;
        WpqPush {
            accepted_at,
            stall_cycles: stall,
            drained_at,
        }
    }

    /// Pushes `count` dependent lines back-to-back — each push issues
    /// at the previous push's acceptance cycle, exactly like calling
    /// [`push`](Self::push) in a loop and chaining `accepted_at` —
    /// and returns the final acceptance cycle (`now` when `count` is
    /// zero).
    ///
    /// This is the batched form the device uses to drain a multi-line
    /// log flush in one pass: per-push bookkeeping (retire scan, bank
    /// selection, stall and jitter accounting) is identical, but no
    /// intermediate [`WpqPush`] results are materialized and the
    /// occupancy queue is walked incrementally as time advances, so a
    /// caller that does not need per-push timings (e.g. when tracing
    /// is off) pays one call instead of `count`.
    pub fn push_chain(&mut self, now: u64, count: u64) -> u64 {
        let mut t = now;
        for _ in 0..count {
            // Same retire/stall/bank/jitter math as `push`, with `t`
            // monotonically nondecreasing across iterations — entries
            // retired once stay retired, so the front scan resumes
            // where the previous iteration stopped.
            while let Some(&done) = self.inflight.front() {
                if done <= t {
                    self.inflight.pop_front();
                } else {
                    break;
                }
            }
            let mut start = t;
            if self.inflight.len() == self.entries {
                let free_at = *self.inflight.front().expect("full queue has a front");
                self.total_stall += free_at - t;
                start = free_at;
                self.inflight.pop_front();
            }
            let accepted_at = start + self.accept_cycles;
            let bank = (0..self.bank_free.len())
                .min_by_key(|&b| self.bank_free[b])
                .expect("at least one bank");
            let drain_start = accepted_at.max(self.bank_free[bank]);
            let mut drained_at = drain_start + self.write_cycles;
            if self.jitter_window > 0 {
                drained_at +=
                    crate::fault::mix64(self.jitter_seed ^ self.pushes) % self.jitter_window;
            }
            self.bank_free[bank] = drained_at;
            let pos = self.inflight.partition_point(|&d| d <= drained_at);
            self.inflight.insert(pos, drained_at);
            self.pushes += 1;
            t = accepted_at;
        }
        t
    }

    /// Cycle at which every queued line will have drained; `now` if idle.
    pub fn drained_by(&self, now: u64) -> u64 {
        self.bank_free.iter().copied().max().unwrap_or(0).max(now)
    }

    /// Current occupancy at time `now`.
    pub fn occupancy(&self, now: u64) -> usize {
        self.inflight.iter().filter(|&&done| done > now).count()
    }

    /// Total stall cycles accumulated by requesters.
    pub fn total_stall_cycles(&self) -> u64 {
        self.total_stall
    }

    /// Total lines pushed since creation.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Empties the queue (ADR: entries are considered durable already,
    /// so a crash *keeps* their effects; this reset is for reusing the
    /// model across runs).
    pub fn reset(&mut self) {
        self.inflight.clear();
        self.bank_free.fill(0);
        self.total_stall = 0;
        self.pushes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wpq() -> WritePendingQueue {
        WritePendingQueue::new(8, 1000, 8)
    }

    #[test]
    fn uncontended_pushes_do_not_stall() {
        let mut q = wpq();
        for i in 0..8 {
            let r = q.push(i * 10);
            assert_eq!(r.stall_cycles, 0, "push {i} should not stall");
        }
        assert_eq!(q.pushes(), 8);
    }

    #[test]
    fn ninth_push_stalls_until_first_drains() {
        let mut q = wpq();
        let mut first_drain = 0;
        for i in 0..8 {
            let r = q.push(0);
            if i == 0 {
                first_drain = r.drained_at;
            }
        }
        let r = q.push(0);
        assert_eq!(r.stall_cycles, first_drain);
        assert_eq!(r.accepted_at, first_drain + 8);
    }

    #[test]
    fn banked_drain_parallelism_and_serialisation() {
        let mut q = wpq();
        // The first DEFAULT_DRAIN_BANKS lines drain in parallel...
        let first: Vec<u64> = (0..DEFAULT_DRAIN_BANKS)
            .map(|_| q.push(0).drained_at)
            .collect();
        assert!(first.windows(2).all(|w| w[1] - w[0] <= 2 * 8));
        // ...the next line queues behind a busy bank.
        let next = q.push(0);
        assert!(next.drained_at >= first[0] + 1000);
    }

    #[test]
    fn single_bank_is_serial() {
        let mut q = WritePendingQueue::with_banks(8, 1000, 8, 1);
        let a = q.push(0);
        let b = q.push(0);
        assert_eq!(a.drained_at, 8 + 1000);
        assert_eq!(b.drained_at, a.drained_at + 1000, "drain is serial");
    }

    #[test]
    fn idle_queue_catches_up() {
        let mut q = wpq();
        q.push(0);
        // Long after the first line drained, a new push sees an empty queue.
        let r = q.push(1_000_000);
        assert_eq!(r.stall_cycles, 0);
        assert_eq!(r.drained_at, 1_000_000 + 8 + 1000);
        assert_eq!(q.occupancy(1_000_000), 1);
    }

    #[test]
    fn drained_by_tracks_last_completion() {
        let mut q = wpq();
        assert_eq!(q.drained_by(5), 5);
        let r = q.push(0);
        assert_eq!(q.drained_by(0), r.drained_at);
    }

    #[test]
    fn stall_accounting_accumulates() {
        let mut q = WritePendingQueue::new(1, 100, 0);
        q.push(0); // drains at 100
        let r = q.push(0); // stalls 100
        assert_eq!(r.stall_cycles, 100);
        assert_eq!(q.total_stall_cycles(), 100);
    }

    #[test]
    fn latency_sweep_changes_drain_rate() {
        let mut q = wpq();
        q.set_write_cycles(4600); // 2300 ns at 2 GHz
        let r = q.push(0);
        assert_eq!(r.drained_at, 8 + 4600);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = wpq();
        q.push(0);
        q.reset();
        assert_eq!(q.pushes(), 0);
        assert_eq!(q.occupancy(0), 0);
        assert_eq!(q.drained_by(0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = WritePendingQueue::new(0, 1000, 8);
    }

    /// `push_chain(now, n)` must be indistinguishable from `n` chained
    /// `push` calls — final acceptance cycle, stall totals, push
    /// counter, occupancy and drain horizon — including across a full
    /// queue (stalls) and with jitter enabled (per-push perturbation
    /// keyed by the push counter).
    #[test]
    fn push_chain_matches_chained_pushes() {
        for (entries, banks, jitter, counts) in [
            (8, 2, 0, vec![1u64, 3, 9, 2]),
            (2, 1, 0, vec![5, 5]),
            (8, 2, 500, vec![4, 12]),
            (3, 2, 77, vec![1, 1, 7]),
        ] {
            let mut a = WritePendingQueue::with_banks(entries, 1000, 8, banks);
            let mut b = WritePendingQueue::with_banks(entries, 1000, 8, banks);
            if jitter > 0 {
                a.set_drain_jitter(jitter, 42);
                b.set_drain_jitter(jitter, 42);
            }
            let mut now = 17;
            for &count in &counts {
                let mut acc = now;
                for _ in 0..count {
                    acc = a.push(acc).accepted_at;
                }
                let chained = b.push_chain(now, count);
                assert_eq!(chained, acc, "final acceptance (count {count})");
                assert_eq!(a.total_stall_cycles(), b.total_stall_cycles());
                assert_eq!(a.pushes(), b.pushes());
                assert_eq!(a.occupancy(acc), b.occupancy(acc));
                assert_eq!(a.drained_by(acc), b.drained_by(acc));
                now = acc + 100;
            }
        }
    }

    #[test]
    fn push_chain_of_zero_is_a_no_op() {
        let mut q = wpq();
        assert_eq!(q.push_chain(123, 0), 123);
        assert_eq!(q.pushes(), 0);
    }

    #[test]
    fn drain_jitter_is_bounded_deterministic_and_optional() {
        let clean: Vec<u64> = {
            let mut q = wpq();
            (0..6).map(|_| q.push(0).drained_at).collect()
        };
        let jittered = |seed: u64| -> Vec<u64> {
            let mut q = wpq();
            q.set_drain_jitter(500, seed);
            (0..6).map(|_| q.push(0).drained_at).collect()
        };
        let a = jittered(42);
        assert_eq!(a, jittered(42), "same seed ⇒ same perturbation");
        // Each push adds at most one window of delay (cumulative when
        // drains serialise behind a jittered bank).
        for (i, (j, c)) in a.iter().zip(&clean).enumerate() {
            assert!(*j >= *c, "jitter never completes early");
            assert!(*j < *c + 500 * (i as u64 + 1), "jitter bounded per push");
        }
        // Window 0 restores the clean timings exactly.
        let mut q = wpq();
        q.set_drain_jitter(0, 42);
        let off: Vec<u64> = (0..6).map(|_| q.push(0).drained_at).collect();
        assert_eq!(off, clean);
    }
}
