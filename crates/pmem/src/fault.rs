//! Deterministic media-fault injection plans.
//!
//! Real persistent memory does not fail as cleanly as a prefix cut of
//! the persist-event trace: a 64-byte line persist tears at 8-byte
//! store granularity when power fails mid-write, and the medium
//! suffers bit-flips and uncorrectable-ECC poisoning. A [`FaultPlan`]
//! describes one such failure deterministically — the same
//! `(seed, plan)` always injects exactly the same faults, so every
//! fault-sweep failure is replayable from its printed tuple.
//!
//! The plan is armed on a [`PmDevice`](crate::PmDevice) via
//! `set_fault_plan` and takes effect together with the persist-event
//! crash scheduler:
//!
//! * **tear** — the crash-boundary event `k` itself lands partially
//!   (word granularity) instead of the power failing cleanly between
//!   events `k` and `k + 1`.
//! * **poison** — after the crash, whole lines of the durable image
//!   become uncorrectable: reads *detect* the loss (they are not
//!   silent), modelling ECC poison consumption.
//! * **flip** — after the crash, single payload bits of durable log
//!   records flip; the record's CRC32 exposes them as corrupt.
//! * **jitter** — WPQ drain completions are perturbed within a bounded
//!   window, reordering drains without changing ADR durability
//!   semantics (acceptance still equals persistence).
//!
//! An empty plan ([`FaultPlan::NONE`]) is the default and injects
//! nothing: the device behaves bit-identically to a plan-free build.

use std::fmt;
use std::str::FromStr;

/// A splitmix64 finaliser step: a cheap, statistically strong 64-bit
/// mixer used to derive every fault-injection choice from the plan
/// seed. Stateless, so replay needs no generator object.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `bytes`.
/// This is the checksum stored in every durable log record and commit
/// marker tag; recovery recomputes it to classify records.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A deterministic, replayable media-fault plan.
///
/// Encodes as a compact tuple string (`s<seed>:t<0|1>[:w<word>]:p<n>:f<n>:j<n>`)
/// that round-trips through [`FromStr`], so a fault-sweep failure line
/// can be re-run verbatim with `slpmt faults --plan`.
///
/// ```
/// use slpmt_pmem::FaultPlan;
/// let plan = FaultPlan { seed: 7, tear: true, poison_lines: 2, ..FaultPlan::NONE };
/// let round: FaultPlan = plan.to_string().parse().unwrap();
/// assert_eq!(plan, round);
/// assert!(FaultPlan::NONE.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed every injection choice derives from (via [`mix64`]).
    pub seed: u64,
    /// Tear the crash-boundary persist event at word granularity.
    pub tear: bool,
    /// Pin the torn word index instead of deriving it from the seed
    /// (used by the torn-marker matrix tests); clamped to the event's
    /// valid tear range.
    pub tear_word: Option<u8>,
    /// Number of touched image lines to poison after the crash
    /// (uncorrectable-ECC model: reads are detectably lost).
    pub poison_lines: u32,
    /// Number of durable log records to bit-flip after the crash.
    pub flip_records: u32,
    /// WPQ drain-jitter window in cycles (0 = no perturbation).
    pub jitter: u32,
}

impl FaultPlan {
    /// The empty plan: injects nothing, perturbs nothing.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        tear: false,
        tear_word: None,
        poison_lines: 0,
        flip_records: 0,
        jitter: 0,
    };

    /// `true` when the plan injects no fault of any kind — the device
    /// must behave bit-identically to a plan-free run.
    pub fn is_empty(&self) -> bool {
        !self.tear && self.poison_lines == 0 && self.flip_records == 0 && self.jitter == 0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}:t{}", self.seed, self.tear as u8)?;
        if let Some(w) = self.tear_word {
            write!(f, ":w{w}")?;
        }
        write!(
            f,
            ":p{}:f{}:j{}",
            self.poison_lines, self.flip_records, self.jitter
        )
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parses the `s<seed>:t<0|1>[:w<word>]:p<n>:f<n>:j<n>` form
    /// printed by [`Display`](fmt::Display). Fields may appear in any
    /// order; missing fields default to the [`NONE`](Self::NONE) value.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::NONE;
        for field in s.split(':') {
            let (tag, num) = field.split_at(field.len().min(1));
            let parse = |what: &str| {
                num.parse::<u64>()
                    .map_err(|e| format!("bad {what} in fault plan field {field:?}: {e}"))
            };
            match tag {
                "s" => plan.seed = parse("seed")?,
                "t" => {
                    plan.tear = match parse("tear flag")? {
                        0 => false,
                        1 => true,
                        other => return Err(format!("tear flag must be 0 or 1, got {other}")),
                    }
                }
                "w" => plan.tear_word = Some(parse("tear word")?.min(u8::MAX as u64) as u8),
                "p" => plan.poison_lines = parse("poison count")?.min(u32::MAX as u64) as u32,
                "f" => plan.flip_records = parse("flip count")?.min(u32::MAX as u64) as u32,
                "j" => plan.jitter = parse("jitter window")?.min(u32::MAX as u64) as u32,
                _ => return Err(format!("unknown fault plan field {field:?}")),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = [0x5Au8; 24];
        let before = crc32(&data);
        data[13] ^= 1 << 3;
        assert_ne!(before, crc32(&data));
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::NONE.is_empty());
        assert!(FaultPlan::default().is_empty());
        let mut p = FaultPlan::NONE;
        p.seed = 99; // a seed alone injects nothing
        assert!(p.is_empty());
        p.jitter = 1;
        assert!(!p.is_empty());
    }

    #[test]
    fn codec_round_trips() {
        let plans = [
            FaultPlan::NONE,
            FaultPlan {
                seed: 1234,
                tear: true,
                tear_word: None,
                poison_lines: 3,
                flip_records: 1,
                jitter: 500,
            },
            FaultPlan {
                seed: u64::MAX,
                tear: true,
                tear_word: Some(1),
                poison_lines: 0,
                flip_records: 0,
                jitter: 0,
            },
        ];
        for plan in plans {
            let text = plan.to_string();
            assert_eq!(text.parse::<FaultPlan>().unwrap(), plan, "{text}");
        }
    }

    #[test]
    fn parse_accepts_partial_and_rejects_garbage() {
        let p: FaultPlan = "s7:p2".parse().unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.poison_lines, 2);
        assert!(!p.tear);
        assert!("s7:q1".parse::<FaultPlan>().is_err());
        assert!("sx".parse::<FaultPlan>().is_err());
        assert!("s1:t2".parse::<FaultPlan>().is_err());
    }
}
