//! The persistent-memory device: durable image + WPQ + accounting.
//!
//! [`PmDevice`] is the single point through which the simulated CPU
//! persists anything. Every persist is timed through the
//! [write pending queue](crate::wpq) and counted in
//! [`crate::stats::WriteTraffic`]; log-record persists
//! are additionally recorded in the durable [`LogRegion`] so that
//! crash recovery sees exactly what reached the persistence domain.

use crate::addr::{PmAddr, LINE_BYTES};
use crate::config::PmConfig;
use crate::log_region::LogRegion;
use crate::payload::PayloadBuf;
use crate::space::PmSpace;
use crate::stats::WriteTraffic;
use crate::wpq::WritePendingQueue;

/// One entry of the device's persist-event trace, in acceptance order.
/// Tests use the trace to assert persist-ordering disciplines
/// (Figure 4): e.g. that a logged line's undo records are accepted
/// before the line's data.
///
/// Every variant is one *numbered* durable-state mutation: the index
/// of an event in the trace (1-based) is the value the crash scheduler
/// ([`PmDevice::arm_crash_at_event`]) counts, so a crash state is
/// always an exact prefix of this trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistEvent {
    /// A data cache line was accepted by the WPQ.
    DataLine {
        /// Line address.
        addr: PmAddr,
    },
    /// A log record was accepted (atomically with its pack).
    LogRecord {
        /// Owning transaction.
        txn: u64,
        /// Record start address.
        addr: PmAddr,
        /// Record length in bytes.
        len: usize,
    },
    /// A commit marker became durable.
    CommitMarker {
        /// Committed transaction.
        txn: u64,
    },
    /// The durable log head advanced: committed records were truncated
    /// (post-commit) or the whole region was reset (post-recovery) —
    /// an 8-byte head-pointer update in real hardware.
    LogTruncate,
}

/// A log record queued for a packed flush; see
/// [`PmDevice::persist_log_pack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFlushEntry {
    /// Owning transaction sequence number.
    pub txn: u64,
    /// Word-aligned address the record covers.
    pub addr: PmAddr,
    /// Record payload bytes (a whole number of words), stored inline
    /// so packs move through the flush path without heap traffic.
    pub payload: PayloadBuf,
}

/// The simulated persistent-memory device.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct PmDevice {
    config: PmConfig,
    image: PmSpace,
    wpq: WritePendingQueue,
    traffic: WriteTraffic,
    log: LogRegion,
    /// Byte offset of the sequential log-area tail. Log appends pack
    /// into 64-byte media lines; bytes landing in the line already in
    /// flight at the tail are absorbed for free.
    log_tail: u64,
    /// Persist events in acceptance order (survives crash — the trace
    /// records what reached the persistence domain).
    events: Vec<PersistEvent>,
    /// Originating core of each accepted event, parallel to `events`.
    /// Single-core machines leave every entry 0; a multi-core wrapper
    /// calls [`set_event_origin`](Self::set_event_origin) at each
    /// scheduling step so the shared trace stays attributable.
    origins: Vec<u8>,
    /// Core id stamped on the next accepted events.
    origin: u8,
    /// Total persist events ever accepted (monotonic across crashes;
    /// `events` is cleared by nothing, so this equals `events.len()`).
    event_count: u64,
    /// Armed crash point: after `k` total events have been accepted,
    /// every further durable mutation is dropped (the power failed
    /// between event `k` and event `k + 1`).
    crash_at_event: Option<u64>,
    /// Set once the armed crash point has been reached and a durable
    /// mutation was dropped.
    crash_tripped: bool,
}

impl PmDevice {
    /// Creates a device with the given configuration.
    pub fn new(config: PmConfig) -> Self {
        let image = PmSpace::new(config.pm_capacity);
        let wpq = WritePendingQueue::new(
            config.wpq_entries,
            config.pm_write_cycles,
            config.wpq_accept_cycles,
        );
        PmDevice {
            config,
            image,
            wpq,
            traffic: WriteTraffic::new(),
            log: LogRegion::new(),
            log_tail: 0,
            events: Vec::new(),
            origins: Vec::new(),
            origin: 0,
            event_count: 0,
            crash_at_event: None,
            crash_tripped: false,
        }
    }

    /// The persist-event trace, in acceptance order.
    pub fn events(&self) -> &[PersistEvent] {
        &self.events
    }

    /// Originating core of each accepted event (parallel to
    /// [`events`](Self::events); all zeros on single-core machines).
    pub fn event_origins(&self) -> &[u8] {
        &self.origins
    }

    /// Sets the core id stamped on subsequently accepted events. A
    /// multi-core front end calls this whenever it switches the active
    /// core, so every entry of the shared, globally-numbered persist
    /// trace remains attributable to the core that issued it.
    pub fn set_event_origin(&mut self, core: u8) {
        self.origin = core;
    }

    /// Total persist events accepted since construction. Event indices
    /// are 1-based: the first durable mutation is event 1.
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// Arms the persist-event crash scheduler: once `k` total events
    /// have been accepted (counting from device construction), every
    /// later durable mutation is silently dropped — the durable state
    /// freezes as the exact `k`-event prefix of the persist trace,
    /// exactly what a power failure between event `k` and `k + 1`
    /// leaves behind. Pair with [`crash_tripped`](Self::crash_tripped)
    /// to detect the trip and a subsequent [`crash`](Self::crash) to
    /// discard volatile state.
    ///
    /// Arming with `k` at or below the current
    /// [`event_count`](Self::event_count) trips on the very next
    /// mutation.
    pub fn arm_crash_at_event(&mut self, k: u64) {
        self.crash_at_event = Some(k);
        self.crash_tripped = false;
    }

    /// Disarms a pending persist-event crash without crashing.
    pub fn disarm_crash(&mut self) {
        self.crash_at_event = None;
        self.crash_tripped = false;
    }

    /// `true` once an armed persist-event crash point has been reached
    /// and at least one durable mutation was dropped.
    pub fn crash_tripped(&self) -> bool {
        self.crash_tripped
    }

    /// Gate for every durable-state mutation: numbers the event and
    /// reports whether it reached the persistence domain. After an
    /// armed crash trips, all further mutations are dropped.
    fn accept(&mut self, event: PersistEvent) -> bool {
        if let Some(k) = self.crash_at_event {
            if self.event_count >= k {
                self.crash_tripped = true;
                return false;
            }
        }
        self.event_count += 1;
        self.events.push(event);
        self.origins.push(self.origin);
        true
    }

    /// Appends `bytes` to the sequential log area, returning how many
    /// *new* 64-byte media lines the append touches (0 when fully
    /// absorbed by the in-flight tail line).
    fn log_append_lines(&mut self, bytes: u64) -> u64 {
        let line = LINE_BYTES as u64;
        let before = self.log_tail.div_ceil(line);
        self.log_tail += bytes;
        self.log_tail.div_ceil(line) - before
    }

    /// The device configuration.
    pub fn config(&self) -> &PmConfig {
        &self.config
    }

    /// Read latency in cycles for a miss served by the PM medium.
    pub fn read_cycles(&self) -> u64 {
        self.config.pm_read_cycles
    }

    /// The durable image (crash-visible state).
    pub fn image(&self) -> &PmSpace {
        &self.image
    }

    /// Mutable access to the durable image for *out-of-band* setup
    /// (e.g. pre-populating a heap before measurement). Accesses through
    /// this method are neither timed nor counted.
    pub fn image_mut(&mut self) -> &mut PmSpace {
        &mut self.image
    }

    /// The durable log region.
    pub fn log(&self) -> &LogRegion {
        &self.log
    }

    /// Mutable access to the log region (used by recovery to truncate).
    pub fn log_mut(&mut self) -> &mut LogRegion {
        &mut self.log
    }

    /// Accumulated write traffic.
    pub fn traffic(&self) -> &WriteTraffic {
        &self.traffic
    }

    /// Total cycles requesters stalled on a full WPQ.
    pub fn wpq_stall_cycles(&self) -> u64 {
        self.wpq.total_stall_cycles()
    }

    /// Cycle by which everything queued so far has drained.
    pub fn drained_by(&self, now: u64) -> u64 {
        self.wpq.drained_by(now)
    }

    /// Persists one 64-byte data line at time `now`; the line becomes
    /// durable (ADR) once accepted. Returns the acceptance cycle.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned.
    pub fn persist_line(&mut self, now: u64, addr: PmAddr, data: &[u8; LINE_BYTES]) -> u64 {
        if !self.accept(PersistEvent::DataLine { addr }) {
            return now;
        }
        let push = self.wpq.push(now);
        self.image.write_line(addr, data);
        self.traffic.count_data_line();
        push.accepted_at
    }

    /// Persists a *pack* of log records: the record bytes append to
    /// the sequential log area and occupy however many new media lines
    /// the tail crosses (possibly zero, when absorbed by the in-flight
    /// tail line). Records become durable atomically with acceptance.
    /// Returns the acceptance cycle of the final slot.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn persist_log_pack(&mut self, now: u64, entries: &[LogFlushEntry]) -> u64 {
        assert!(!entries.is_empty(), "empty log pack");
        let mut bytes = 0;
        let mut records = 0;
        for e in entries {
            // Each record is its own persist event: a crash may land
            // between two records of the same pack.
            if !self.accept(PersistEvent::LogRecord {
                txn: e.txn,
                addr: e.addr,
                len: e.payload.len(),
            }) {
                break;
            }
            bytes += e.payload.len() as u64 + 8;
            records += 1;
            self.log.append(e.txn, e.addr, &e.payload);
        }
        if records == 0 {
            return now;
        }
        let lines = self.log_append_lines(bytes);
        let mut accepted = now;
        for _ in 0..lines {
            accepted = self.wpq.push(accepted).accepted_at;
        }
        self.traffic.count_log_flush(records, bytes, lines);
        accepted
    }

    /// Persists the commit marker of transaction `txn` (an 8-byte
    /// record appended to the log tail). Returns the acceptance cycle.
    pub fn persist_commit_marker(&mut self, now: u64, txn: u64) -> u64 {
        if !self.accept(PersistEvent::CommitMarker { txn }) {
            return now;
        }
        self.log.mark_committed(txn);
        let lines = self.log_append_lines(8);
        let mut accepted = now;
        for _ in 0..lines {
            accepted = self.wpq.push(accepted).accepted_at;
        }
        self.traffic.count_log_flush(1, 8, lines);
        accepted
    }

    /// Truncates committed records from the durable log (the post-commit
    /// head-pointer advance). A numbered persist event: when a crash is
    /// armed and trips here, the log keeps its committed records — the
    /// head pointer never reached the persistence domain.
    pub fn truncate_log(&mut self) {
        if self.accept(PersistEvent::LogTruncate) {
            self.log.truncate_committed();
        }
    }

    /// Resets the whole durable log region (the post-recovery head/tail
    /// reset). A numbered persist event, like
    /// [`truncate_log`](Self::truncate_log).
    pub fn reset_log(&mut self) {
        if self.accept(PersistEvent::LogTruncate) {
            self.log.reset();
        }
    }

    /// Updates the PM write latency (Figure 12 sweep) mid-model.
    pub fn set_write_latency_cycles(&mut self, cycles: u64) {
        self.config.pm_write_cycles = cycles;
        self.wpq.set_write_cycles(cycles);
    }

    /// Simulates a power failure: the WPQ drains (ADR), caches are lost
    /// by the caller. The durable image and log region are the surviving
    /// state; the queue model is reset for the post-recovery run.
    pub fn crash(&mut self) {
        // Everything accepted by the WPQ already updated `image`, so
        // draining needs no data movement here.
        self.wpq.reset();
        // The armed crash (if any) has happened; recovery's own persists
        // must reach the device.
        self.crash_at_event = None;
        self.crash_tripped = false;
    }

    /// Consumes the device returning its durable state (image and log).
    pub fn into_durable_state(self) -> (PmSpace, LogRegion) {
        (self.image, self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> PmDevice {
        PmDevice::new(PmConfig::default().with_capacity(1 << 20))
    }

    #[test]
    fn persist_line_updates_image_and_traffic() {
        let mut d = dev();
        let t = d.persist_line(0, PmAddr::new(128), &[9u8; 64]);
        assert_eq!(t, 8); // accept latency
        assert_eq!(d.image().read_u64(PmAddr::new(128)), 0x0909090909090909);
        assert_eq!(d.traffic().data_lines, 1);
        assert_eq!(d.traffic().data_bytes, 64);
    }

    #[test]
    fn log_pack_records_and_counts() {
        let mut d = dev();
        let entries = vec![
            LogFlushEntry {
                txn: 7,
                addr: PmAddr::new(0),
                payload: PayloadBuf::from_slice(&[1; 8]),
            },
            LogFlushEntry {
                txn: 7,
                addr: PmAddr::new(8),
                payload: PayloadBuf::from_slice(&[2; 8]),
            },
        ];
        d.persist_log_pack(0, &entries);
        assert_eq!(d.log().records_of(7).count(), 2);
        assert_eq!(d.traffic().log_records, 2);
        assert_eq!(d.traffic().log_bytes, 32); // 2 × (8 payload + 8 addr)
        assert_eq!(d.traffic().wpq_lines, 1);
    }

    #[test]
    fn commit_marker_marks_txn() {
        let mut d = dev();
        assert!(!d.log().is_committed(3));
        d.persist_commit_marker(0, 3);
        assert!(d.log().is_committed(3));
        assert_eq!(d.traffic().log_bytes, 8);
        // An 8-byte marker from an empty tail opens one media line;
        // the next marker is absorbed by it.
        assert_eq!(d.traffic().wpq_lines, 1);
        d.persist_commit_marker(0, 4);
        assert_eq!(d.traffic().wpq_lines, 1);
    }

    #[test]
    fn wpq_backpressure_visible_through_device() {
        let mut d = dev();
        let mut t = 0;
        // Fill the queue then keep pushing; later pushes must stall.
        for _ in 0..32 {
            t = d.persist_line(t, PmAddr::new(0), &[0u8; 64]);
        }
        assert!(d.wpq_stall_cycles() > 0, "sustained persists must stall");
    }

    #[test]
    fn out_of_band_setup_is_free() {
        let mut d = dev();
        d.image_mut().write_u64(PmAddr::new(0), 42);
        assert_eq!(d.traffic().total_bytes(), 0);
        assert_eq!(d.image().read_u64(PmAddr::new(0)), 42);
    }

    #[test]
    fn crash_preserves_image_and_log() {
        let mut d = dev();
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        d.persist_commit_marker(10, 1);
        d.crash();
        assert_eq!(d.image().read_u64(PmAddr::new(0)), 0x0101010101010101);
        assert!(d.log().is_committed(1));
    }

    #[test]
    fn latency_update_applies() {
        let mut d = dev();
        d.set_write_latency_cycles(4600);
        assert_eq!(d.config().pm_write_cycles, 4600);
    }

    #[test]
    #[should_panic(expected = "empty log pack")]
    fn empty_pack_rejected() {
        let mut d = dev();
        d.persist_log_pack(0, &[]);
    }

    #[test]
    fn events_are_numbered_monotonically() {
        let mut d = dev();
        assert_eq!(d.event_count(), 0);
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        assert_eq!(d.event_count(), 1);
        d.persist_commit_marker(0, 1);
        d.truncate_log();
        assert_eq!(d.event_count(), 3);
        assert_eq!(d.events().len(), 3);
        assert_eq!(d.events()[2], PersistEvent::LogTruncate);
    }

    #[test]
    fn armed_crash_freezes_durable_prefix() {
        let mut d = dev();
        d.arm_crash_at_event(1);
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        assert!(!d.crash_tripped());
        // Event 2 onward is dropped: image, log and traffic freeze.
        d.persist_line(0, PmAddr::new(64), &[2u8; 64]);
        d.persist_commit_marker(0, 1);
        assert!(d.crash_tripped());
        assert_eq!(d.event_count(), 1);
        assert_eq!(d.image().read_u64(PmAddr::new(0)), 0x0101010101010101);
        assert_eq!(d.image().read_u64(PmAddr::new(64)), 0);
        assert!(!d.log().is_committed(1));
        assert_eq!(d.traffic().data_lines, 1);
    }

    #[test]
    fn log_pack_crashes_between_records() {
        let mut d = dev();
        let entries = vec![
            LogFlushEntry {
                txn: 7,
                addr: PmAddr::new(0),
                payload: PayloadBuf::from_slice(&[1; 8]),
            },
            LogFlushEntry {
                txn: 7,
                addr: PmAddr::new(8),
                payload: PayloadBuf::from_slice(&[2; 8]),
            },
        ];
        d.arm_crash_at_event(1);
        d.persist_log_pack(0, &entries);
        assert!(d.crash_tripped());
        assert_eq!(d.log().records_of(7).count(), 1);
        assert_eq!(d.traffic().log_records, 1);
    }

    #[test]
    fn tripped_truncate_keeps_log() {
        let mut d = dev();
        d.persist_commit_marker(0, 1);
        d.arm_crash_at_event(1);
        d.truncate_log();
        assert!(d.crash_tripped());
        assert!(d.log().is_committed(1));
    }

    #[test]
    fn crash_disarms_scheduler() {
        let mut d = dev();
        d.arm_crash_at_event(0);
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        assert!(d.crash_tripped());
        d.crash();
        assert!(!d.crash_tripped());
        d.persist_line(0, PmAddr::new(0), &[3u8; 64]);
        assert_eq!(d.image().read_u64(PmAddr::new(0)), 0x0303030303030303);
    }

    #[test]
    fn disarm_without_crash() {
        let mut d = dev();
        d.arm_crash_at_event(0);
        d.disarm_crash();
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        assert!(!d.crash_tripped());
        assert_eq!(d.event_count(), 1);
    }
}
