//! The persistent-memory device: durable image + WPQ + accounting.
//!
//! [`PmDevice`] is the single point through which the simulated CPU
//! persists anything. Every persist is timed through the
//! [write pending queue](crate::wpq) and counted in
//! [`crate::stats::WriteTraffic`]; log-record persists
//! are additionally recorded in the durable [`LogRegion`] so that
//! crash recovery sees exactly what reached the persistence domain.

use crate::addr::{PmAddr, LINE_BYTES, WORD_BYTES};
use crate::config::PmConfig;
use crate::fault::{mix64, FaultPlan};
use crate::log_region::LogRegion;
use crate::payload::PayloadBuf;
use crate::space::PmSpace;
use crate::stats::WriteTraffic;
use crate::wpq::{WpqPush, WritePendingQueue};
use slpmt_trace::{Event as TraceEvent, PersistKind, TraceHandle};
use std::collections::BTreeSet;

/// One entry of the device's persist-event trace, in acceptance order.
/// Tests use the trace to assert persist-ordering disciplines
/// (Figure 4): e.g. that a logged line's undo records are accepted
/// before the line's data.
///
/// Every variant is one *numbered* durable-state mutation: the index
/// of an event in the trace (1-based) is the value the crash scheduler
/// ([`PmDevice::arm_crash_at_event`]) counts, so a crash state is
/// always an exact prefix of this trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistEvent {
    /// A data cache line was accepted by the WPQ.
    DataLine {
        /// Line address.
        addr: PmAddr,
    },
    /// A log record was accepted (atomically with its pack).
    LogRecord {
        /// Owning transaction.
        txn: u64,
        /// Record start address.
        addr: PmAddr,
        /// Record length in bytes.
        len: usize,
    },
    /// A commit marker became durable.
    CommitMarker {
        /// Committed transaction.
        txn: u64,
    },
    /// The durable log head advanced: committed records were truncated
    /// (post-commit) or the whole region was reset (post-recovery) —
    /// an 8-byte head-pointer update in real hardware.
    LogTruncate,
}

/// A log record queued for a packed flush; see
/// [`PmDevice::persist_log_pack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFlushEntry {
    /// Owning transaction sequence number.
    pub txn: u64,
    /// Word-aligned address the record covers.
    pub addr: PmAddr,
    /// Record payload bytes (a whole number of words), stored inline
    /// so packs move through the flush path without heap traffic.
    pub payload: PayloadBuf,
}

/// How the acceptance gate admitted one durable mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// The persist completed; durable state mutates fully.
    Full,
    /// The persist tore at the crash boundary: only the first `w`
    /// 8-byte words landed.
    Torn(u32),
    /// The crash already tripped; the mutation never happened.
    Dropped,
}

/// The word range `[lo, hi)` a torn word index may take for `event`,
/// or `None` when the event is a single-word (untearable) update.
/// Data lines tear with at least one word landed (`lo = 1`); records
/// may land tag-only (`lo = 0`, the payload entirely missing);
/// markers are two words (sequence, checksum) and may tear at either.
fn tear_range(event: &PersistEvent) -> Option<(u32, u32)> {
    match event {
        PersistEvent::DataLine { .. } => Some((1, (LINE_BYTES / WORD_BYTES) as u32)),
        PersistEvent::LogRecord { len, .. } => Some((0, (len / WORD_BYTES) as u32)),
        PersistEvent::CommitMarker { .. } => Some((0, 2)),
        PersistEvent::LogTruncate => None,
    }
}

/// The simulated persistent-memory device.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct PmDevice {
    config: PmConfig,
    image: PmSpace,
    wpq: WritePendingQueue,
    traffic: WriteTraffic,
    log: LogRegion,
    /// Byte offset of the sequential log-area tail. Log appends pack
    /// into 64-byte media lines; bytes landing in the line already in
    /// flight at the tail are absorbed for free.
    log_tail: u64,
    /// Persist events in acceptance order (survives crash — the trace
    /// records what reached the persistence domain).
    events: Vec<PersistEvent>,
    /// Originating core of each accepted event, parallel to `events`.
    /// Single-core machines leave every entry 0; a multi-core wrapper
    /// calls [`set_event_origin`](Self::set_event_origin) at each
    /// scheduling step so the shared trace stays attributable.
    origins: Vec<u8>,
    /// Core id stamped on the next accepted events.
    origin: u8,
    /// Total persist events ever accepted (monotonic across crashes;
    /// `events` is cleared by nothing, so this equals `events.len()`).
    event_count: u64,
    /// Armed crash point: after `k` total events have been accepted,
    /// every further durable mutation is dropped (the power failed
    /// between event `k` and event `k + 1`).
    crash_at_event: Option<u64>,
    /// Set once the armed crash point has been reached and a durable
    /// mutation was dropped.
    crash_tripped: bool,
    /// Media-fault plan (tear / poison / flip / jitter); empty by
    /// default, in which case none of the fault paths run.
    plan: FaultPlan,
    /// `true` when an armed crash should apply the plan's post-crash
    /// corruption (poison + flips) at the next [`crash`](Self::crash).
    faults_pending: bool,
    /// Line addresses currently unreadable (uncorrectable-ECC model).
    poisoned: BTreeSet<u64>,
    /// Ground truth: lines the plan poisoned at the last crash.
    fault_poisoned: Vec<u64>,
    /// Ground truth: lines covered by records the plan bit-flipped at
    /// the last crash.
    fault_flipped: Vec<u64>,
    /// Optional trace sink shared with the machine front end. `None`
    /// (the default) keeps the persist path at a single branch.
    tracer: Option<TraceHandle>,
}

impl PmDevice {
    /// Creates a device with the given configuration.
    pub fn new(config: PmConfig) -> Self {
        let image = PmSpace::new(config.pm_capacity);
        let wpq = WritePendingQueue::new(
            config.wpq_entries,
            config.pm_write_cycles,
            config.wpq_accept_cycles,
        );
        PmDevice {
            config,
            image,
            wpq,
            traffic: WriteTraffic::new(),
            log: LogRegion::new(),
            log_tail: 0,
            events: Vec::new(),
            origins: Vec::new(),
            origin: 0,
            event_count: 0,
            crash_at_event: None,
            crash_tripped: false,
            plan: FaultPlan::NONE,
            faults_pending: false,
            poisoned: BTreeSet::new(),
            fault_poisoned: Vec::new(),
            fault_flipped: Vec::new(),
            tracer: None,
        }
    }

    /// Installs (or removes) the shared trace sink. Accepted durable
    /// mutations, WPQ enqueues and log packs are emitted while a sink
    /// is present; the durable-event counter is mirrored into it so
    /// records from every emitter share the same clock.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.tracer = tracer;
    }

    /// Stamps the simulated cycle clock on the trace sink (no-op when
    /// tracing is disabled).
    fn trace_clock(&mut self, now: u64) {
        if cfg!(feature = "no-trace") {
            return;
        }
        if let Some(t) = &self.tracer {
            t.borrow_mut().set_clock(now);
        }
    }

    /// Emits the accepted durable mutation into the trace sink.
    fn trace_accepted(&mut self, event: &PersistEvent, torn: bool) {
        if cfg!(feature = "no-trace") {
            return;
        }
        if let Some(t) = &self.tracer {
            let (kind, addr, len, txn) = match event {
                PersistEvent::DataLine { addr } => {
                    (PersistKind::Data, addr.raw(), LINE_BYTES as u16, 0)
                }
                PersistEvent::LogRecord { txn, addr, len } => {
                    (PersistKind::Record, addr.raw(), *len as u16, *txn)
                }
                PersistEvent::CommitMarker { txn } => (PersistKind::Marker, 0, 16, *txn),
                PersistEvent::LogTruncate => (PersistKind::Truncate, 0, 0, 0),
            };
            let mut t = t.borrow_mut();
            t.set_devent(self.event_count);
            t.emit(TraceEvent::Persist {
                kind,
                addr,
                len,
                txn,
                torn,
            });
        }
    }

    /// Emits the WPQ enqueue + drain-complete pair for one push.
    fn trace_wpq(&mut self, now: u64, push: &WpqPush) {
        if cfg!(feature = "no-trace") {
            return;
        }
        if let Some(t) = &self.tracer {
            let depth = self.wpq.occupancy(push.accepted_at).min(255) as u8;
            let stall = push.stall_cycles.min(u64::from(u32::MAX)) as u32;
            let mut t = t.borrow_mut();
            t.set_clock(now);
            t.emit(TraceEvent::WpqEnqueue { depth, stall });
            t.emit(TraceEvent::WpqDrainComplete {
                at: push.drained_at,
            });
        }
    }

    /// The persist-event trace, in acceptance order.
    pub fn events(&self) -> &[PersistEvent] {
        &self.events
    }

    /// Originating core of each accepted event (parallel to
    /// [`events`](Self::events); all zeros on single-core machines).
    pub fn event_origins(&self) -> &[u8] {
        &self.origins
    }

    /// Sets the core id stamped on subsequently accepted events. A
    /// multi-core front end calls this whenever it switches the active
    /// core, so every entry of the shared, globally-numbered persist
    /// trace remains attributable to the core that issued it.
    pub fn set_event_origin(&mut self, core: u8) {
        self.origin = core;
    }

    /// Total persist events accepted since construction. Event indices
    /// are 1-based: the first durable mutation is event 1.
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// Arms the persist-event crash scheduler: once `k` total events
    /// have been accepted (counting from device construction), every
    /// later durable mutation is silently dropped — the durable state
    /// freezes as the exact `k`-event prefix of the persist trace,
    /// exactly what a power failure between event `k` and `k + 1`
    /// leaves behind. Pair with [`crash_tripped`](Self::crash_tripped)
    /// to detect the trip and a subsequent [`crash`](Self::crash) to
    /// discard volatile state.
    ///
    /// Arming with `k` at or below the current
    /// [`event_count`](Self::event_count) trips on the very next
    /// mutation.
    pub fn arm_crash_at_event(&mut self, k: u64) {
        self.crash_at_event = Some(k);
        self.crash_tripped = false;
        self.faults_pending = self.plan.poison_lines > 0 || self.plan.flip_records > 0;
        self.fault_poisoned.clear();
        self.fault_flipped.clear();
    }

    /// Installs a media-fault plan (see [`FaultPlan`]). The jitter
    /// component takes effect immediately on the WPQ; tear applies to
    /// the next armed crash boundary; poison and flips apply at the
    /// [`crash`](Self::crash) following the next
    /// [`arm_crash_at_event`](Self::arm_crash_at_event). An empty plan
    /// restores bit-identical fault-free behaviour.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.wpq
            .set_drain_jitter(plan.jitter as u64, mix64(plan.seed ^ 0x6A77));
    }

    /// The installed media-fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Disarms a pending persist-event crash without crashing.
    pub fn disarm_crash(&mut self) {
        self.crash_at_event = None;
        self.crash_tripped = false;
    }

    /// `true` once an armed persist-event crash point has been reached
    /// and at least one durable mutation was dropped.
    pub fn crash_tripped(&self) -> bool {
        self.crash_tripped
    }

    /// Gate for every durable-state mutation: numbers the event and
    /// reports whether it reached the persistence domain. After an
    /// armed crash trips, all further mutations are dropped. With a
    /// tearing [`FaultPlan`], the crash-boundary event `k` itself
    /// lands *partially*, at 8-byte word granularity.
    fn accept(&mut self, event: PersistEvent) -> Admission {
        if let Some(k) = self.crash_at_event {
            if self.event_count >= k {
                self.crash_tripped = true;
                return Admission::Dropped;
            }
            if self.plan.tear && self.event_count + 1 == k {
                if let Some((lo, hi)) = tear_range(&event) {
                    self.event_count += 1;
                    self.trace_accepted(&event, true);
                    self.events.push(event);
                    self.origins.push(self.origin);
                    // Power failed *during* event k: the prefix of the
                    // persist landed, nothing later can.
                    self.crash_tripped = true;
                    let w = match self.plan.tear_word {
                        Some(w) => (w as u32).clamp(lo, hi - 1),
                        None => lo + (mix64(self.plan.seed ^ k) % (hi - lo) as u64) as u32,
                    };
                    return Admission::Torn(w);
                }
                // Untearable events (the 8-byte log-head update) land
                // fully; the crash trips on the next mutation instead.
            }
        }
        self.event_count += 1;
        self.trace_accepted(&event, false);
        self.events.push(event);
        self.origins.push(self.origin);
        Admission::Full
    }

    /// Appends `bytes` to the sequential log area, returning how many
    /// *new* 64-byte media lines the append touches (0 when fully
    /// absorbed by the in-flight tail line).
    fn log_append_lines(&mut self, bytes: u64) -> u64 {
        let line = LINE_BYTES as u64;
        let before = self.log_tail.div_ceil(line);
        self.log_tail += bytes;
        self.log_tail.div_ceil(line) - before
    }

    /// The device configuration.
    pub fn config(&self) -> &PmConfig {
        &self.config
    }

    /// Read latency in cycles for a miss served by the PM medium.
    pub fn read_cycles(&self) -> u64 {
        self.config.pm_read_cycles
    }

    /// The durable image (crash-visible state).
    pub fn image(&self) -> &PmSpace {
        &self.image
    }

    /// Mutable access to the durable image for *out-of-band* setup
    /// (e.g. pre-populating a heap before measurement). Accesses through
    /// this method are neither timed nor counted.
    pub fn image_mut(&mut self) -> &mut PmSpace {
        &mut self.image
    }

    /// The durable log region.
    pub fn log(&self) -> &LogRegion {
        &self.log
    }

    /// Mutable access to the log region (used by recovery to truncate).
    pub fn log_mut(&mut self) -> &mut LogRegion {
        &mut self.log
    }

    /// Accumulated write traffic.
    pub fn traffic(&self) -> &WriteTraffic {
        &self.traffic
    }

    /// Total cycles requesters stalled on a full WPQ.
    pub fn wpq_stall_cycles(&self) -> u64 {
        self.wpq.total_stall_cycles()
    }

    /// WPQ occupancy at simulated time `now` — the admission signal
    /// for service-level backpressure (entries accepted but not yet
    /// drained to the medium).
    pub fn wpq_occupancy(&self, now: u64) -> usize {
        self.wpq.occupancy(now)
    }

    /// Configured WPQ capacity in 64-byte entries.
    pub fn wpq_entries(&self) -> usize {
        self.config.wpq_entries
    }

    /// Enables deterministic WPQ drain-completion jitter within
    /// `window` cycles (0 disables it), without arming any media
    /// fault. Drain timing shifts; durability never does — acceptance
    /// by the queue is what persists.
    pub fn set_wpq_drain_jitter(&mut self, window: u64, seed: u64) {
        self.wpq.set_drain_jitter(window, seed);
    }

    /// Cycle by which everything queued so far has drained.
    pub fn drained_by(&self, now: u64) -> u64 {
        self.wpq.drained_by(now)
    }

    /// Persists one 64-byte data line at time `now`; the line becomes
    /// durable (ADR) once accepted. Returns the acceptance cycle.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned.
    pub fn persist_line(&mut self, now: u64, addr: PmAddr, data: &[u8; LINE_BYTES]) -> u64 {
        self.trace_clock(now);
        match self.accept(PersistEvent::DataLine { addr }) {
            Admission::Dropped => now,
            Admission::Full => {
                let push = self.wpq.push(now);
                self.trace_wpq(now, &push);
                self.image.write_line(addr, data);
                // A completed line write re-establishes ECC: the line
                // is readable again (cheap no-op when nothing is
                // poisoned).
                self.poisoned.remove(&addr.raw());
                self.traffic.count_data_line();
                push.accepted_at
            }
            Admission::Torn(w) => {
                let push = self.wpq.push(now);
                self.trace_wpq(now, &push);
                let mut line = self.image.read_line(addr);
                let landed = w as usize * WORD_BYTES;
                line[..landed].copy_from_slice(&data[..landed]);
                self.image.write_line(addr, &line);
                self.traffic.count_data_line();
                push.accepted_at
            }
        }
    }

    /// Persists a *pack* of log records: the record bytes append to
    /// the sequential log area and occupy however many new media lines
    /// the tail crosses (possibly zero, when absorbed by the in-flight
    /// tail line). Records become durable atomically with acceptance.
    /// Returns the acceptance cycle of the final slot.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn persist_log_pack(&mut self, now: u64, entries: &[LogFlushEntry]) -> u64 {
        assert!(!entries.is_empty(), "empty log pack");
        self.trace_clock(now);
        let mut bytes = 0;
        let mut records = 0;
        for e in entries {
            // Each record is its own persist event: a crash may land
            // between two records of the same pack — or *inside* one,
            // when a tearing fault plan is armed.
            match self.accept(PersistEvent::LogRecord {
                txn: e.txn,
                addr: e.addr,
                len: e.payload.len(),
            }) {
                Admission::Dropped => break,
                Admission::Full => {
                    bytes += e.payload.len() as u64 + 8;
                    records += 1;
                    self.log.append(e.txn, e.addr, &e.payload);
                }
                Admission::Torn(w) => {
                    // The tag word landed (the tail line was in
                    // flight), the payload tore after `w` words.
                    bytes += e.payload.len() as u64 + 8;
                    records += 1;
                    self.log.append_torn(e.txn, e.addr, &e.payload, w as u8);
                    break;
                }
            }
        }
        if records == 0 {
            return now;
        }
        let lines = self.log_append_lines(bytes);
        let accepted = self.drain_lines(now, lines);
        self.traffic.count_log_flush(records, bytes, lines);
        if !cfg!(feature = "no-trace") {
            if let Some(t) = &self.tracer {
                t.borrow_mut().emit(TraceEvent::LogPack {
                    records: records as u16,
                    bytes: bytes.min(u64::from(u32::MAX)) as u32,
                });
            }
        }
        accepted
    }

    /// Drains `lines` dependent WPQ pushes starting at `now` and
    /// returns the final acceptance cycle. With no tracer attached the
    /// whole chain runs as one batched queue pass
    /// ([`WritePendingQueue::push_chain`]); with tracing on, each push
    /// is issued individually so the per-push `WpqEnqueue` /
    /// `WpqDrainComplete` records keep their exact timings. Both paths
    /// produce identical queue state and acceptance cycles.
    fn drain_lines(&mut self, now: u64, lines: u64) -> u64 {
        if cfg!(feature = "no-trace") || self.tracer.is_none() {
            return self.wpq.push_chain(now, lines);
        }
        let mut accepted = now;
        for _ in 0..lines {
            let push = self.wpq.push(accepted);
            self.trace_wpq(accepted, &push);
            accepted = push.accepted_at;
        }
        accepted
    }

    /// Persists the commit marker of transaction `txn`: a two-word
    /// (16-byte) record appended to the log tail — the committed
    /// sequence number plus its CRC32 tag — so a torn marker is
    /// detectable at either word. Returns the acceptance cycle.
    pub fn persist_commit_marker(&mut self, now: u64, txn: u64) -> u64 {
        self.trace_clock(now);
        match self.accept(PersistEvent::CommitMarker { txn }) {
            Admission::Dropped => now,
            admission => {
                match admission {
                    Admission::Full => self.log.mark_committed(txn),
                    Admission::Torn(w) => self.log.mark_committed_torn(txn, w as u8),
                    Admission::Dropped => unreachable!(),
                }
                let lines = self.log_append_lines(16);
                let accepted = self.drain_lines(now, lines);
                self.traffic.count_log_flush(1, 16, lines);
                accepted
            }
        }
    }

    /// Truncates committed records from the durable log (the post-commit
    /// head-pointer advance). A numbered persist event: when a crash is
    /// armed and trips here, the log keeps its committed records — the
    /// head pointer never reached the persistence domain.
    pub fn truncate_log(&mut self) {
        // Head updates are single-word and untearable, so the gate
        // only ever answers Full or Dropped here.
        if self.accept(PersistEvent::LogTruncate) == Admission::Full {
            self.log.truncate_committed();
        }
    }

    /// Resets the whole durable log region (the post-recovery head/tail
    /// reset). A numbered persist event, like
    /// [`truncate_log`](Self::truncate_log).
    pub fn reset_log(&mut self) {
        if self.accept(PersistEvent::LogTruncate) == Admission::Full {
            self.log.reset();
        }
    }

    /// Updates the PM write latency (Figure 12 sweep) mid-model.
    pub fn set_write_latency_cycles(&mut self, cycles: u64) {
        self.config.pm_write_cycles = cycles;
        self.wpq.set_write_cycles(cycles);
    }

    /// Simulates a power failure: the WPQ drains (ADR), caches are lost
    /// by the caller. The durable image and log region are the surviving
    /// state; the queue model is reset for the post-recovery run.
    pub fn crash(&mut self) {
        // Everything accepted by the WPQ already updated `image`, so
        // draining needs no data movement here.
        self.wpq.reset();
        // The armed crash (if any) has happened; recovery's own persists
        // must reach the device.
        self.crash_at_event = None;
        self.crash_tripped = false;
        // Post-crash media corruption (poison + bit flips) applies
        // exactly once per armed crash, deterministically from the
        // plan seed.
        if self.faults_pending {
            self.faults_pending = false;
            self.apply_media_faults();
        }
    }

    /// Injects the plan's post-crash corruption: poisons
    /// `plan.poison_lines` touched image lines (detectably unreadable)
    /// and flips one payload bit in `plan.flip_records` durable log
    /// records (exposed by their CRC mismatch). Every choice derives
    /// from `plan.seed` and the frozen event count, so the same
    /// `(trace, k, plan)` corrupts identically on every replay.
    fn apply_media_faults(&mut self) {
        let base = mix64(self.plan.seed ^ mix64(self.event_count));
        let lines = self.image.touched_line_addrs();
        if !lines.is_empty() {
            for i in 0..self.plan.poison_lines as u64 {
                let la = lines[(mix64(base ^ (0x5050 + i)) % lines.len() as u64) as usize];
                if self.poisoned.insert(la) {
                    self.fault_poisoned.push(la);
                }
            }
            self.fault_poisoned.sort_unstable();
        }
        let n = self.log.len();
        if n > 0 {
            for i in 0..self.plan.flip_records as u64 {
                let idx = (mix64(base ^ (0xF11F + i)) % n as u64) as usize;
                let bit = mix64(base ^ (0xB17 + i)) as usize;
                if let Some(covered) = self.log.corrupt_record_bit(idx, bit) {
                    self.fault_flipped.extend(covered);
                }
            }
            self.fault_flipped.sort_unstable();
            self.fault_flipped.dedup();
        }
    }

    /// `true` when `addr`'s line is currently poisoned: a read of it
    /// is detectably lost (uncorrectable ECC), not silently wrong.
    pub fn line_poisoned(&self, addr: PmAddr) -> bool {
        !self.poisoned.is_empty() && self.poisoned.contains(&addr.line().raw())
    }

    /// Line addresses currently poisoned, in address order.
    pub fn poisoned_line_addrs(&self) -> Vec<u64> {
        self.poisoned.iter().copied().collect()
    }

    /// Clears poison from `addr`'s line without rewriting it (the
    /// recovery scrub path). Returns whether the line was poisoned.
    pub fn clear_poison(&mut self, addr: PmAddr) -> bool {
        self.poisoned.remove(&addr.line().raw())
    }

    /// Ground truth for sweep oracles: lines the plan poisoned at the
    /// last armed crash (sorted), regardless of later salvage.
    pub fn fault_poisoned_lines(&self) -> &[u64] {
        &self.fault_poisoned
    }

    /// Ground truth for sweep oracles: lines covered by log records
    /// the plan bit-flipped at the last armed crash (sorted, deduped).
    pub fn fault_flipped_lines(&self) -> &[u64] {
        &self.fault_flipped
    }

    /// Consumes the device returning its durable state (image and log).
    pub fn into_durable_state(self) -> (PmSpace, LogRegion) {
        (self.image, self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> PmDevice {
        PmDevice::new(PmConfig::default().with_capacity(1 << 20))
    }

    #[test]
    fn persist_line_updates_image_and_traffic() {
        let mut d = dev();
        let t = d.persist_line(0, PmAddr::new(128), &[9u8; 64]);
        assert_eq!(t, 8); // accept latency
        assert_eq!(d.image().read_u64(PmAddr::new(128)), 0x0909090909090909);
        assert_eq!(d.traffic().data_lines, 1);
        assert_eq!(d.traffic().data_bytes, 64);
    }

    #[test]
    fn log_pack_records_and_counts() {
        let mut d = dev();
        let entries = vec![
            LogFlushEntry {
                txn: 7,
                addr: PmAddr::new(0),
                payload: PayloadBuf::from_slice(&[1; 8]),
            },
            LogFlushEntry {
                txn: 7,
                addr: PmAddr::new(8),
                payload: PayloadBuf::from_slice(&[2; 8]),
            },
        ];
        d.persist_log_pack(0, &entries);
        assert_eq!(d.log().records_of(7).count(), 2);
        assert_eq!(d.traffic().log_records, 2);
        assert_eq!(d.traffic().log_bytes, 32); // 2 × (8 payload + 8 addr)
        assert_eq!(d.traffic().wpq_lines, 1);
    }

    #[test]
    fn commit_marker_marks_txn() {
        let mut d = dev();
        assert!(!d.log().is_committed(3));
        d.persist_commit_marker(0, 3);
        assert!(d.log().is_committed(3));
        // A marker is two words: sequence + CRC32 tag.
        assert_eq!(d.traffic().log_bytes, 16);
        // A 16-byte marker from an empty tail opens one media line;
        // the next marker is absorbed by it (32 ≤ 64 bytes).
        assert_eq!(d.traffic().wpq_lines, 1);
        d.persist_commit_marker(0, 4);
        assert_eq!(d.traffic().wpq_lines, 1);
    }

    #[test]
    fn wpq_backpressure_visible_through_device() {
        let mut d = dev();
        let mut t = 0;
        // Fill the queue then keep pushing; later pushes must stall.
        for _ in 0..32 {
            t = d.persist_line(t, PmAddr::new(0), &[0u8; 64]);
        }
        assert!(d.wpq_stall_cycles() > 0, "sustained persists must stall");
    }

    #[test]
    fn out_of_band_setup_is_free() {
        let mut d = dev();
        d.image_mut().write_u64(PmAddr::new(0), 42);
        assert_eq!(d.traffic().total_bytes(), 0);
        assert_eq!(d.image().read_u64(PmAddr::new(0)), 42);
    }

    #[test]
    fn crash_preserves_image_and_log() {
        let mut d = dev();
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        d.persist_commit_marker(10, 1);
        d.crash();
        assert_eq!(d.image().read_u64(PmAddr::new(0)), 0x0101010101010101);
        assert!(d.log().is_committed(1));
    }

    #[test]
    fn latency_update_applies() {
        let mut d = dev();
        d.set_write_latency_cycles(4600);
        assert_eq!(d.config().pm_write_cycles, 4600);
    }

    #[test]
    #[should_panic(expected = "empty log pack")]
    fn empty_pack_rejected() {
        let mut d = dev();
        d.persist_log_pack(0, &[]);
    }

    #[test]
    fn events_are_numbered_monotonically() {
        let mut d = dev();
        assert_eq!(d.event_count(), 0);
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        assert_eq!(d.event_count(), 1);
        d.persist_commit_marker(0, 1);
        d.truncate_log();
        assert_eq!(d.event_count(), 3);
        assert_eq!(d.events().len(), 3);
        assert_eq!(d.events()[2], PersistEvent::LogTruncate);
    }

    #[test]
    fn armed_crash_freezes_durable_prefix() {
        let mut d = dev();
        d.arm_crash_at_event(1);
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        assert!(!d.crash_tripped());
        // Event 2 onward is dropped: image, log and traffic freeze.
        d.persist_line(0, PmAddr::new(64), &[2u8; 64]);
        d.persist_commit_marker(0, 1);
        assert!(d.crash_tripped());
        assert_eq!(d.event_count(), 1);
        assert_eq!(d.image().read_u64(PmAddr::new(0)), 0x0101010101010101);
        assert_eq!(d.image().read_u64(PmAddr::new(64)), 0);
        assert!(!d.log().is_committed(1));
        assert_eq!(d.traffic().data_lines, 1);
    }

    #[test]
    fn log_pack_crashes_between_records() {
        let mut d = dev();
        let entries = vec![
            LogFlushEntry {
                txn: 7,
                addr: PmAddr::new(0),
                payload: PayloadBuf::from_slice(&[1; 8]),
            },
            LogFlushEntry {
                txn: 7,
                addr: PmAddr::new(8),
                payload: PayloadBuf::from_slice(&[2; 8]),
            },
        ];
        d.arm_crash_at_event(1);
        d.persist_log_pack(0, &entries);
        assert!(d.crash_tripped());
        assert_eq!(d.log().records_of(7).count(), 1);
        assert_eq!(d.traffic().log_records, 1);
    }

    #[test]
    fn tripped_truncate_keeps_log() {
        let mut d = dev();
        d.persist_commit_marker(0, 1);
        d.arm_crash_at_event(1);
        d.truncate_log();
        assert!(d.crash_tripped());
        assert!(d.log().is_committed(1));
    }

    #[test]
    fn crash_disarms_scheduler() {
        let mut d = dev();
        d.arm_crash_at_event(0);
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        assert!(d.crash_tripped());
        d.crash();
        assert!(!d.crash_tripped());
        d.persist_line(0, PmAddr::new(0), &[3u8; 64]);
        assert_eq!(d.image().read_u64(PmAddr::new(0)), 0x0303030303030303);
    }

    #[test]
    fn disarm_without_crash() {
        let mut d = dev();
        d.arm_crash_at_event(0);
        d.disarm_crash();
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        assert!(!d.crash_tripped());
        assert_eq!(d.event_count(), 1);
    }

    // -----------------------------------------------------------------
    // Media-fault injection

    #[test]
    fn torn_data_line_lands_word_prefix() {
        let mut d = dev();
        d.persist_line(0, PmAddr::new(0), &[1u8; 64]);
        d.set_fault_plan(FaultPlan {
            tear: true,
            tear_word: Some(3),
            ..FaultPlan::NONE
        });
        d.arm_crash_at_event(2);
        d.persist_line(0, PmAddr::new(0), &[9u8; 64]);
        assert!(d.crash_tripped(), "power failed during event 2");
        assert_eq!(d.event_count(), 2, "the torn event is still counted");
        // Words 0..3 carry the new value, words 3..8 the old one.
        for w in 0..8u64 {
            let got = d.image().read_u64(PmAddr::new(w * 8));
            let want = if w < 3 {
                0x0909090909090909
            } else {
                0x0101010101010101
            };
            assert_eq!(got, want, "word {w}");
        }
    }

    #[test]
    fn torn_marker_is_uncommitted_but_traced() {
        let mut d = dev();
        d.set_fault_plan(FaultPlan {
            tear: true,
            tear_word: Some(1),
            ..FaultPlan::NONE
        });
        d.arm_crash_at_event(1);
        d.persist_commit_marker(0, 5);
        assert!(d.crash_tripped());
        assert!(!d.log().is_committed(5));
        assert!(!d.log().marker_usable(5));
        assert_eq!(d.events().len(), 1, "torn marker appears in the trace");
    }

    #[test]
    fn torn_log_record_truncates_at_validate() {
        let mut d = dev();
        let entries = vec![LogFlushEntry {
            txn: 7,
            addr: PmAddr::new(0),
            payload: PayloadBuf::from_slice(&[3; 16]),
        }];
        d.set_fault_plan(FaultPlan {
            tear: true,
            ..FaultPlan::NONE
        });
        d.arm_crash_at_event(1);
        d.persist_log_pack(0, &entries);
        assert!(d.crash_tripped());
        assert_eq!(d.log().len(), 1);
        assert!(!d.log().records()[0].is_intact());
        let v = d.log_mut().validate();
        assert_eq!(v.torn_tail_truncated, 1);
        assert!(d.log().is_empty());
    }

    #[test]
    fn poison_and_flips_apply_once_at_crash_and_replay_identically() {
        let run = || {
            let mut d = dev();
            for i in 0..4u64 {
                d.persist_line(0, PmAddr::new(i * 64), &[i as u8 + 1; 64]);
            }
            d.persist_log_pack(
                0,
                &[LogFlushEntry {
                    txn: 1,
                    addr: PmAddr::new(0),
                    payload: PayloadBuf::from_slice(&[8; 8]),
                }],
            );
            d.set_fault_plan(FaultPlan {
                seed: 77,
                poison_lines: 2,
                flip_records: 1,
                ..FaultPlan::NONE
            });
            d.arm_crash_at_event(u64::MAX);
            d.crash();
            (
                d.fault_poisoned_lines().to_vec(),
                d.fault_flipped_lines().to_vec(),
                d.log().records()[0].payload.to_vec(),
            )
        };
        let (pa, fa, ra) = run();
        let (pb, fb, rb) = run();
        assert_eq!(pa, pb);
        assert_eq!(fa, fb);
        assert_eq!(ra, rb);
        assert!(!pa.is_empty(), "poison chose among touched lines");
        assert_eq!(fa, vec![0], "the only record covers line 0");
    }

    #[test]
    fn poisoned_line_detectable_and_cleared_by_full_persist() {
        let mut d = dev();
        d.persist_line(0, PmAddr::new(64), &[1u8; 64]);
        d.set_fault_plan(FaultPlan {
            seed: 1,
            poison_lines: 1,
            ..FaultPlan::NONE
        });
        d.arm_crash_at_event(u64::MAX);
        d.crash();
        let la = PmAddr::new(d.fault_poisoned_lines()[0]);
        assert!(d.line_poisoned(la));
        assert_eq!(d.poisoned_line_addrs(), d.fault_poisoned_lines());
        d.persist_line(0, la, &[7u8; 64]);
        assert!(!d.line_poisoned(la), "rewrite re-establishes ECC");
        // Ground truth is unaffected by the salvage.
        assert_eq!(d.fault_poisoned_lines(), &[la.raw()]);
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let run = |plan: Option<FaultPlan>| {
            let mut d = dev();
            if let Some(p) = plan {
                d.set_fault_plan(p);
            }
            let mut t = 0;
            for i in 0..6u64 {
                t = d.persist_line(t, PmAddr::new(i * 64), &[i as u8; 64]);
            }
            d.arm_crash_at_event(4);
            for i in 0..6u64 {
                t = d.persist_line(t, PmAddr::new(i * 64), &[9; 64]);
            }
            d.crash();
            (t, d.event_count(), d.image().read_line(PmAddr::new(0)))
        };
        assert_eq!(run(None), run(Some(FaultPlan::NONE)));
    }
}
