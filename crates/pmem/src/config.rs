//! Timing configuration, mirroring Table III of the paper.
//!
//! All latencies are stored in *core cycles* at the configured clock
//! (2 GHz by default, so 1 ns = 2 cycles). The write-latency knob is
//! the parameter swept by the Figure 12 sensitivity study (500 ns for
//! Optane-like ADR memory up to 2300 ns for flash-backed CXL devices).

/// Timing and sizing parameters of the simulated persistent memory.
///
/// The defaults reproduce Table III: a 2 GHz core, a 512-byte (eight
/// 64-byte entries) write pending queue with 4 ns acceptance latency,
/// 150 ns read latency and 500 ns write latency.
///
/// ```
/// use slpmt_pmem::PmConfig;
/// let c = PmConfig::default();
/// assert_eq!(c.pm_write_cycles, 1000); // 500 ns at 2 GHz
/// assert_eq!(c.wpq_entries, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmConfig {
    /// Core clock in MHz; used only to document cycle conversions.
    pub clock_mhz: u64,
    /// PM medium read latency in cycles (150 ns → 300 cycles).
    pub pm_read_cycles: u64,
    /// PM medium write latency in cycles per 64-byte line drained from
    /// the WPQ (500 ns → 1000 cycles). Figure 12 sweeps this value.
    pub pm_write_cycles: u64,
    /// Latency for the WPQ to accept a line when a slot is free
    /// (4 ns → 8 cycles).
    pub wpq_accept_cycles: u64,
    /// Number of 64-byte WPQ entries (512 bytes total → 8 entries).
    pub wpq_entries: usize,
    /// Capacity of the simulated persistent address space in bytes.
    pub pm_capacity: u64,
}

impl PmConfig {
    /// Nanosecond-to-cycle conversion at the configured clock.
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        ns * self.clock_mhz / 1000
    }

    /// Returns a copy with the PM write latency set to `ns` nanoseconds,
    /// the Figure 12 sweep knob.
    #[must_use]
    pub fn with_write_latency_ns(mut self, ns: u64) -> Self {
        self.pm_write_cycles = self.ns_to_cycles(ns);
        self
    }

    /// Returns a copy with the given persistent capacity in bytes.
    #[must_use]
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.pm_capacity = bytes;
        self
    }
}

impl Default for PmConfig {
    fn default() -> Self {
        let clock_mhz = 2000; // 2 GHz (Table III)
        PmConfig {
            clock_mhz,
            pm_read_cycles: 150 * clock_mhz / 1000,  // 150 ns
            pm_write_cycles: 500 * clock_mhz / 1000, // 500 ns
            wpq_accept_cycles: 4 * clock_mhz / 1000, // 4 ns
            wpq_entries: 8,                          // 512 B / 64 B
            pm_capacity: 64 << 20,                   // 64 MiB is ample for YCSB-load
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_iii() {
        let c = PmConfig::default();
        assert_eq!(c.clock_mhz, 2000);
        assert_eq!(c.pm_read_cycles, 300);
        assert_eq!(c.pm_write_cycles, 1000);
        assert_eq!(c.wpq_accept_cycles, 8);
        assert_eq!(c.wpq_entries, 8);
    }

    #[test]
    fn ns_conversion() {
        let c = PmConfig::default();
        assert_eq!(c.ns_to_cycles(1), 2);
        assert_eq!(c.ns_to_cycles(2300), 4600);
    }

    #[test]
    fn write_latency_sweep() {
        let c = PmConfig::default().with_write_latency_ns(2300);
        assert_eq!(c.pm_write_cycles, 4600);
        // Other fields untouched.
        assert_eq!(c.pm_read_cycles, 300);
    }

    #[test]
    fn capacity_builder() {
        let c = PmConfig::default().with_capacity(1 << 20);
        assert_eq!(c.pm_capacity, 1 << 20);
    }
}
