//! The byte-addressable persistent image.
//!
//! [`PmSpace`] holds the bytes that are *durable*: what a simulated
//! crash preserves. The cache hierarchy holds newer, volatile copies of
//! lines; data only enters the image when it is persisted through the
//! write pending queue (Intel ADR semantics — reaching the WPQ counts
//! as durable, and the WPQ itself drains on power failure).
//!
//! Storage is a two-level page directory of contiguous 64-KiB frame
//! arenas: a line access is two indexed loads and a `memcpy`, with no
//! hashing and no per-line allocation on the hot path. Memory still
//! scales with the touched footprint (pages materialise on first
//! write), and a per-page line bitmap preserves the exact
//! touched-lines accounting of the earlier per-frame map.

use crate::addr::{PmAddr, LINE_BYTES};

/// log2 of the page size: 64 KiB pages, i.e. 1024 lines per page.
const PAGE_SHIFT: u32 = 16;
/// Bytes per page (one contiguous frame arena).
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;
/// Lines per page.
const PAGE_LINES: usize = PAGE_BYTES / LINE_BYTES;
/// Pages per second-level directory (so one directory spans 16 MiB).
const DIR_PAGES: usize = 256;
/// Bytes spanned by one second-level directory.
const DIR_SPAN: u64 = (PAGE_BYTES * DIR_PAGES) as u64;

/// One materialised 64-KiB arena plus its touched-line bitmap.
struct Page {
    bytes: Box<[u8; PAGE_BYTES]>,
    touched: [u64; PAGE_LINES / 64],
}

impl Page {
    fn zeroed() -> Box<Page> {
        let bytes: Box<[u8; PAGE_BYTES]> = vec![0u8; PAGE_BYTES]
            .into_boxed_slice()
            .try_into()
            .expect("sized allocation");
        Box::new(Page {
            bytes,
            touched: [0; PAGE_LINES / 64],
        })
    }

    /// Marks lines `first..=last` (page-local indexes) as written,
    /// returning how many were newly touched.
    fn mark_lines(&mut self, first: usize, last: usize) -> usize {
        let mut newly = 0;
        for line in first..=last {
            let (w, b) = (line / 64, line % 64);
            if self.touched[w] & (1 << b) == 0 {
                self.touched[w] |= 1 << b;
                newly += 1;
            }
        }
        newly
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            bytes: self.bytes.clone(),
            touched: self.touched,
        }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let touched: u32 = self.touched.iter().map(|w| w.count_ones()).sum();
        write!(f, "Page {{ touched_lines: {touched} }}")
    }
}

type Dir = Vec<Option<Box<Page>>>;

/// The durable byte image of the persistent-memory device.
///
/// Reads of never-written bytes return zero, matching a zero-initialised
/// device.
///
/// ```
/// use slpmt_pmem::{PmSpace, PmAddr};
/// let mut s = PmSpace::new(1 << 20);
/// s.write_u64(PmAddr::new(64), 0xDEAD_BEEF);
/// assert_eq!(s.read_u64(PmAddr::new(64)), 0xDEAD_BEEF);
/// assert_eq!(s.read_u64(PmAddr::new(128)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PmSpace {
    dirs: Vec<Option<Dir>>,
    capacity: u64,
    touched: usize,
}

impl PmSpace {
    /// Creates an empty (all-zero) space of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let n_dirs = capacity.div_ceil(DIR_SPAN) as usize;
        PmSpace {
            dirs: (0..n_dirs).map(|_| None).collect(),
            capacity,
            touched: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of distinct cache-line frames ever written.
    pub fn touched_lines(&self) -> usize {
        self.touched
    }

    /// Line addresses of every touched cache-line frame, in address
    /// order (the deterministic target set for media-fault injection).
    pub fn touched_line_addrs(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.touched);
        for (di, dir) in self.dirs.iter().enumerate() {
            let Some(dir) = dir else { continue };
            for (pi, page) in dir.iter().enumerate() {
                let Some(page) = page else { continue };
                let base = di as u64 * DIR_SPAN + ((pi as u64) << PAGE_SHIFT);
                for (wi, &word) in page.touched.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as u64;
                        out.push(base + (wi as u64 * 64 + b) * LINE_BYTES as u64);
                        bits &= bits - 1;
                    }
                }
            }
        }
        out
    }

    fn check(&self, addr: PmAddr, len: usize) {
        assert!(
            addr.raw() + len as u64 <= self.capacity,
            "PM access out of range: {addr} + {len} > capacity {}",
            self.capacity
        );
    }

    #[inline]
    fn page(&self, addr: u64) -> Option<&Page> {
        let dir = self.dirs[(addr / DIR_SPAN) as usize].as_ref()?;
        dir[(addr % DIR_SPAN) as usize >> PAGE_SHIFT].as_deref()
    }

    #[inline]
    fn page_mut(&mut self, addr: u64) -> &mut Page {
        let dir = self.dirs[(addr / DIR_SPAN) as usize]
            .get_or_insert_with(|| (0..DIR_PAGES).map(|_| None).collect());
        dir[(addr % DIR_SPAN) as usize >> PAGE_SHIFT].get_or_insert_with(Page::zeroed)
    }

    /// Materializes the backing pages for `[base, base + bytes)` up
    /// front (clamped to the capacity). Pages normally appear lazily on
    /// first write; pre-faulting an arena a run is known to use moves
    /// those host allocations out of the measured loop — and, for
    /// parallel sharded runs, out of the phase where every shard
    /// allocates concurrently. Purely a host-side optimization: a
    /// pre-faulted page reads as zeros exactly like an absent one, so
    /// simulated behaviour (including `touched_lines`) is unchanged.
    pub fn prefault(&mut self, base: u64, bytes: u64) {
        let end = (base + bytes).min(self.capacity);
        let mut a = base & !(PAGE_BYTES as u64 - 1);
        while a < end {
            self.page_mut(a);
            a += PAGE_BYTES as u64;
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn read(&self, addr: PmAddr, buf: &mut [u8]) {
        self.check(addr, buf.len());
        let mut cursor = addr.raw();
        let mut filled = 0;
        while filled < buf.len() {
            let off = (cursor % PAGE_BYTES as u64) as usize;
            let take = (PAGE_BYTES - off).min(buf.len() - filled);
            match self.page(cursor) {
                Some(page) => {
                    buf[filled..filled + take].copy_from_slice(&page.bytes[off..off + take])
                }
                None => buf[filled..filled + take].fill(0),
            }
            filled += take;
            cursor += take as u64;
        }
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn write(&mut self, addr: PmAddr, data: &[u8]) {
        self.check(addr, data.len());
        let mut cursor = addr.raw();
        let mut written = 0;
        while written < data.len() {
            let off = (cursor % PAGE_BYTES as u64) as usize;
            let take = (PAGE_BYTES - off).min(data.len() - written);
            let newly = {
                let page = self.page_mut(cursor);
                page.bytes[off..off + take].copy_from_slice(&data[written..written + take]);
                page.mark_lines(off / LINE_BYTES, (off + take - 1) / LINE_BYTES)
            };
            self.touched += newly;
            written += take;
            cursor += take as u64;
        }
    }

    /// Reads one 8-byte little-endian word at a word-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned or out of range.
    pub fn read_u64(&self, addr: PmAddr) -> u64 {
        assert!(addr.is_word_aligned(), "unaligned word read at {addr}");
        self.check(addr, 8);
        match self.page(addr.raw()) {
            Some(page) => {
                let off = (addr.raw() % PAGE_BYTES as u64) as usize;
                u64::from_le_bytes(page.bytes[off..off + 8].try_into().expect("word"))
            }
            None => 0,
        }
    }

    /// Writes one 8-byte little-endian word at a word-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned or out of range.
    pub fn write_u64(&mut self, addr: PmAddr, value: u64) {
        assert!(addr.is_word_aligned(), "unaligned word write at {addr}");
        self.check(addr, 8);
        let off = (addr.raw() % PAGE_BYTES as u64) as usize;
        let newly = {
            let page = self.page_mut(addr.raw());
            page.bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
            page.mark_lines(off / LINE_BYTES, off / LINE_BYTES)
        };
        self.touched += newly;
    }

    /// Reads a whole 64-byte line at a line-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned or out of range.
    pub fn read_line(&self, addr: PmAddr) -> [u8; LINE_BYTES] {
        assert!(addr.is_line_aligned(), "unaligned line read at {addr}");
        self.check(addr, LINE_BYTES);
        match self.page(addr.raw()) {
            Some(page) => {
                let off = (addr.raw() % PAGE_BYTES as u64) as usize;
                page.bytes[off..off + LINE_BYTES].try_into().expect("line")
            }
            None => [0; LINE_BYTES],
        }
    }

    /// Writes a whole 64-byte line at a line-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned or out of range.
    pub fn write_line(&mut self, addr: PmAddr, data: &[u8; LINE_BYTES]) {
        assert!(addr.is_line_aligned(), "unaligned line write at {addr}");
        self.check(addr, LINE_BYTES);
        let off = (addr.raw() % PAGE_BYTES as u64) as usize;
        let newly = {
            let page = self.page_mut(addr.raw());
            page.bytes[off..off + LINE_BYTES].copy_from_slice(data);
            page.mark_lines(off / LINE_BYTES, off / LINE_BYTES)
        };
        self.touched += newly;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let s = PmSpace::new(1 << 16);
        assert_eq!(s.read_u64(PmAddr::new(0)), 0);
        assert_eq!(s.read_line(PmAddr::new(1024)), [0u8; 64]);
        assert_eq!(s.touched_lines(), 0);
    }

    /// Pre-faulting is simulation-invisible: reads stay zero, no line
    /// counts as touched (so fault-injection target sets are
    /// unchanged), and the range clamps to capacity.
    #[test]
    fn prefault_is_invisible_to_simulated_state() {
        let mut s = PmSpace::new(1 << 20);
        s.prefault(0x1000, 1 << 21); // deliberately past capacity
        assert_eq!(s.touched_lines(), 0);
        assert!(s.touched_line_addrs().is_empty());
        assert_eq!(s.read_u64(PmAddr::new(0x1000)), 0);
        s.write_u64(PmAddr::new(0x1000), 7);
        assert_eq!(s.touched_lines(), 1);
    }

    #[test]
    fn word_round_trip() {
        let mut s = PmSpace::new(1 << 16);
        s.write_u64(PmAddr::new(8), 42);
        s.write_u64(PmAddr::new(16), u64::MAX);
        assert_eq!(s.read_u64(PmAddr::new(8)), 42);
        assert_eq!(s.read_u64(PmAddr::new(16)), u64::MAX);
        // Neighbours untouched.
        assert_eq!(s.read_u64(PmAddr::new(0)), 0);
        assert_eq!(s.read_u64(PmAddr::new(24)), 0);
    }

    #[test]
    fn cross_line_write_and_read() {
        let mut s = PmSpace::new(1 << 16);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        s.write(PmAddr::new(30), &data);
        let mut back = vec![0u8; 200];
        s.read(PmAddr::new(30), &mut back);
        assert_eq!(back, data);
        assert_eq!(s.touched_lines(), 4); // bytes 30..230 span lines 0..=3
    }

    #[test]
    fn line_round_trip() {
        let mut s = PmSpace::new(1 << 16);
        let line = [7u8; 64];
        s.write_line(PmAddr::new(128), &line);
        assert_eq!(s.read_line(PmAddr::new(128)), line);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut s = PmSpace::new(1 << 20);
        let data: Vec<u8> = (0..512).map(|i| (i * 7) as u8).collect();
        let addr = PmAddr::new(PAGE_BYTES as u64 - 100); // straddles a page boundary
        s.write(addr, &data);
        let mut back = vec![0u8; 512];
        s.read(addr, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn cross_directory_write_and_read() {
        let mut s = PmSpace::new(DIR_SPAN * 2);
        let data = [0xAB_u8; 96];
        let addr = PmAddr::new(DIR_SPAN - 32); // straddles a directory boundary
        s.write(addr, &data);
        let mut back = [0u8; 96];
        s.read(addr, &mut back);
        assert_eq!(back, data);
        assert_eq!(s.touched_lines(), 2);
    }

    #[test]
    fn touched_line_addrs_enumerates_in_order() {
        let mut s = PmSpace::new(DIR_SPAN * 2);
        s.write_u64(PmAddr::new(DIR_SPAN + 64), 1); // second directory
        s.write_u64(PmAddr::new(128), 2);
        s.write_u64(PmAddr::new(0), 3);
        assert_eq!(s.touched_line_addrs(), vec![0, 128, DIR_SPAN + 64]);
        assert_eq!(s.touched_line_addrs().len(), s.touched_lines());
    }

    #[test]
    fn touched_lines_counts_each_line_once() {
        let mut s = PmSpace::new(1 << 20);
        for _ in 0..3 {
            s.write_u64(PmAddr::new(64), 9);
            s.write_line(PmAddr::new(64), &[1; 64]);
        }
        assert_eq!(s.touched_lines(), 1);
        s.write_u64(PmAddr::new(0), 1);
        assert_eq!(s.touched_lines(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn capacity_enforced() {
        let mut s = PmSpace::new(128);
        s.write_u64(PmAddr::new(128), 1);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_word_rejected() {
        let s = PmSpace::new(1 << 16);
        let _ = s.read_u64(PmAddr::new(3));
    }

    #[test]
    fn clone_is_snapshot() {
        let mut s = PmSpace::new(1 << 16);
        s.write_u64(PmAddr::new(0), 1);
        let snap = s.clone();
        s.write_u64(PmAddr::new(0), 2);
        assert_eq!(snap.read_u64(PmAddr::new(0)), 1);
        assert_eq!(s.read_u64(PmAddr::new(0)), 2);
    }
}
