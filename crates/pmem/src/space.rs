//! The byte-addressable persistent image.
//!
//! [`PmSpace`] holds the bytes that are *durable*: what a simulated
//! crash preserves. The cache hierarchy holds newer, volatile copies of
//! lines; data only enters the image when it is persisted through the
//! write pending queue (Intel ADR semantics — reaching the WPQ counts
//! as durable, and the WPQ itself drains on power failure).
//!
//! Storage is a sparse map of 64-byte frames so that a 64-MiB address
//! space costs memory proportional to its touched footprint only.

use crate::addr::{PmAddr, LINE_BYTES};
use std::collections::HashMap;

/// The durable byte image of the persistent-memory device.
///
/// Reads of never-written bytes return zero, matching a zero-initialised
/// device.
///
/// ```
/// use slpmt_pmem::{PmSpace, PmAddr};
/// let mut s = PmSpace::new(1 << 20);
/// s.write_u64(PmAddr::new(64), 0xDEAD_BEEF);
/// assert_eq!(s.read_u64(PmAddr::new(64)), 0xDEAD_BEEF);
/// assert_eq!(s.read_u64(PmAddr::new(128)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PmSpace {
    frames: HashMap<u64, [u8; LINE_BYTES]>,
    capacity: u64,
}

impl PmSpace {
    /// Creates an empty (all-zero) space of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        PmSpace {
            frames: HashMap::new(),
            capacity,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of distinct cache-line frames ever written.
    pub fn touched_lines(&self) -> usize {
        self.frames.len()
    }

    fn check(&self, addr: PmAddr, len: usize) {
        assert!(
            addr.raw() + len as u64 <= self.capacity,
            "PM access out of range: {addr} + {len} > capacity {}",
            self.capacity
        );
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn read(&self, addr: PmAddr, buf: &mut [u8]) {
        self.check(addr, buf.len());
        let mut cursor = addr.raw();
        let mut filled = 0;
        while filled < buf.len() {
            let line = cursor & !(LINE_BYTES as u64 - 1);
            let off = (cursor - line) as usize;
            let take = (LINE_BYTES - off).min(buf.len() - filled);
            match self.frames.get(&line) {
                Some(frame) => buf[filled..filled + take].copy_from_slice(&frame[off..off + take]),
                None => buf[filled..filled + take].fill(0),
            }
            filled += take;
            cursor += take as u64;
        }
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn write(&mut self, addr: PmAddr, data: &[u8]) {
        self.check(addr, data.len());
        let mut cursor = addr.raw();
        let mut written = 0;
        while written < data.len() {
            let line = cursor & !(LINE_BYTES as u64 - 1);
            let off = (cursor - line) as usize;
            let take = (LINE_BYTES - off).min(data.len() - written);
            let frame = self.frames.entry(line).or_insert([0; LINE_BYTES]);
            frame[off..off + take].copy_from_slice(&data[written..written + take]);
            written += take;
            cursor += take as u64;
        }
    }

    /// Reads one 8-byte little-endian word at a word-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned or out of range.
    pub fn read_u64(&self, addr: PmAddr) -> u64 {
        assert!(addr.is_word_aligned(), "unaligned word read at {addr}");
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes one 8-byte little-endian word at a word-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned or out of range.
    pub fn write_u64(&mut self, addr: PmAddr, value: u64) {
        assert!(addr.is_word_aligned(), "unaligned word write at {addr}");
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a whole 64-byte line at a line-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned or out of range.
    pub fn read_line(&self, addr: PmAddr) -> [u8; LINE_BYTES] {
        assert!(addr.is_line_aligned(), "unaligned line read at {addr}");
        self.check(addr, LINE_BYTES);
        self.frames
            .get(&addr.raw())
            .copied()
            .unwrap_or([0; LINE_BYTES])
    }

    /// Writes a whole 64-byte line at a line-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not line-aligned or out of range.
    pub fn write_line(&mut self, addr: PmAddr, data: &[u8; LINE_BYTES]) {
        assert!(addr.is_line_aligned(), "unaligned line write at {addr}");
        self.check(addr, LINE_BYTES);
        self.frames.insert(addr.raw(), *data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let s = PmSpace::new(1 << 16);
        assert_eq!(s.read_u64(PmAddr::new(0)), 0);
        assert_eq!(s.read_line(PmAddr::new(1024)), [0u8; 64]);
        assert_eq!(s.touched_lines(), 0);
    }

    #[test]
    fn word_round_trip() {
        let mut s = PmSpace::new(1 << 16);
        s.write_u64(PmAddr::new(8), 42);
        s.write_u64(PmAddr::new(16), u64::MAX);
        assert_eq!(s.read_u64(PmAddr::new(8)), 42);
        assert_eq!(s.read_u64(PmAddr::new(16)), u64::MAX);
        // Neighbours untouched.
        assert_eq!(s.read_u64(PmAddr::new(0)), 0);
        assert_eq!(s.read_u64(PmAddr::new(24)), 0);
    }

    #[test]
    fn cross_line_write_and_read() {
        let mut s = PmSpace::new(1 << 16);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        s.write(PmAddr::new(30), &data);
        let mut back = vec![0u8; 200];
        s.read(PmAddr::new(30), &mut back);
        assert_eq!(back, data);
        assert_eq!(s.touched_lines(), 4); // bytes 30..230 span lines 0..=3
    }

    #[test]
    fn line_round_trip() {
        let mut s = PmSpace::new(1 << 16);
        let line = [7u8; 64];
        s.write_line(PmAddr::new(128), &line);
        assert_eq!(s.read_line(PmAddr::new(128)), line);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn capacity_enforced() {
        let mut s = PmSpace::new(128);
        s.write_u64(PmAddr::new(128), 1);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_word_rejected() {
        let s = PmSpace::new(1 << 16);
        let _ = s.read_u64(PmAddr::new(3));
    }

    #[test]
    fn clone_is_snapshot() {
        let mut s = PmSpace::new(1 << 16);
        s.write_u64(PmAddr::new(0), 1);
        let snap = s.clone();
        s.write_u64(PmAddr::new(0), 2);
        assert_eq!(snap.read_u64(PmAddr::new(0)), 1);
        assert_eq!(s.read_u64(PmAddr::new(0)), 2);
    }
}
