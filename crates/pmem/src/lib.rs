//! Persistent-memory device model for the SLPMT simulator.
//!
//! This crate provides the *memory side* of the simulated machine:
//!
//! * [`addr`] — strongly-typed persistent-memory addresses and the
//!   line/word geometry shared by the whole simulator (64-byte cache
//!   lines, 8-byte words).
//! * [`config`] — timing parameters mirroring Table III of the paper
//!   (2 GHz core, 150 ns PM read, 500 ns PM write, 512-byte write
//!   pending queue with 4 ns acceptance latency).
//! * [`space`] — the byte-addressable persistent image: the state that
//!   survives a simulated crash.
//! * [`wpq`] — Intel-ADR-style *write pending queue*: data is durable
//!   once accepted by the queue, which drains serially to the PM medium
//!   and exerts backpressure when full.
//! * [`device`] — [`device::PmDevice`], tying image + WPQ +
//!   traffic accounting together.
//! * [`heap`] — a first-fit persistent heap allocator used by the
//!   durable data-structure workloads, with the mark/rebuild interface
//!   the post-crash garbage collector needs (paper §IV-B, Pattern 1).
//! * [`log_region`] — the undo/redo log area layout: per-transaction
//!   record sequences and commit markers, as persisted through the WPQ.
//! * [`stats`] — write-traffic counters split into data vs. log bytes,
//!   the quantity behind Figures 8, 9 and 11 of the paper.
//!
//! The device model is deliberately a *cost-attribution* simulator
//! rather than a full out-of-order pipeline: the paper's results are
//! first-order functions of PM write traffic and persist-ordering
//! stalls, both of which this crate models directly (see DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use slpmt_pmem::{config::PmConfig, device::PmDevice, addr::PmAddr};
//!
//! let mut dev = PmDevice::new(PmConfig::default());
//! let line = PmAddr::new(0x1000);
//! // Persist one cache line worth of data at simulated time 0.
//! dev.persist_line(0, line, &[0xAB; 64]);
//! assert_eq!(dev.image().read_u64(PmAddr::new(0x1000)), 0xABAB_ABAB_ABAB_ABABu64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod device;
pub mod fault;
pub mod heap;
pub mod log_region;
pub mod payload;
pub mod space;
pub mod stats;
pub mod wpq;

pub use addr::{PmAddr, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
pub use config::PmConfig;
pub use device::PmDevice;
pub use device::{LogFlushEntry, PersistEvent};
pub use fault::FaultPlan;
pub use heap::PmHeap;
pub use log_region::{LogRegion, LogValidation, MarkerState, PersistedRecord, RecordIntegrity};
pub use payload::{PayloadBuf, PAYLOAD_CAP};
pub use space::PmSpace;
pub use stats::WriteTraffic;
pub use wpq::WritePendingQueue;
