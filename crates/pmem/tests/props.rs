//! Property tests for the PM device substrate.

use proptest::prelude::*;
use slpmt_pmem::{PmAddr, PmHeap, PmSpace, WritePendingQueue};
use std::collections::BTreeMap;

proptest! {
    /// PmSpace agrees with a flat byte-vector model under random
    /// writes and reads of random sizes and alignments.
    #[test]
    fn space_matches_flat_model(
        writes in prop::collection::vec((0u64..4000, prop::collection::vec(any::<u8>(), 1..130)), 1..40),
        probes in prop::collection::vec((0u64..4000, 1usize..130), 1..20),
    ) {
        let mut space = PmSpace::new(8192);
        let mut model = vec![0u8; 8192];
        for (addr, data) in &writes {
            space.write(PmAddr::new(*addr), data);
            model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        for (addr, len) in &probes {
            let mut buf = vec![0u8; *len];
            space.read(PmAddr::new(*addr), &mut buf);
            prop_assert_eq!(&buf[..], &model[*addr as usize..*addr as usize + len]);
        }
    }

    /// WPQ timing is monotone and never exceeds its occupancy bound.
    #[test]
    fn wpq_is_monotone_and_bounded(
        gaps in prop::collection::vec(0u64..3000, 1..120),
        entries in 1usize..16,
        write_cycles in 1u64..5000,
    ) {
        let mut q = WritePendingQueue::with_banks(entries, write_cycles, 8, 2);
        let mut now = 0;
        let mut last_accept = 0;
        let _ = ();
        for gap in gaps {
            now += gap;
            let r = q.push(now);
            prop_assert!(r.accepted_at >= now, "acceptance after request");
            prop_assert!(r.accepted_at >= last_accept, "acceptance monotone");
            prop_assert!(r.drained_at > r.accepted_at, "drain after acceptance");
            prop_assert!(q.occupancy(r.accepted_at) <= entries, "bounded occupancy");
            last_accept = r.accepted_at;

            now = r.accepted_at;
        }
    }

    /// Heap allocations are disjoint, contained in the arena, and a
    /// rebuild keeps exactly the reachable set.
    #[test]
    fn heap_allocations_disjoint_and_rebuildable(
        sizes in prop::collection::vec(1u64..200, 1..60),
        keep_mask in prop::collection::vec(any::<bool>(), 60),
    ) {
        let base = 0x1000u64;
        let len = 64 * 1024;
        let mut heap = PmHeap::new(PmAddr::new(base), len);
        let mut allocs: BTreeMap<u64, u64> = BTreeMap::new();
        for size in &sizes {
            let a = heap.alloc(*size).expect("arena large enough");
            let real = heap.allocation_size(a).unwrap();
            prop_assert!(a.raw() >= base && a.raw() + real <= base + len, "contained");
            for (&start, &sz) in &allocs {
                prop_assert!(a.raw() + real <= start || a.raw() >= start + sz, "disjoint");
            }
            allocs.insert(a.raw(), real);
        }
        let keep: Vec<PmAddr> = allocs
            .keys()
            .zip(keep_mask.iter())
            .filter(|(_, &k)| k)
            .map(|(&a, _)| PmAddr::new(a))
            .collect();
        let reclaimed = heap.rebuild(&keep);
        prop_assert_eq!(reclaimed, allocs.len() - keep.len());
        prop_assert_eq!(heap.live_count(), keep.len());
        for a in &keep {
            prop_assert!(heap.is_live(*a));
        }
        // The reclaimed space is reusable (the dense first-fit layout
        // leaves a large contiguous tail after the rebuild).
        prop_assert!(heap.alloc(4096).is_some());
    }
}
