//! Randomized property tests for the PM device substrate, driven by
//! the in-repo deterministic PRNG (the environment is hermetic, so
//! `proptest` is unavailable; each test runs many seeded cases and
//! reports the failing case seed on panic).

use slpmt_pmem::{PmAddr, PmHeap, PmSpace, WritePendingQueue};
use slpmt_prng::SimRng;
use std::collections::BTreeMap;

/// PmSpace agrees with a flat byte-vector model under random writes
/// and reads of random sizes and alignments.
#[test]
fn space_matches_flat_model() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x5AACE ^ case);
        let mut space = PmSpace::new(8192);
        let mut model = vec![0u8; 8192];
        for _ in 0..rng.gen_usize(1..40) {
            let addr = rng.gen_range(0..4000);
            let mut data = vec![0u8; rng.gen_usize(1..130)];
            rng.fill_bytes(&mut data);
            space.write(PmAddr::new(addr), &data);
            model[addr as usize..addr as usize + data.len()].copy_from_slice(&data);
        }
        for _ in 0..rng.gen_usize(1..20) {
            let addr = rng.gen_range(0..4000) as usize;
            let len = rng.gen_usize(1..130);
            let mut buf = vec![0u8; len];
            space.read(PmAddr::new(addr as u64), &mut buf);
            assert_eq!(&buf[..], &model[addr..addr + len], "case {case}");
        }
    }
}

/// WPQ timing is monotone and never exceeds its occupancy bound.
#[test]
fn wpq_is_monotone_and_bounded() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x3009 ^ case);
        let entries = rng.gen_usize(1..16);
        let write_cycles = rng.gen_range(1..5000);
        let mut q = WritePendingQueue::with_banks(entries, write_cycles, 8, 2);
        let mut now = 0;
        let mut last_accept = 0;
        for _ in 0..rng.gen_usize(1..120) {
            now += rng.gen_range(0..3000);
            let r = q.push(now);
            assert!(
                r.accepted_at >= now,
                "case {case}: acceptance after request"
            );
            assert!(
                r.accepted_at >= last_accept,
                "case {case}: acceptance monotone"
            );
            assert!(
                r.drained_at > r.accepted_at,
                "case {case}: drain after acceptance"
            );
            assert!(
                q.occupancy(r.accepted_at) <= entries,
                "case {case}: bounded occupancy"
            );
            last_accept = r.accepted_at;
            now = r.accepted_at;
        }
    }
}

/// Heap allocations are disjoint, contained in the arena, and a
/// rebuild keeps exactly the reachable set.
#[test]
fn heap_allocations_disjoint_and_rebuildable() {
    for case in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(0x4EA9 ^ case);
        let base = 0x1000u64;
        let len = 64 * 1024;
        let mut heap = PmHeap::new(PmAddr::new(base), len);
        let mut allocs: BTreeMap<u64, u64> = BTreeMap::new();
        for _ in 0..rng.gen_usize(1..60) {
            let size = rng.gen_range(1..200);
            let a = heap.alloc(size).expect("arena large enough");
            let real = heap.allocation_size(a).unwrap();
            assert!(
                a.raw() >= base && a.raw() + real <= base + len,
                "case {case}: contained"
            );
            for (&start, &sz) in &allocs {
                assert!(
                    a.raw() + real <= start || a.raw() >= start + sz,
                    "case {case}: disjoint"
                );
            }
            allocs.insert(a.raw(), real);
        }
        let keep: Vec<PmAddr> = allocs
            .keys()
            .filter(|_| rng.gen_bool(0.5))
            .map(|&a| PmAddr::new(a))
            .collect();
        let reclaimed = heap.rebuild(&keep);
        assert_eq!(reclaimed, allocs.len() - keep.len(), "case {case}");
        assert_eq!(heap.live_count(), keep.len(), "case {case}");
        for a in &keep {
            assert!(heap.is_live(*a), "case {case}");
        }
        // The reclaimed space is reusable (the dense first-fit layout
        // leaves a large contiguous tail after the rebuild).
        assert!(heap.alloc(4096).is_some(), "case {case}");
    }
}

/// The page-directory `PmSpace` must be observably identical to the
/// per-line hash-map it replaced. The reference model here *is* that
/// old representation: a `HashMap<line, [u8; 64]>` where absent lines
/// read as zero and `touched_lines` counts map entries.
#[test]
fn space_matches_hashmap_reference_model() {
    use std::collections::HashMap;

    const CAP: u64 = 1 << 20; // spans 16 pages of the directory

    #[derive(Clone, Default)]
    struct Model {
        lines: HashMap<u64, [u8; 64]>,
    }
    impl Model {
        fn write(&mut self, addr: u64, data: &[u8]) {
            for (i, &b) in data.iter().enumerate() {
                let a = addr + i as u64;
                self.lines.entry(a / 64 * 64).or_insert([0u8; 64])[(a % 64) as usize] = b;
            }
        }
        fn read(&self, addr: u64, buf: &mut [u8]) {
            for (i, b) in buf.iter_mut().enumerate() {
                let a = addr + i as u64;
                *b = self
                    .lines
                    .get(&(a / 64 * 64))
                    .map_or(0, |l| l[(a % 64) as usize]);
            }
        }
    }

    for case in 0..12u64 {
        let mut rng = SimRng::seed_from_u64(0x5AFE ^ case);
        let mut space = PmSpace::new(CAP);
        let mut model = Model::default();
        let mut snapshot: Option<(PmSpace, Model)> = None;
        for step in 0..400 {
            match rng.gen_range(0..10) {
                // Byte-granularity writes, arbitrary length/alignment,
                // crossing lines, pages and directories.
                0..=2 => {
                    let len = rng.gen_usize(1..200);
                    let addr = rng.gen_range(0..CAP - len as u64);
                    let fill = (step & 0xFF) as u8;
                    let data: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
                    space.write(PmAddr::new(addr), &data);
                    model.write(addr, &data);
                }
                3..=4 => {
                    let line = rng.gen_range(0..CAP / 64) * 64;
                    let data = [(step & 0xFF) as u8; 64];
                    space.write_line(PmAddr::new(line), &data);
                    model.write(line, &data);
                }
                5 => {
                    let word = rng.gen_range(0..CAP / 8) * 8;
                    let v = rng.next_u64();
                    space.write_u64(PmAddr::new(word), v);
                    model.write(word, &v.to_le_bytes());
                }
                6..=7 => {
                    let len = rng.gen_usize(1..200);
                    let addr = rng.gen_range(0..CAP - len as u64);
                    let mut got = vec![0u8; len];
                    let mut want = vec![0u8; len];
                    space.read(PmAddr::new(addr), &mut got);
                    model.read(addr, &mut want);
                    assert_eq!(got, want, "case {case} step {step}: read @{addr:#x}");
                    let line = rng.gen_range(0..CAP / 64) * 64;
                    let mut want_line = [0u8; 64];
                    model.read(line, &mut want_line);
                    assert_eq!(
                        space.read_line(PmAddr::new(line)),
                        want_line,
                        "case {case} step {step}: read_line"
                    );
                }
                // Snapshot (the crash path clones the image) …
                8 => snapshot = Some((space.clone(), model.clone())),
                // … and restore: recovery resumes from the clone.
                _ => {
                    if let Some((s, m)) = snapshot.take() {
                        space = s;
                        model = m;
                    }
                }
            }
            assert_eq!(
                space.touched_lines(),
                model.lines.len(),
                "case {case} step {step}: touched-line count"
            );
        }
        // Final sweep: every touched line plus a sample of untouched
        // ones must be byte-identical.
        let sample = (0..256).map(|_| rng.gen_range(0..CAP / 64) * 64);
        for line in model
            .lines
            .keys()
            .copied()
            .collect::<Vec<_>>()
            .into_iter()
            .chain(sample)
        {
            let mut want = [0u8; 64];
            model.read(line, &mut want);
            if space.read_line(PmAddr::new(line)) != want {
                panic!("case {case}: final sweep diverged at line {line:#x}");
            }
        }
    }
}
