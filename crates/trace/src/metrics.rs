//! Metrics aggregation over a trace.
//!
//! [`Metrics::from_records`] folds a record stream into the summary
//! quantities the paper's evaluation reasons about: tier-occupancy
//! histograms (Fig. 6), WPQ depth over time, durable log bytes per
//! transaction, the signature false-positive rate (§III-C2 — exact
//! line sets from [`Event::SigInsert`] are the ground truth a
//! [`Event::SigHit`] is checked against) and forced-persist counts.

use crate::event::{Event, PersistKind};
use crate::tracer::TraceRecord;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Aggregated metrics of one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Records aggregated.
    pub records: usize,
    /// Per-tier occupancy histogram: `tier_hist[t][n]` counts the
    /// occupancy snapshots that saw `n` records in tier `t` (tiers
    /// hold at most 8).
    pub tier_hist: [[u64; 9]; 4],
    /// Maximum WPQ depth observed at an enqueue.
    pub wpq_depth_max: u8,
    /// Sum of observed WPQ depths (mean = sum / samples).
    pub wpq_depth_sum: u64,
    /// WPQ depth samples (enqueues).
    pub wpq_depth_samples: u64,
    /// Total cycles requesters stalled on a full WPQ.
    pub wpq_stall_cycles: u64,
    /// Durable log bytes per transaction (records + markers).
    pub log_bytes_by_txn: BTreeMap<u64, u64>,
    /// Durable persist events by kind (data, record, marker, truncate).
    pub persists: [u64; 4],
    /// Signatures inserted.
    pub sig_inserts: u64,
    /// Signature hits (forced-persist triggers).
    pub sig_hits: u64,
    /// Signature hits whose probed line was *not* in the matched
    /// transaction's exact set — false positives.
    pub sig_false_hits: u64,
    /// Forced-persist events (conflict or ID recycling).
    pub forced_persists: u64,
    /// Lines persisted by forces.
    pub forced_lines: u64,
    /// Commits observed.
    pub commits: u64,
    /// Aborts observed (local + cross-core).
    pub aborts: u64,
    /// Cross-core conflicts observed.
    pub cross_conflicts: u64,
    /// Cache evictions by level left (`cache_evicts[l]`, levels 1–3).
    pub cache_evicts: [u64; 4],
    /// Evicted lines that were dirty.
    pub cache_dirty_evicts: u64,
    /// Evicted lines that carried log bits.
    pub cache_logged_evicts: u64,
    /// Fetches into L1 by serving level (`cache_fetches[l]`, 2–3, 4 =
    /// the medium — i.e. last-level misses).
    pub cache_fetches: [u64; 5],
    /// Fetches whose log bits were replicated group→word on the
    /// L2→L1 move (Fig. 5 fetch replication).
    pub cache_fetch_replications: u64,
    /// Log-buffer appends observed.
    pub tier_appends: u64,
    /// Buddy coalesces observed.
    pub tier_coalesces: u64,
    /// Overflow drains observed.
    pub tier_overflow_drains: u64,
    /// Service requests completed (request-end records, shed or not).
    pub requests: u64,
    /// Service requests shed by admission control.
    pub requests_shed: u64,
    /// Total cycles completed requests spent queued by admission.
    pub request_queued_cycles: u64,
}

impl Metrics {
    /// Folds `records` into a metrics summary.
    pub fn from_records(records: &[TraceRecord]) -> Self {
        let mut m = Metrics {
            records: records.len(),
            ..Metrics::default()
        };
        // Ground truth for the false-positive rate: the newest exact
        // line set per live 2-bit ID, exactly what the hardware's
        // newest-match probe consults.
        let mut sig_sets: BTreeMap<u8, BTreeSet<u64>> = BTreeMap::new();
        for rec in records {
            match &rec.event {
                Event::TierOccupancy { lens } => {
                    for (t, &n) in lens.iter().enumerate() {
                        m.tier_hist[t][usize::from(n.min(8))] += 1;
                    }
                }
                Event::TierAppend { .. } => m.tier_appends += 1,
                Event::TierCoalesce { .. } => m.tier_coalesces += 1,
                Event::TierDrain { overflow: true, .. } => m.tier_overflow_drains += 1,
                Event::TierDrain { .. } => {}
                Event::CacheEvict {
                    level,
                    dirty,
                    logged,
                    ..
                } => {
                    m.cache_evicts[usize::from((*level).min(3))] += 1;
                    m.cache_dirty_evicts += u64::from(*dirty);
                    m.cache_logged_evicts += u64::from(*logged);
                }
                Event::CacheFetch {
                    level, replicated, ..
                } => {
                    m.cache_fetches[usize::from((*level).min(4))] += 1;
                    m.cache_fetch_replications += u64::from(*replicated);
                }
                Event::WpqEnqueue { depth, stall } => {
                    m.wpq_depth_max = m.wpq_depth_max.max(*depth);
                    m.wpq_depth_sum += u64::from(*depth);
                    m.wpq_depth_samples += 1;
                    m.wpq_stall_cycles += u64::from(*stall);
                }
                Event::Persist { kind, len, txn, .. } => {
                    m.persists[*kind as usize] += 1;
                    match kind {
                        PersistKind::Record => {
                            // Payload + 8-byte tag, as counted by the
                            // device's traffic model.
                            *m.log_bytes_by_txn.entry(*txn).or_insert(0) += u64::from(*len) + 8;
                        }
                        PersistKind::Marker => {
                            *m.log_bytes_by_txn.entry(*txn).or_insert(0) += 16;
                        }
                        _ => {}
                    }
                }
                Event::SigInsert { id, lines, .. } => {
                    m.sig_inserts += 1;
                    sig_sets.insert(*id, lines.iter().copied().collect());
                }
                Event::SigHit { addr, id } => {
                    m.sig_hits += 1;
                    let actual = sig_sets.get(id).map(|s| s.contains(addr)).unwrap_or(false);
                    if !actual {
                        m.sig_false_hits += 1;
                    }
                }
                Event::SigForcedPersist { lines, .. } => {
                    m.forced_persists += 1;
                    m.forced_lines += u64::from(*lines);
                }
                Event::TxnIdRetire { id, .. } => {
                    sig_sets.remove(id);
                }
                Event::CommitEnd { .. } => m.commits += 1,
                Event::Abort { .. } | Event::CrossAbort { .. } => m.aborts += 1,
                Event::CrossConflict { .. } => m.cross_conflicts += 1,
                Event::RequestEnd { queued, shed, .. } => {
                    m.requests += 1;
                    m.requests_shed += u64::from(*shed);
                    m.request_queued_cycles += queued;
                }
                _ => {}
            }
        }
        m
    }

    /// Mean observed WPQ depth (0 when never sampled).
    pub fn wpq_depth_mean(&self) -> f64 {
        if self.wpq_depth_samples == 0 {
            0.0
        } else {
            self.wpq_depth_sum as f64 / self.wpq_depth_samples as f64
        }
    }

    /// Signature false-positive rate over all hits (0 when no hits).
    pub fn sig_false_positive_rate(&self) -> f64 {
        if self.sig_hits == 0 {
            0.0
        } else {
            self.sig_false_hits as f64 / self.sig_hits as f64
        }
    }

    /// Mean occupancy of tier `t` over all snapshots.
    pub fn tier_mean(&self, t: usize) -> f64 {
        let samples: u64 = self.tier_hist[t].iter().sum();
        if samples == 0 {
            return 0.0;
        }
        let sum: u64 = self.tier_hist[t]
            .iter()
            .enumerate()
            .map(|(n, c)| n as u64 * c)
            .sum();
        sum as f64 / samples as f64
    }

    /// Mean durable log bytes per transaction (0 when none logged).
    pub fn log_bytes_per_txn_mean(&self) -> f64 {
        if self.log_bytes_by_txn.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.log_bytes_by_txn.values().sum();
        sum as f64 / self.log_bytes_by_txn.len() as f64
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events                 {:>12}", self.records)?;
        writeln!(
            f,
            "persists (d/r/m/t)     {}/{}/{}/{}",
            self.persists[0], self.persists[1], self.persists[2], self.persists[3]
        )?;
        writeln!(
            f,
            "tier occupancy mean    {:.2}/{:.2}/{:.2}/{:.2}",
            self.tier_mean(0),
            self.tier_mean(1),
            self.tier_mean(2),
            self.tier_mean(3)
        )?;
        writeln!(
            f,
            "tier append/coal/ovf   {}/{}/{}",
            self.tier_appends, self.tier_coalesces, self.tier_overflow_drains
        )?;
        writeln!(
            f,
            "cache evicts (1/2/3)   {}/{}/{} ({} dirty, {} logged)",
            self.cache_evicts[1],
            self.cache_evicts[2],
            self.cache_evicts[3],
            self.cache_dirty_evicts,
            self.cache_logged_evicts
        )?;
        writeln!(
            f,
            "cache fetches (2/3/m)  {}/{}/{} ({} replicated)",
            self.cache_fetches[2],
            self.cache_fetches[3],
            self.cache_fetches[4],
            self.cache_fetch_replications
        )?;
        writeln!(
            f,
            "wpq depth max/mean     {}/{:.2} (stall {} cyc)",
            self.wpq_depth_max,
            self.wpq_depth_mean(),
            self.wpq_stall_cycles
        )?;
        writeln!(
            f,
            "log bytes/txn mean     {:.1} ({} txns)",
            self.log_bytes_per_txn_mean(),
            self.log_bytes_by_txn.len()
        )?;
        writeln!(
            f,
            "signatures             {} inserted, {} hits, {} false ({:.1}%)",
            self.sig_inserts,
            self.sig_hits,
            self.sig_false_hits,
            100.0 * self.sig_false_positive_rate()
        )?;
        writeln!(
            f,
            "forced persists        {} ({} lines)",
            self.forced_persists, self.forced_lines
        )?;
        write!(
            f,
            "commits/aborts/xconf   {}/{}/{}",
            self.commits, self.aborts, self.cross_conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn aggregates_core_quantities() {
        let mut t = Tracer::new(128);
        t.emit(Event::TierOccupancy { lens: [2, 0, 0, 0] });
        t.emit(Event::TierOccupancy { lens: [4, 1, 0, 0] });
        t.emit(Event::WpqEnqueue { depth: 3, stall: 5 });
        t.emit(Event::WpqEnqueue { depth: 5, stall: 0 });
        t.emit(Event::Persist {
            kind: PersistKind::Record,
            addr: 64,
            len: 8,
            txn: 7,
            torn: false,
        });
        t.emit(Event::Persist {
            kind: PersistKind::Marker,
            addr: 0,
            len: 0,
            txn: 7,
            torn: false,
        });
        t.emit(Event::CommitEnd { txn: 7 });
        let m = Metrics::from_records(&t.records());
        assert_eq!(m.tier_hist[0][2], 1);
        assert_eq!(m.tier_hist[0][4], 1);
        assert_eq!(m.tier_hist[1][1], 1);
        assert!((m.tier_mean(0) - 3.0).abs() < 1e-9);
        assert_eq!(m.wpq_depth_max, 5);
        assert!((m.wpq_depth_mean() - 4.0).abs() < 1e-9);
        assert_eq!(m.wpq_stall_cycles, 5);
        assert_eq!(m.log_bytes_by_txn[&7], 8 + 8 + 16);
        assert_eq!(m.persists, [0, 1, 1, 0]);
        assert_eq!(m.commits, 1);
    }

    #[test]
    fn false_positive_rate_uses_exact_sets() {
        let mut t = Tracer::new(64);
        t.emit(Event::SigInsert {
            txn: 1,
            id: 2,
            lines: vec![64, 128],
        });
        t.emit(Event::SigHit { addr: 64, id: 2 }); // true positive
        t.emit(Event::SigHit { addr: 192, id: 2 }); // false positive
        let m = Metrics::from_records(&t.records());
        assert_eq!(m.sig_hits, 2);
        assert_eq!(m.sig_false_hits, 1);
        assert!((m.sig_false_positive_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn retire_drops_ground_truth() {
        let mut t = Tracer::new(64);
        t.emit(Event::SigInsert {
            txn: 1,
            id: 0,
            lines: vec![64],
        });
        t.emit(Event::TxnIdRetire { txn: 1, id: 0 });
        t.emit(Event::SigHit { addr: 64, id: 0 });
        let m = Metrics::from_records(&t.records());
        assert_eq!(m.sig_false_hits, 1, "hit on a retired id is spurious");
    }

    #[test]
    fn cache_counters_fold_by_level() {
        let mut t = Tracer::new(64);
        t.emit(Event::CacheEvict {
            level: 1,
            addr: 64,
            dirty: true,
            logged: false,
        });
        t.emit(Event::CacheEvict {
            level: 3,
            addr: 128,
            dirty: true,
            logged: true,
        });
        t.emit(Event::CacheFetch {
            level: 2,
            addr: 64,
            replicated: true,
        });
        t.emit(Event::CacheFetch {
            level: 4,
            addr: 192,
            replicated: false,
        });
        let m = Metrics::from_records(&t.records());
        assert_eq!(m.cache_evicts[1], 1);
        assert_eq!(m.cache_evicts[3], 1);
        assert_eq!(m.cache_dirty_evicts, 2);
        assert_eq!(m.cache_logged_evicts, 1);
        assert_eq!(m.cache_fetches[2], 1);
        assert_eq!(m.cache_fetches[4], 1);
        assert_eq!(m.cache_fetch_replications, 1);
    }

    #[test]
    fn display_is_snapshot_shaped() {
        let s = Metrics::default().to_string();
        assert!(s.contains("wpq depth"));
        assert!(s.contains("signatures"));
    }
}
