//! The typed event taxonomy covering the whole simulated pipeline.
//!
//! Addresses are raw `u64` byte addresses (the crate sits below
//! `slpmt-pmem` in the dependency graph, so it cannot name `PmAddr`).
//! Variants are grouped by the mechanism they observe; see the field
//! docs for the exact semantics of each payload.

use std::fmt;

/// Commit persist-ordering stage (Fig. 4); mirrors
/// `slpmt_core::CommitPhase` without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommitStage {
    /// Log-free data lines persisted (redo only — they carry no
    /// records, so they must land before the marker).
    LogFree,
    /// All log records drained and durable.
    Records,
    /// Logged data lines persisted in place (undo only).
    Data,
    /// The commit marker is durable; the transaction is committed.
    Marker,
}

impl CommitStage {
    /// Short stable label used by exports.
    pub fn label(self) -> &'static str {
        match self {
            CommitStage::LogFree => "log-free",
            CommitStage::Records => "records",
            CommitStage::Data => "data",
            CommitStage::Marker => "marker",
        }
    }
}

/// A recovery phase (validate / truncate / skip / replay / salvage /
/// scrub).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryStage {
    /// CRC + sequence validation of every durable record and marker.
    Validate,
    /// Torn tail records truncated before replay.
    Truncate,
    /// Corrupt (bit-flipped) records skipped by replay.
    Skip,
    /// Undo/redo record replay against the durable image.
    Replay,
    /// Poisoned lines re-materialised from intact log records.
    Salvage,
    /// Unsalvageable poisoned lines scrubbed to zeros.
    Scrub,
}

impl RecoveryStage {
    /// Short stable label used by exports.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStage::Validate => "validate",
            RecoveryStage::Truncate => "truncate",
            RecoveryStage::Skip => "skip",
            RecoveryStage::Replay => "replay",
            RecoveryStage::Salvage => "salvage",
            RecoveryStage::Scrub => "scrub",
        }
    }
}

/// What kind of durable mutation a [`Event::Persist`] records; mirrors
/// the device's `PersistEvent` discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PersistKind {
    /// A 64-byte data line accepted by the WPQ.
    Data,
    /// A log record appended to the durable log.
    Record,
    /// A commit marker.
    Marker,
    /// A log head-pointer advance (truncate / reset).
    Truncate,
}

impl PersistKind {
    /// Short stable label used by exports.
    pub fn label(self) -> &'static str {
        match self {
            PersistKind::Data => "data",
            PersistKind::Record => "record",
            PersistKind::Marker => "marker",
            PersistKind::Truncate => "truncate",
        }
    }
}

/// Verb of a service-level request span; mirrors the `slpmt-kv`
/// memcached-text subset without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RequestVerb {
    /// Point read.
    Get,
    /// Point read returning a CAS token.
    Gets,
    /// Unconditional store (insert or replace).
    Set,
    /// Conditional store against a CAS token.
    Cas,
    /// Key removal.
    Delete,
    /// Range scan.
    Scan,
    /// Service-health query (`stats`).
    Stats,
}

impl RequestVerb {
    /// Short stable label used by exports.
    pub fn label(self) -> &'static str {
        match self {
            RequestVerb::Get => "get",
            RequestVerb::Gets => "gets",
            RequestVerb::Set => "set",
            RequestVerb::Cas => "cas",
            RequestVerb::Delete => "delete",
            RequestVerb::Scan => "scan",
            RequestVerb::Stats => "stats",
        }
    }
}

/// Which track of the export an event belongs to: the issuing core, or
/// one of the shared device components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Core-private pipeline activity (stores, caches, commit, IDs).
    Core,
    /// The volatile tiered log buffer.
    LogBuffer,
    /// The write pending queue.
    Wpq,
    /// The persistent medium (accepted durable mutations).
    Pm,
    /// The lazy-persistency signature array.
    Signature,
    /// Post-crash recovery.
    Recovery,
    /// The KV service front end (request spans, admission decisions).
    Service,
}

/// One traced occurrence somewhere in the simulated pipeline.
///
/// Payload integers are sized for the quantities the simulator can
/// actually produce (tier indices fit `u8`, record lengths `u16`, …);
/// addresses are raw byte addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A store-family instruction issued, with its `storeT` operands.
    StoreIssue {
        /// Word-aligned target address.
        addr: u64,
        /// `log` operand after degrade rules (is the word logged?).
        log: bool,
        /// `lazy` operand after degrade rules (lazy persistency?).
        lazy: bool,
        /// `true` when the `storeT` semantics were honoured as
        /// annotated (not degraded to plain logging).
        honoured: bool,
    },
    /// A per-word log bit was set in the L1 metadata.
    LogBit {
        /// Line-aligned address of the cached line.
        addr: u64,
        /// Word index (0..8) within the line.
        word: u8,
        /// `true` when the word is also marked lazy (deferred).
        lazy: bool,
    },
    /// Log bits narrowed L1→L2 on eviction: the per-word bits conjoin
    /// into per-32-byte-group bits (Fig. 5).
    LogBitConj {
        /// Line-aligned address of the evicted line.
        addr: u64,
        /// Per-word L1 log bits before the transform.
        l1_bits: u8,
        /// Per-group L2 log bits after the conjunction.
        l2_bits: u8,
    },
    /// A record was appended to a log-buffer tier.
    TierAppend {
        /// Tier index (0..4), by record size class.
        tier: u8,
        /// Record start address.
        addr: u64,
        /// Record payload length in bytes.
        len: u16,
    },
    /// Two buddy records coalesced into the next tier up.
    TierCoalesce {
        /// Destination tier of the merged record.
        tier: u8,
        /// Merged record start address.
        addr: u64,
        /// Merged record payload length in bytes.
        len: u16,
    },
    /// A record left the buffer towards the device.
    TierDrain {
        /// Tier the record drained from.
        tier: u8,
        /// Record start address.
        addr: u64,
        /// Record payload length in bytes.
        len: u16,
        /// `true` when a full tier forced the drain (capacity
        /// overflow), `false` for a commit/flush drain.
        overflow: bool,
    },
    /// Post-mutation occupancy snapshot of the four tiers.
    TierOccupancy {
        /// Records held per tier (each ≤ the 8-entry tier capacity).
        lens: [u8; 4],
    },
    /// A pack of records was flushed to the device together.
    LogPack {
        /// Records in the pack.
        records: u16,
        /// Total durable bytes (payload + tags).
        bytes: u32,
    },
    /// A line was evicted from a cache level.
    CacheEvict {
        /// Level the line left (1, 2 or 3).
        level: u8,
        /// Line-aligned address.
        addr: u64,
        /// Was the line dirty?
        dirty: bool,
        /// Did the line carry log bits?
        logged: bool,
    },
    /// A line was fetched into L1.
    CacheFetch {
        /// Level that served the fetch (2, 3, or 4 for the medium).
        level: u8,
        /// Line-aligned address.
        addr: u64,
        /// `true` when log bits were replicated group→word on the
        /// L2→L1 move (Fig. 5 fetch replication).
        replicated: bool,
    },
    /// The WPQ accepted an entry.
    WpqEnqueue {
        /// Queue occupancy right after acceptance.
        depth: u8,
        /// Cycles the requester stalled on a full queue.
        stall: u32,
    },
    /// The entry accepted last will have fully drained at `at`.
    WpqDrainComplete {
        /// Simulated cycle the drain completes.
        at: u64,
    },
    /// A durable mutation was accepted by the device (one entry of the
    /// numbered persist-event trace).
    Persist {
        /// What kind of mutation.
        kind: PersistKind,
        /// Target address (0 for markers and truncates).
        addr: u64,
        /// Payload length in bytes (0 when not applicable).
        len: u16,
        /// Owning transaction (0 when not applicable).
        txn: u64,
        /// `true` when the mutation tore at the crash boundary.
        torn: bool,
    },
    /// Commit started for `txn`.
    CommitBegin {
        /// Transaction sequence number.
        txn: u64,
    },
    /// A commit persist-ordering stage completed.
    CommitStageDone {
        /// Transaction sequence number.
        txn: u64,
        /// The stage that just finished.
        stage: CommitStage,
    },
    /// Commit finished for `txn`.
    CommitEnd {
        /// Transaction sequence number.
        txn: u64,
    },
    /// A transaction aborted.
    Abort {
        /// Transaction sequence number.
        txn: u64,
    },
    /// A 2-bit lazy transaction ID was allocated.
    TxnIdAlloc {
        /// Transaction sequence number.
        txn: u64,
        /// The allocated 2-bit ID.
        id: u8,
    },
    /// A lazy transaction ID was retired (all deferred lines durable).
    TxnIdRetire {
        /// Transaction sequence number.
        txn: u64,
        /// The retired 2-bit ID.
        id: u8,
    },
    /// A signature was inserted for a lazily-committed transaction.
    SigInsert {
        /// Transaction sequence number.
        txn: u64,
        /// Its 2-bit ID.
        id: u8,
        /// Exact line addresses the signature summarises — ground
        /// truth for the aggregator's false-positive rate.
        lines: Vec<u64>,
    },
    /// A later access matched a live signature, forcing persistence.
    SigHit {
        /// The probing line address.
        addr: u64,
        /// ID of the (newest) matching signature.
        id: u8,
    },
    /// Deferred lines were forced durable (conflict or ID recycling).
    SigForcedPersist {
        /// Transaction ID whose lines were forced.
        id: u8,
        /// Lines persisted by the force.
        lines: u32,
    },
    /// A cross-core access conflicted with another core's open
    /// transaction (requester wins, §V-C).
    CrossConflict {
        /// Conflicting word address.
        addr: u64,
        /// Core slot holding the conflicting transaction.
        holder: u8,
    },
    /// A cross-core conflict aborted the holder's transaction.
    CrossAbort {
        /// Aborted core slot.
        victim: u8,
        /// Aborted transaction sequence number.
        txn: u64,
    },
    /// The aborted transaction's durable damage was repaired (or the
    /// repair was deferred to recovery).
    CrossRepair {
        /// Aborted core slot.
        victim: u8,
        /// Durable records considered for the repair.
        records: u32,
        /// `true` when torn/corrupt records deferred the repair to
        /// post-crash recovery instead.
        deferred: bool,
    },
    /// A recovery phase completed.
    Recovery {
        /// The phase.
        stage: RecoveryStage,
        /// Phase-specific count (records validated, replayed, lines
        /// salvaged, …).
        n: u64,
    },
    /// A service-level request started executing on a worker (stamped
    /// after the admission decision, so the span covers service time,
    /// not queueing).
    RequestBegin {
        /// Originating session.
        session: u32,
        /// Request index within the shard's stream.
        req: u64,
        /// The request verb.
        verb: RequestVerb,
    },
    /// A service-level request finished (or was shed by admission —
    /// shed requests produce no `RequestBegin`).
    RequestEnd {
        /// Originating session.
        session: u32,
        /// Request index within the shard's stream.
        req: u64,
        /// Cycles the request waited in the admission queue.
        queued: u64,
        /// `true` when admission shed the request instead of serving
        /// it.
        shed: bool,
    },
    /// A chaos harness armed a crash at persist event `k` while the
    /// service was live (the span between arming and the trip).
    ChaosCrashArm {
        /// The armed persist-event number.
        k: u64,
    },
    /// The service restarted after a crash: sessions were rebuilt and
    /// the un-acked request tail is about to replay.
    ServiceRestart {
        /// Sessions rebuilt from their ack watermarks.
        sessions: u32,
        /// Total responses acked (flushed) across sessions pre-crash.
        acked: u64,
    },
    /// The degraded serve window opened: reads are served, writes
    /// answer `SERVER_ERROR recovering` until the poison set is
    /// scrubbed.
    DegradedBegin {
        /// Poisoned lines queued for the background scrub.
        poisoned: u32,
    },
    /// The degraded window closed; the store is fully ready again.
    DegradedEnd {
        /// Lines scrubbed during the window.
        scrubbed: u32,
    },
}

impl Event {
    /// Stable short name used by exports.
    pub fn name(&self) -> &'static str {
        match self {
            Event::StoreIssue { .. } => "store_issue",
            Event::LogBit { .. } => "log_bit",
            Event::LogBitConj { .. } => "log_bit_conj",
            Event::TierAppend { .. } => "tier_append",
            Event::TierCoalesce { .. } => "tier_coalesce",
            Event::TierDrain { .. } => "tier_drain",
            Event::TierOccupancy { .. } => "tier_occupancy",
            Event::LogPack { .. } => "log_pack",
            Event::CacheEvict { .. } => "cache_evict",
            Event::CacheFetch { .. } => "cache_fetch",
            Event::WpqEnqueue { .. } => "wpq_enqueue",
            Event::WpqDrainComplete { .. } => "wpq_drain_complete",
            Event::Persist { .. } => "persist",
            Event::CommitBegin { .. } => "commit_begin",
            Event::CommitStageDone { .. } => "commit_stage",
            Event::CommitEnd { .. } => "commit_end",
            Event::Abort { .. } => "abort",
            Event::TxnIdAlloc { .. } => "txn_id_alloc",
            Event::TxnIdRetire { .. } => "txn_id_retire",
            Event::SigInsert { .. } => "sig_insert",
            Event::SigHit { .. } => "sig_hit",
            Event::SigForcedPersist { .. } => "sig_forced_persist",
            Event::CrossConflict { .. } => "cross_conflict",
            Event::CrossAbort { .. } => "cross_abort",
            Event::CrossRepair { .. } => "cross_repair",
            Event::Recovery { .. } => "recovery",
            Event::RequestBegin { .. } => "request_begin",
            Event::RequestEnd { .. } => "request_end",
            Event::ChaosCrashArm { .. } => "chaos_crash_arm",
            Event::ServiceRestart { .. } => "service_restart",
            Event::DegradedBegin { .. } => "degraded_begin",
            Event::DegradedEnd { .. } => "degraded_end",
        }
    }

    /// Which export track the event belongs to.
    pub fn component(&self) -> Component {
        match self {
            Event::StoreIssue { .. }
            | Event::LogBit { .. }
            | Event::LogBitConj { .. }
            | Event::CacheEvict { .. }
            | Event::CacheFetch { .. }
            | Event::CommitBegin { .. }
            | Event::CommitStageDone { .. }
            | Event::CommitEnd { .. }
            | Event::Abort { .. }
            | Event::TxnIdAlloc { .. }
            | Event::TxnIdRetire { .. }
            | Event::CrossConflict { .. }
            | Event::CrossAbort { .. }
            | Event::CrossRepair { .. } => Component::Core,
            Event::TierAppend { .. }
            | Event::TierCoalesce { .. }
            | Event::TierDrain { .. }
            | Event::TierOccupancy { .. }
            | Event::LogPack { .. } => Component::LogBuffer,
            Event::WpqEnqueue { .. } | Event::WpqDrainComplete { .. } => Component::Wpq,
            Event::Persist { .. } => Component::Pm,
            Event::SigInsert { .. } | Event::SigHit { .. } | Event::SigForcedPersist { .. } => {
                Component::Signature
            }
            Event::Recovery { .. } => Component::Recovery,
            Event::RequestBegin { .. }
            | Event::RequestEnd { .. }
            | Event::ChaosCrashArm { .. }
            | Event::ServiceRestart { .. }
            | Event::DegradedBegin { .. }
            | Event::DegradedEnd { .. } => Component::Service,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique_enough() {
        let a = Event::TierAppend {
            tier: 0,
            addr: 64,
            len: 8,
        };
        assert_eq!(a.name(), "tier_append");
        assert_eq!(a.component(), Component::LogBuffer);
        assert_eq!(a.to_string(), "tier_append");
    }

    #[test]
    fn commit_stages_label() {
        assert_eq!(CommitStage::Marker.label(), "marker");
        assert_eq!(RecoveryStage::Salvage.label(), "salvage");
        assert_eq!(PersistKind::Record.label(), "record");
    }
}
