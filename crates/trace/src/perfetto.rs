//! Chrome/Perfetto trace-event JSON export.
//!
//! Produces the [Trace Event Format] consumed by `ui.perfetto.dev` and
//! `chrome://tracing`: one *process* for the cores (one thread track
//! per core) and one for the shared device (one thread track per
//! component — WPQ, log buffer, persistent medium, signatures,
//! recovery). Commit persist-ordering stages render as duration slices
//! on the issuing core's track; WPQ depth and tier occupancy render as
//! counter tracks; everything else is a thread-scoped instant event.
//!
//! The export is **byte-deterministic**: records are walked in the
//! tracer's deterministic merge order and all timestamps are simulated
//! cycles (written as microseconds, which Perfetto only uses for
//! scaling).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{Component, Event};
use crate::json::JsonWriter;
use crate::tracer::TraceRecord;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Process id of the per-core tracks.
const PID_CORES: u64 = 1;
/// Process id of the device-component tracks.
const PID_DEVICE: u64 = 2;

fn device_tid(c: Component) -> u64 {
    match c {
        Component::Wpq => 1,
        Component::LogBuffer => 2,
        Component::Pm => 3,
        Component::Signature => 4,
        Component::Recovery => 5,
        Component::Service => 6,
        Component::Core => unreachable!("core events go to the core process"),
    }
}

fn meta(w: &mut JsonWriter, name: &str, pid: u64, tid: Option<u64>, value: &str) {
    w.begin_obj();
    w.key("name");
    w.string(name);
    w.key("ph");
    w.string("M");
    w.key("pid");
    w.u64(pid);
    if let Some(tid) = tid {
        w.key("tid");
        w.u64(tid);
    }
    w.key("args");
    w.begin_obj();
    w.key("name");
    w.string(value);
    w.end_obj();
    w.end_obj();
}

fn event_head(w: &mut JsonWriter, name: &str, ph: &str, ts: u64, pid: u64, tid: u64) {
    w.begin_obj();
    w.key("name");
    w.string(name);
    w.key("ph");
    w.string(ph);
    w.key("ts");
    w.u64(ts);
    w.key("pid");
    w.u64(pid);
    w.key("tid");
    w.u64(tid);
}

/// Writes the event-specific argument object plus the deterministic
/// clocks (`devent`, `seq`).
fn event_args(w: &mut JsonWriter, rec: &TraceRecord) {
    w.key("args");
    w.begin_obj();
    w.key("devent");
    w.u64(rec.devent);
    w.key("seq");
    w.u64(rec.seq);
    match &rec.event {
        Event::StoreIssue {
            addr,
            log,
            lazy,
            honoured,
        } => {
            w.key("addr");
            w.u64(*addr);
            w.key("log");
            w.bool(*log);
            w.key("lazy");
            w.bool(*lazy);
            w.key("honoured");
            w.bool(*honoured);
        }
        Event::LogBit { addr, word, lazy } => {
            w.key("addr");
            w.u64(*addr);
            w.key("word");
            w.u64(u64::from(*word));
            w.key("lazy");
            w.bool(*lazy);
        }
        Event::LogBitConj {
            addr,
            l1_bits,
            l2_bits,
        } => {
            w.key("addr");
            w.u64(*addr);
            w.key("l1_bits");
            w.u64(u64::from(*l1_bits));
            w.key("l2_bits");
            w.u64(u64::from(*l2_bits));
        }
        Event::TierAppend { tier, addr, len } | Event::TierCoalesce { tier, addr, len } => {
            w.key("tier");
            w.u64(u64::from(*tier));
            w.key("addr");
            w.u64(*addr);
            w.key("len");
            w.u64(u64::from(*len));
        }
        Event::TierDrain {
            tier,
            addr,
            len,
            overflow,
        } => {
            w.key("tier");
            w.u64(u64::from(*tier));
            w.key("addr");
            w.u64(*addr);
            w.key("len");
            w.u64(u64::from(*len));
            w.key("overflow");
            w.bool(*overflow);
        }
        Event::TierOccupancy { lens } => {
            for (i, n) in lens.iter().enumerate() {
                w.key(&format!("t{i}"));
                w.u64(u64::from(*n));
            }
        }
        Event::LogPack { records, bytes } => {
            w.key("records");
            w.u64(u64::from(*records));
            w.key("bytes");
            w.u64(u64::from(*bytes));
        }
        Event::CacheEvict {
            level,
            addr,
            dirty,
            logged,
        } => {
            w.key("level");
            w.u64(u64::from(*level));
            w.key("addr");
            w.u64(*addr);
            w.key("dirty");
            w.bool(*dirty);
            w.key("logged");
            w.bool(*logged);
        }
        Event::CacheFetch {
            level,
            addr,
            replicated,
        } => {
            w.key("level");
            w.u64(u64::from(*level));
            w.key("addr");
            w.u64(*addr);
            w.key("replicated");
            w.bool(*replicated);
        }
        Event::WpqEnqueue { depth, stall } => {
            w.key("depth");
            w.u64(u64::from(*depth));
            w.key("stall");
            w.u64(u64::from(*stall));
        }
        Event::WpqDrainComplete { at } => {
            w.key("at");
            w.u64(*at);
        }
        Event::Persist {
            kind,
            addr,
            len,
            txn,
            torn,
        } => {
            w.key("kind");
            w.string(kind.label());
            w.key("addr");
            w.u64(*addr);
            w.key("len");
            w.u64(u64::from(*len));
            w.key("txn");
            w.u64(*txn);
            w.key("torn");
            w.bool(*torn);
        }
        Event::CommitBegin { txn } | Event::CommitEnd { txn } | Event::Abort { txn } => {
            w.key("txn");
            w.u64(*txn);
        }
        Event::CommitStageDone { txn, stage } => {
            w.key("txn");
            w.u64(*txn);
            w.key("stage");
            w.string(stage.label());
        }
        Event::TxnIdAlloc { txn, id } | Event::TxnIdRetire { txn, id } => {
            w.key("txn");
            w.u64(*txn);
            w.key("id");
            w.u64(u64::from(*id));
        }
        Event::SigInsert { txn, id, lines } => {
            w.key("txn");
            w.u64(*txn);
            w.key("id");
            w.u64(u64::from(*id));
            w.key("lines");
            w.u64(lines.len() as u64);
        }
        Event::SigHit { addr, id } => {
            w.key("addr");
            w.u64(*addr);
            w.key("id");
            w.u64(u64::from(*id));
        }
        Event::SigForcedPersist { id, lines } => {
            w.key("id");
            w.u64(u64::from(*id));
            w.key("lines");
            w.u64(u64::from(*lines));
        }
        Event::CrossConflict { addr, holder } => {
            w.key("addr");
            w.u64(*addr);
            w.key("holder");
            w.u64(u64::from(*holder));
        }
        Event::CrossAbort { victim, txn } => {
            w.key("victim");
            w.u64(u64::from(*victim));
            w.key("txn");
            w.u64(*txn);
        }
        Event::CrossRepair {
            victim,
            records,
            deferred,
        } => {
            w.key("victim");
            w.u64(u64::from(*victim));
            w.key("records");
            w.u64(u64::from(*records));
            w.key("deferred");
            w.bool(*deferred);
        }
        Event::Recovery { stage, n } => {
            w.key("stage");
            w.string(stage.label());
            w.key("n");
            w.u64(*n);
        }
        Event::RequestBegin { session, req, verb } => {
            w.key("session");
            w.u64(u64::from(*session));
            w.key("req");
            w.u64(*req);
            w.key("verb");
            w.string(verb.label());
        }
        Event::RequestEnd {
            session,
            req,
            queued,
            shed,
        } => {
            w.key("session");
            w.u64(u64::from(*session));
            w.key("req");
            w.u64(*req);
            w.key("queued");
            w.u64(*queued);
            w.key("shed");
            w.bool(*shed);
        }
        Event::ChaosCrashArm { k } => {
            w.key("k");
            w.u64(*k);
        }
        Event::ServiceRestart { sessions, acked } => {
            w.key("sessions");
            w.u64(u64::from(*sessions));
            w.key("acked");
            w.u64(*acked);
        }
        Event::DegradedBegin { poisoned } => {
            w.key("poisoned");
            w.u64(u64::from(*poisoned));
        }
        Event::DegradedEnd { scrubbed } => {
            w.key("scrubbed");
            w.u64(u64::from(*scrubbed));
        }
    }
    w.end_obj();
}

/// Exports `records` (in the tracer's merged order) as Chrome
/// trace-event JSON loadable by Perfetto.
pub fn export_chrome_trace(records: &[TraceRecord]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("displayTimeUnit");
    w.string("ns");
    w.key("traceEvents");
    w.begin_arr();

    // Track naming metadata.
    meta(&mut w, "process_name", PID_CORES, None, "cores");
    meta(&mut w, "process_name", PID_DEVICE, None, "device");
    let cores: BTreeSet<u8> = records.iter().map(|r| r.core).collect();
    for core in cores {
        meta(
            &mut w,
            "thread_name",
            PID_CORES,
            Some(u64::from(core) + 1),
            &format!("core {core}"),
        );
    }
    for (c, label) in [
        (Component::Wpq, "WPQ"),
        (Component::LogBuffer, "log buffer"),
        (Component::Pm, "pm"),
        (Component::Signature, "signatures"),
        (Component::Recovery, "recovery"),
        (Component::Service, "service"),
    ] {
        meta(
            &mut w,
            "thread_name",
            PID_DEVICE,
            Some(device_tid(c)),
            label,
        );
    }

    // Per-core commit-span state: the cycle the current stage started.
    let mut stage_start: BTreeMap<u8, u64> = BTreeMap::new();
    for rec in records {
        let (pid, tid) = match rec.event.component() {
            Component::Core => (PID_CORES, u64::from(rec.core) + 1),
            c => (PID_DEVICE, device_tid(c)),
        };
        match &rec.event {
            Event::CommitBegin { .. } => {
                stage_start.insert(rec.core, rec.now);
                event_head(&mut w, "commit", "B", rec.now, pid, tid);
                event_args(&mut w, rec);
                w.end_obj();
            }
            Event::CommitStageDone { stage, .. } => {
                let start = stage_start.insert(rec.core, rec.now).unwrap_or(rec.now);
                event_head(
                    &mut w,
                    &format!("commit:{}", stage.label()),
                    "X",
                    start,
                    pid,
                    tid,
                );
                w.key("dur");
                w.u64(rec.now.saturating_sub(start));
                event_args(&mut w, rec);
                w.end_obj();
            }
            Event::CommitEnd { .. } => {
                stage_start.remove(&rec.core);
                event_head(&mut w, "commit", "E", rec.now, pid, tid);
                event_args(&mut w, rec);
                w.end_obj();
            }
            Event::WpqEnqueue { depth, .. } => {
                event_head(&mut w, "wpq_depth", "C", rec.now, pid, tid);
                w.key("args");
                w.begin_obj();
                w.key("depth");
                w.u64(u64::from(*depth));
                w.end_obj();
                w.end_obj();
            }
            Event::TierOccupancy { lens } => {
                event_head(&mut w, "tier_occupancy", "C", rec.now, pid, tid);
                w.key("args");
                w.begin_obj();
                for (i, n) in lens.iter().enumerate() {
                    w.key(&format!("t{i}"));
                    w.u64(u64::from(*n));
                }
                w.end_obj();
                w.end_obj();
            }
            Event::RequestBegin { verb, .. } => {
                event_head(
                    &mut w,
                    &format!("req:{}", verb.label()),
                    "B",
                    rec.now,
                    pid,
                    tid,
                );
                event_args(&mut w, rec);
                w.end_obj();
            }
            Event::RequestEnd { shed, .. } => {
                // Shed requests never opened a span; render them as
                // instants so B/E stay balanced.
                if *shed {
                    event_head(&mut w, "req:shed", "i", rec.now, pid, tid);
                    w.key("s");
                    w.string("t");
                } else {
                    event_head(&mut w, "req", "E", rec.now, pid, tid);
                }
                event_args(&mut w, rec);
                w.end_obj();
            }
            _ => {
                event_head(&mut w, rec.event.name(), "i", rec.now, pid, tid);
                w.key("s");
                w.string("t");
                event_args(&mut w, rec);
                w.end_obj();
            }
        }
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CommitStage;
    use crate::tracer::Tracer;

    fn sample() -> Vec<TraceRecord> {
        let mut t = Tracer::new(64);
        t.set_clock(10);
        t.emit(Event::CommitBegin { txn: 1 });
        t.set_clock(20);
        t.emit(Event::CommitStageDone {
            txn: 1,
            stage: CommitStage::Records,
        });
        t.set_clock(25);
        t.emit(Event::WpqEnqueue { depth: 3, stall: 0 });
        t.set_clock(30);
        t.emit(Event::CommitStageDone {
            txn: 1,
            stage: CommitStage::Marker,
        });
        t.emit(Event::CommitEnd { txn: 1 });
        t.records()
    }

    #[test]
    fn export_is_deterministic_and_structured() {
        let recs = sample();
        let a = export_chrome_trace(&recs);
        let b = export_chrome_trace(&recs);
        assert_eq!(a, b, "byte-identical on re-export");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"traceEvents\":["));
        assert!(a.contains("\"commit:records\""));
        assert!(a.contains("\"ph\":\"B\"") && a.contains("\"ph\":\"E\""));
        assert!(a.contains("\"wpq_depth\""));
    }

    #[test]
    fn stage_spans_cover_the_gap() {
        let a = export_chrome_trace(&sample());
        // records stage: started at commit begin (10), done at 20.
        assert!(a.contains("\"name\":\"commit:records\",\"ph\":\"X\",\"ts\":10"));
        assert!(a.contains("\"dur\":10"));
        // marker stage: 20 → 30.
        assert!(a.contains("\"name\":\"commit:marker\",\"ph\":\"X\",\"ts\":20"));
    }

    #[test]
    fn empty_trace_still_valid() {
        let a = export_chrome_trace(&[]);
        assert!(a.contains("\"traceEvents\":["));
        assert!(a.ends_with("]}"));
    }
}
