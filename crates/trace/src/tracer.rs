//! The trace sink: bounded per-core ring buffers of timestamped
//! records.
//!
//! A [`Tracer`] is shared by every emitter of one simulated machine
//! through a [`TraceHandle`] (`Rc<RefCell<…>>`): the machine front
//! end, the persistent-memory device and the tiered log buffer all
//! hold an `Option<TraceHandle>` that is `None` unless tracing was
//! explicitly enabled, so the disabled path costs one branch.
//!
//! Records carry three deterministic clocks: the simulated cycle
//! counter (`now`), the durable persist-event counter (`devent`,
//! mirrored from the device on every accepted mutation) and a per-core
//! sequence number (`seq`). None of them ever reads wall time, so the
//! same seeded run emits the same records in the same order.

use crate::event::Event;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One emitted event with its deterministic timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global emission index within the tracer (merge order).
    pub order: u64,
    /// Durable persist-event count at emission time.
    pub devent: u64,
    /// Issuing core slot.
    pub core: u8,
    /// Per-core sequence number (0-based, dense per core).
    pub seq: u64,
    /// Simulated cycle clock at emission time.
    pub now: u64,
    /// The event itself.
    pub event: Event,
}

#[derive(Debug, Clone, Default)]
struct Ring {
    buf: VecDeque<TraceRecord>,
    seq: u64,
    dropped: u64,
}

/// Bounded per-core ring-buffer sink for [`Event`]s.
#[derive(Debug, Clone)]
pub struct Tracer {
    capacity: usize,
    rings: Vec<Ring>,
    core: u8,
    clock: u64,
    devent: u64,
    order: u64,
}

impl Tracer {
    /// Creates a tracer whose per-core rings hold at most
    /// `capacity_per_core` records (oldest drop first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_per_core` is zero.
    pub fn new(capacity_per_core: usize) -> Self {
        assert!(capacity_per_core > 0, "ring capacity must be positive");
        Tracer {
            capacity: capacity_per_core,
            rings: vec![Ring::default()],
            core: 0,
            clock: 0,
            devent: 0,
            order: 0,
        }
    }

    /// Sets the core slot stamped on subsequent records (called by the
    /// multi-core front end at every scheduling step).
    pub fn set_core(&mut self, core: u8) {
        self.core = core;
        while self.rings.len() <= core as usize {
            self.rings.push(Ring::default());
        }
    }

    /// The core slot currently stamped on records.
    pub fn core(&self) -> u8 {
        self.core
    }

    /// Updates the simulated cycle clock stamped on subsequent records.
    pub fn set_clock(&mut self, now: u64) {
        self.clock = now;
    }

    /// Mirrors the device's durable persist-event counter.
    pub fn set_devent(&mut self, devent: u64) {
        self.devent = devent;
    }

    /// Emits one event at the current clock / devent / core.
    pub fn emit(&mut self, event: Event) {
        let ring = &mut self.rings[self.core as usize];
        let rec = TraceRecord {
            order: self.order,
            devent: self.devent,
            core: self.core,
            seq: ring.seq,
            now: self.clock,
            event,
        };
        self.order += 1;
        ring.seq += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(rec);
    }

    /// Emits one event, updating the clock first.
    pub fn emit_at(&mut self, now: u64, event: Event) {
        self.set_clock(now);
        self.emit(event);
    }

    /// Total records dropped across all rings (capacity overflow).
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped).sum()
    }

    /// Total records currently buffered.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.buf.len()).sum()
    }

    /// `true` when nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All buffered records in the deterministic merged order (global
    /// emission order, which refines `(devent, core, seq)`).
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self
            .rings
            .iter()
            .flat_map(|r| r.buf.iter().cloned())
            .collect();
        out.sort_unstable_by_key(|r| r.order);
        out
    }

    /// Drains all buffered records (merged order), resetting the rings
    /// but not the sequence counters.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        let out = self.records();
        for r in &mut self.rings {
            r.buf.clear();
        }
        out
    }
}

/// Shared handle to a [`Tracer`]; every emitter of one machine clones
/// the same handle.
pub type TraceHandle = Rc<RefCell<Tracer>>;

/// Creates a fresh shared tracer with the given per-core capacity.
pub fn tracer(capacity_per_core: usize) -> TraceHandle {
    Rc::new(RefCell::new(Tracer::new(capacity_per_core)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(addr: u64) -> Event {
        Event::StoreIssue {
            addr,
            log: true,
            lazy: false,
            honoured: true,
        }
    }

    #[test]
    fn records_carry_deterministic_clocks() {
        let mut t = Tracer::new(8);
        t.set_clock(100);
        t.set_devent(3);
        t.emit(ev(8));
        t.emit_at(120, ev(16));
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].now, recs[0].devent, recs[0].seq), (100, 3, 0));
        assert_eq!((recs[1].now, recs[1].seq), (120, 1));
        assert_eq!(recs[0].core, 0);
    }

    #[test]
    fn per_core_sequences_are_dense() {
        let mut t = Tracer::new(8);
        t.emit(ev(0));
        t.set_core(2);
        t.emit(ev(8));
        t.emit(ev(16));
        t.set_core(0);
        t.emit(ev(24));
        let recs = t.records();
        assert_eq!(recs.len(), 4);
        // Merge order is emission order.
        assert_eq!(
            recs.iter().map(|r| (r.core, r.seq)).collect::<Vec<_>>(),
            vec![(0, 0), (2, 0), (2, 1), (0, 1)]
        );
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut t = Tracer::new(2);
        for i in 0..5 {
            t.emit(ev(i * 8));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let recs = t.records();
        // The newest records survive; sequences keep counting.
        assert_eq!(recs[0].seq, 3);
        assert_eq!(recs[1].seq, 4);
    }

    #[test]
    fn take_drains() {
        let mut t = Tracer::new(4);
        t.emit(ev(0));
        assert_eq!(t.take().len(), 1);
        assert!(t.is_empty());
        t.emit(ev(8));
        assert_eq!(t.records()[0].seq, 1, "sequence survives the drain");
    }

    #[test]
    fn handle_is_shared() {
        let h = tracer(4);
        h.borrow_mut().emit(ev(0));
        let h2 = h.clone();
        h2.borrow_mut().emit(ev(8));
        assert_eq!(h.borrow().len(), 2);
    }
}
