//! Deterministic event tracing and metrics for the SLPMT simulator.
//!
//! Every mechanism the paper reasons about — `storeT` issue, log-bit
//! conjunction, tiered log-buffer coalescing (Fig. 6), WPQ pressure,
//! commit persist ordering (Fig. 4), lazy-persistency signatures
//! (§III-C2) and recovery — can emit a typed [`Event`] into a
//! [`Tracer`]. A trace is **fully deterministic**: records are
//! timestamped by the simulated cycle clock, the durable persist-event
//! counter and a per-core sequence number, never by wall time, so the
//! same `(seed, schedule, plan)` produces a byte-identical export.
//!
//! Tracing is **zero-overhead when disabled**: emitters hold an
//! `Option<`[`TraceHandle`]`>` that is `None` by default, so the hot
//! path pays a single predictable branch (guarded by the
//! `sim_throughput` regression check in CI; the `no-trace` features of
//! the instrumented crates compile the hooks out entirely for the
//! baseline build).
//!
//! Sinks:
//!
//! * [`Tracer`] — bounded per-core ring buffers (oldest records drop
//!   first, with a drop count).
//! * [`export_chrome_trace`] — Chrome/Perfetto trace-event JSON, one
//!   track per core plus one per device component.
//! * [`Metrics`] — an aggregator over the records: tier-occupancy
//!   histograms, WPQ depth, log bytes per transaction, signature
//!   false-positive rate, forced-persist counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod tracer;

pub use event::{CommitStage, Component, Event, PersistKind, RecoveryStage, RequestVerb};
pub use json::JsonWriter;
pub use metrics::Metrics;
pub use perfetto::export_chrome_trace;
pub use tracer::{tracer, TraceHandle, TraceRecord, Tracer};
