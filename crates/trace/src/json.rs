//! A minimal, dependency-free JSON writer.
//!
//! The workspace bakes in no serialisation dependency, so both the
//! Perfetto exporter and the CLI's `--json` output hand-emit JSON
//! through this writer. Output is deterministic: keys are written in
//! call order and numbers format via the standard integer/float
//! formatters.

use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Streaming JSON writer with automatic comma placement.
///
/// ```
/// use slpmt_trace::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_obj();
/// w.key("scheme");
/// w.string("SLPMT");
/// w.key("ops");
/// w.u64(100);
/// w.end_obj();
/// assert_eq!(w.finish(), r#"{"scheme":"SLPMT","ops":100}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has an element
    /// (so the next element needs a comma).
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(has) = self.stack.last_mut() {
            if *has && !self.out.ends_with(':') {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_obj(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_arr(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Writes an object key (the next call writes its value).
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        let _ = write!(self.out, "\"{}\":", escape(k));
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        let _ = write!(self.out, "\"{}\"", escape(s));
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a float value (finite; NaN/∞ fall back to `null`).
    pub fn f64(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure_with_commas() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("a");
        w.begin_arr();
        w.u64(1);
        w.u64(2);
        w.begin_obj();
        w.key("b");
        w.bool(true);
        w.end_obj();
        w.end_arr();
        w.key("c");
        w.f64(1.5);
        w.key("d");
        w.i64(-3);
        w.end_obj();
        assert_eq!(w.finish(), r#"{"a":[1,2,{"b":true}],"c":1.5,"d":-3}"#);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut w = JsonWriter::new();
        w.begin_arr();
        w.f64(f64::NAN);
        w.end_arr();
        assert_eq!(w.finish(), "[null]");
    }
}
