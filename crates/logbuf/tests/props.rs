//! Randomized tests for the tiered log buffer: coalescing must
//! preserve exactly the logged bytes — no loss, no overlap, natural
//! alignment. Seeded loops replace `proptest` (unavailable offline).

use slpmt_logbuf::{LogRecord, TieredLogBuffer};
use slpmt_pmem::PmAddr;
use slpmt_prng::SimRng;
use std::collections::BTreeMap;

#[test]
fn coalescing_preserves_coverage_and_payload() {
    for case in 0..96u64 {
        let mut rng = SimRng::seed_from_u64(0xC0A1 ^ case);
        let mut buf = TieredLogBuffer::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new(); // word addr -> first-logged value
        let mut flushed: Vec<slpmt_logbuf::FlushEvent> = Vec::new();
        for _ in 0..rng.gen_usize(1..80) {
            let addr = rng.gen_range(0..64) * 8;
            let val = rng.next_u64();
            // The hardware logs each word once (log bits); mimic that.
            if model.contains_key(&addr) {
                continue;
            }
            model.insert(addr, val);
            flushed.extend(buf.insert(LogRecord::new(1, PmAddr::new(addr), &val.to_le_bytes())));
        }
        if let Some(ev) = buf.drain_all() {
            flushed.push(ev);
        }
        // Reconstruct coverage from every flushed record.
        let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in &flushed {
            for e in &ev.entries {
                assert_eq!(e.payload.len() % 8, 0, "case {case}");
                assert!(
                    e.addr.raw() % e.payload.len() as u64 == 0 || e.payload.len() > 64,
                    "case {case}: records naturally aligned"
                );
                for (i, chunk) in e.payload.chunks_exact(8).enumerate() {
                    let addr = e.addr.raw() + i as u64 * 8;
                    let val = u64::from_le_bytes(chunk.try_into().unwrap());
                    assert!(
                        seen.insert(addr, val).is_none(),
                        "case {case}: no overlapping coverage"
                    );
                }
            }
        }
        assert_eq!(
            seen, model,
            "case {case}: exact coverage with original payloads"
        );
    }
}

#[test]
fn flush_line_extracts_exactly_that_line() {
    for case in 0..96u64 {
        let mut rng = SimRng::seed_from_u64(0xF1A5 ^ case);
        let target = rng.gen_range(0..8);
        let mut buf = TieredLogBuffer::new();
        let mut in_line = 0usize;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..rng.gen_usize(1..40) {
            let w = rng.gen_range(0..64);
            if !seen.insert(w) {
                continue;
            }
            // Tier-overflow flushes may carry target-line words away
            // before the explicit flush: discount them.
            for ev in buf.insert(LogRecord::new(1, PmAddr::new(w * 8), &[w as u8; 8])) {
                for e in &ev.entries {
                    if e.addr.line() == PmAddr::new(target * 64) {
                        in_line -= e.payload.len() / 8;
                    }
                }
            }
            if w / 8 == target {
                in_line += 1;
            }
        }
        let line = PmAddr::new(target * 64);
        match buf.flush_line(line) {
            Some(ev) => {
                let words_covered: usize = ev.entries.iter().map(|e| e.payload.len() / 8).sum();
                assert_eq!(words_covered, in_line, "case {case}");
                assert!(
                    ev.entries.iter().all(|e| e.addr.line() == line),
                    "case {case}"
                );
            }
            None => assert_eq!(in_line, 0, "case {case}"),
        }
        assert!(!buf.has_records_for_line(line), "case {case}");
    }
}
