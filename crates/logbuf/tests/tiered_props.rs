//! Structural property tests for the four-tier buddy-coalescing
//! buffer, complementing `props.rs` (which checks end-to-end payload
//! conservation): these assert the *internal* invariants of §III-B2 —
//! tier occupancy, size classes, natural alignment, no buffered
//! overlap, packed flush sizing — after every single insert of seeded
//! `slpmt-prng` streams.

use slpmt_logbuf::tiered::{TIERS, TIER_CAPACITY};
use slpmt_logbuf::{packed_lines, FlushEvent, LogRecord, TieredLogBuffer};
use slpmt_pmem::PmAddr;
use slpmt_prng::SimRng;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// Size class of tier `i`: 2^i words.
fn tier_bytes(tier: usize) -> usize {
    8 << tier
}

/// Asserts every structural invariant of the buffer's current state.
fn check_invariants(buf: &TieredLogBuffer, case: u64) {
    let lens = buf.tier_lens();
    assert_eq!(lens.len(), TIERS);
    for (tier, &len) in lens.iter().enumerate() {
        assert!(
            len <= TIER_CAPACITY,
            "case {case}: tier {tier} holds {len} > {TIER_CAPACITY} records"
        );
    }
    assert_eq!(lens.iter().sum::<usize>(), buf.len(), "case {case}");
    // Size class + natural alignment, reconstructed per record.
    let mut covered: BTreeSet<(u64, u64)> = BTreeSet::new(); // (txn, word addr)
    for r in buf.records() {
        let size = r.payload.len();
        assert!(
            (0..TIERS).any(|t| tier_bytes(t) == size),
            "case {case}: record size {size} is no tier's class"
        );
        assert_eq!(
            r.addr.raw() % size as u64,
            0,
            "case {case}: {size}-byte record at {} not naturally aligned",
            r.addr
        );
        for w in 0..r.words() {
            let word = r.addr.raw() + w as u64 * 8;
            assert!(
                covered.insert((r.txn, word)),
                "case {case}: word {word:#x} of txn {} buffered twice",
                r.txn
            );
        }
    }
}

/// Flush events must be packed pad-style: the advertised WPQ line
/// count is exactly what the records' media bytes require.
fn check_packing(ev: &FlushEvent, case: u64) {
    let media: u64 = ev.entries.iter().map(|e| e.payload.len() as u64 + 8).sum();
    assert_eq!(
        ev.lines,
        packed_lines(media),
        "case {case}: flush of {media} media bytes packed into {} lines",
        ev.lines
    );
    assert!(!ev.entries.is_empty(), "case {case}: empty flush event");
}

#[test]
fn invariants_hold_after_every_insert() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x7123_D005 ^ case);
        let mut buf = TieredLogBuffer::new();
        // Multiple transactions interleaved over a small line pool so
        // buddies, duplicates-across-txns and overflows all occur.
        let mut logged: BTreeSet<(u64, u64)> = BTreeSet::new();
        for _ in 0..rng.gen_usize(1..200) {
            let txn = rng.gen_range(1..4);
            let addr = rng.gen_range(0..96) * 8;
            // One record per (txn, word), like the machine's log bits.
            if !logged.insert((txn, addr)) {
                continue;
            }
            let val = rng.next_u64();
            let events = buf.insert(LogRecord::new(txn, PmAddr::new(addr), &val.to_le_bytes()));
            for ev in &events {
                check_packing(ev, case);
            }
            check_invariants(&buf, case);
        }
        if let Some(ev) = buf.drain_all() {
            check_packing(&ev, case);
        }
        assert!(buf.is_empty(), "case {case}: drain_all left records");
        check_invariants(&buf, case);
    }
}

#[test]
fn coalescing_only_merges_true_buddies() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x0B0D_D1E5 ^ case);
        let mut buf = TieredLogBuffer::new();
        let mut seen = BTreeSet::new();
        for _ in 0..rng.gen_usize(1..64) {
            let addr = rng.gen_range(0..64) * 8;
            if !seen.insert(addr) {
                continue;
            }
            buf.insert(LogRecord::new(1, PmAddr::new(addr), &[0xAB; 8]));
        }
        // A merged record of 2^k words exists only if all 2^k aligned
        // words were inserted — reconstruct and cross-check.
        for r in buf.records() {
            for w in 0..r.words() {
                let word = r.addr.raw() + w as u64 * 8;
                assert!(
                    seen.contains(&word),
                    "case {case}: record at {} covers never-inserted word {word:#x}",
                    r.addr
                );
            }
        }
        check_invariants(&buf, case);
    }
}

#[test]
fn stats_balance_inserts_coalesces_and_flushes() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x0005_7A75 ^ case);
        let mut buf = TieredLogBuffer::new();
        let mut seen = BTreeSet::new();
        let mut flushed_records = 0usize;
        for _ in 0..rng.gen_usize(1..150) {
            let addr = rng.gen_range(0..128) * 8;
            if !seen.insert(addr) {
                continue;
            }
            for ev in buf.insert(LogRecord::new(7, PmAddr::new(addr), &[1; 8])) {
                flushed_records += ev.entries.len();
            }
        }
        // Every insert is one record; every coalesce removes exactly
        // one; the rest is either still buffered or was flushed.
        let s = *buf.stats();
        assert_eq!(
            s.inserts as usize,
            buf.len() + flushed_records + s.coalesces as usize,
            "case {case}: record balance broken"
        );
    }
}

#[test]
fn redo_update_word_survives_coalescing() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x4ED0 ^ case);
        let mut buf = TieredLogBuffer::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut flushed: Vec<FlushEvent> = Vec::new();
        for _ in 0..rng.gen_usize(1..120) {
            let addr = rng.gen_range(0..32) * 8;
            let val = rng.next_u64();
            match model.entry(addr) {
                // Redo path: rewrite the buffered final value in place;
                // a miss means the record already flushed — the model
                // keeps the flushed (older) value for those words.
                Entry::Occupied(mut o) => {
                    if buf.update_word(1, PmAddr::new(addr), &val.to_le_bytes()) {
                        o.insert(val);
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(val);
                    flushed.extend(buf.insert(LogRecord::new(
                        1,
                        PmAddr::new(addr),
                        &val.to_le_bytes(),
                    )));
                }
            }
            check_invariants(&buf, case);
        }
        flushed.extend(buf.drain_all());
        let mut got: BTreeMap<u64, u64> = BTreeMap::new();
        for e in flushed.iter().flat_map(|ev| &ev.entries) {
            for (i, chunk) in e.payload.chunks_exact(8).enumerate() {
                let addr = e.addr.raw() + i as u64 * 8;
                // First write wins in the reconstruction: a flushed
                // record precedes any re-inserted... but words are
                // inserted once, so addresses never repeat.
                let prev = got.insert(addr, u64::from_le_bytes(chunk.try_into().unwrap()));
                assert!(prev.is_none(), "case {case}: word {addr:#x} flushed twice");
            }
        }
        assert_eq!(got, model, "case {case}: final values lost in coalescing");
    }
}
