//! EDE-style bufferless logging path (Shull et al., ISCA 2021).
//!
//! EDE supports logging at any granularity and removes ordering fences
//! by sorting dependent operations in the issue queue, but it has no
//! on-core log *buffer*: every logged store emits its own word record
//! straight to the persistence domain. The records append sequentially
//! into the log area (the device's log-tail accounting packs them into
//! media lines), but without a buffer there is no *record* coalescing
//! — eight words of one cache line cost eight 16-byte records where
//! the tiered buffer pays one 72-byte line record. That per-record
//! metadata overhead is what costs EDE relative to the baseline
//! (§VI-D1: "it loses opportunities for hardware log coalescing via a
//! log buffer").

use crate::record::{FlushEvent, LogRecord};
use slpmt_pmem::addr::{PmAddr, WORD_BYTES};

/// EDE's bufferless log path: one record per logged word.
///
/// ```
/// use slpmt_logbuf::EdeCombiner;
/// use slpmt_pmem::PmAddr;
/// let mut e = EdeCombiner::new();
/// let ev = e.log_word(1, PmAddr::new(0), [7; 8]).unwrap();
/// assert_eq!(ev.entries.len(), 1);
/// assert_eq!(ev.entries[0].payload.len(), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdeCombiner {
    emitted: u64,
}

impl EdeCombiner {
    /// Creates the (stateless) log path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records emitted to the persistence domain.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// `true` if a record is pending emission — never, for EDE.
    pub fn has_pending(&self) -> bool {
        false
    }

    /// Logs the pre-image of one word, emitting the record
    /// immediately.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn log_word(
        &mut self,
        txn: u64,
        addr: PmAddr,
        pre_image: [u8; WORD_BYTES],
    ) -> Option<FlushEvent> {
        assert!(addr.is_word_aligned(), "EDE logs whole words");
        self.emitted += 1;
        let rec = LogRecord::new(txn, addr, &pre_image);
        Some(crate::record::flush_event(vec![rec]))
    }

    /// Emits pending state — a no-op for the bufferless path.
    pub fn drain(&mut self) -> Option<FlushEvent> {
        None
    }

    /// Emits the pending record covering `line` — a no-op: records are
    /// already in the persistence domain when the line is evicted.
    pub fn flush_line(&mut self, _line: PmAddr) -> Option<FlushEvent> {
        None
    }

    /// Drops pending state (abort) — a no-op.
    pub fn clear(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_word_emits_a_record() {
        let mut e = EdeCombiner::new();
        for w in 0..8u64 {
            let ev = e.log_word(1, PmAddr::new(w * 8), [w as u8; 8]).unwrap();
            assert_eq!(ev.entries.len(), 1);
            assert_eq!(ev.media_bytes(), 16);
        }
        assert_eq!(e.emitted(), 8);
    }

    #[test]
    fn no_record_coalescing() {
        // Eight words of one line: EDE pays 8 × 16 B = 128 B of media
        // where the tiered buffer coalesces them into one 72 B record.
        let mut e = EdeCombiner::new();
        let total: u64 = (0..8u64)
            .map(|w| {
                e.log_word(1, PmAddr::new(w * 8), [0; 8])
                    .unwrap()
                    .media_bytes()
            })
            .sum();
        assert_eq!(total, 128);
    }

    #[test]
    fn drain_and_flush_are_noops() {
        let mut e = EdeCombiner::new();
        e.log_word(1, PmAddr::new(0), [0; 8]);
        assert!(e.drain().is_none());
        assert!(e.flush_line(PmAddr::new(0)).is_none());
        assert!(!e.has_pending());
    }

    #[test]
    #[should_panic(expected = "whole words")]
    fn unaligned_word_rejected() {
        let mut e = EdeCombiner::new();
        e.log_word(1, PmAddr::new(3), [0; 8]);
    }
}
