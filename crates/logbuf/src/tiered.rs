//! The four-tier buddy-coalescing log buffer (§III-B2, Figure 6).
//!
//! Tier *i* holds records of 2^i words (word, double, quad, line), up
//! to eight records each. On insertion the buffer searches the tier for
//! the record's *buddy* (the neighbouring equally-sized block); if
//! found, the pair coalesces into the next tier, recursively. A tier
//! that fills with no coalescing opportunity drains: its records are
//! packed pad-style into cache lines and persisted.
//!
//! The buffer also serves the two eviction-time duties of §II/III-A:
//! flushing the records of a specific line before that line overflows
//! to L3, and discarding the records of lazily-persistent lines at
//! commit.

use crate::record::{flush_event, FlushEvent, LogRecord};
use slpmt_pmem::addr::{PmAddr, LINE_BYTES, WORD_BYTES};
use slpmt_trace::{Event as TraceEvent, TraceHandle, Tracer};

/// Number of tiers: word, double-word, quad-word, line.
pub const TIERS: usize = 4;
/// Records each tier retains before draining.
pub const TIER_CAPACITY: usize = 8;

/// Counters describing buffer behaviour, used by the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TieredStats {
    /// Word records inserted.
    pub inserts: u64,
    /// Buddy merges performed (each removes one record).
    pub coalesces: u64,
    /// Tier drains forced by a full tier.
    pub overflow_drains: u64,
    /// Records discarded at commit because their line was lazy.
    pub discarded: u64,
}

/// The SLPMT four-tier log buffer.
///
/// ```
/// use slpmt_logbuf::{TieredLogBuffer, LogRecord};
/// use slpmt_pmem::PmAddr;
/// let mut buf = TieredLogBuffer::new();
/// // Two adjacent word records coalesce into a double-word record.
/// buf.insert(LogRecord::new(1, PmAddr::new(0), &[1; 8]));
/// buf.insert(LogRecord::new(1, PmAddr::new(8), &[2; 8]));
/// assert_eq!(buf.len(), 1);
/// let drained = buf.drain_all().unwrap();
/// assert_eq!(drained.entries[0].payload.len(), 16);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TieredLogBuffer {
    tiers: [Vec<LogRecord>; TIERS],
    stats: TieredStats,
    /// Optional trace sink shared with the owning machine. `None` (the
    /// default) keeps every buffer operation at a single branch.
    tracer: Option<TraceHandle>,
}

fn tier_of(record: &LogRecord) -> usize {
    match record.payload.len() {
        8 => 0,
        16 => 1,
        32 => 2,
        64 => 3,
        n => unreachable!("record size {n} rejected at construction"),
    }
}

impl TieredLogBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> &TieredStats {
        &self.stats
    }

    /// Installs (or removes) the shared trace sink: appends, buddy
    /// coalesces, drains and occupancy snapshots are emitted while a
    /// sink is present.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.tracer = tracer;
    }

    /// `true` when buffer operations should collect trace detail.
    fn tracing(&self) -> bool {
        !cfg!(feature = "no-trace") && self.tracer.is_some()
    }

    /// Runs `f` against the sink when tracing is enabled.
    fn trace(&self, f: impl FnOnce(&mut Tracer)) {
        if cfg!(feature = "no-trace") {
            return;
        }
        if let Some(t) = &self.tracer {
            f(&mut t.borrow_mut());
        }
    }

    /// Emits a post-mutation tier-occupancy snapshot.
    fn trace_occupancy(&self) {
        if !self.tracing() {
            return;
        }
        let lens = self.tier_lens();
        self.trace(|t| {
            t.emit(TraceEvent::TierOccupancy {
                lens: [
                    lens[0].min(255) as u8,
                    lens[1].min(255) as u8,
                    lens[2].min(255) as u8,
                    lens[3].min(255) as u8,
                ],
            });
        });
    }

    /// Total records currently buffered.
    pub fn len(&self) -> usize {
        self.tiers.iter().map(Vec::len).sum()
    }

    /// `true` when no record is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a record, coalescing upward; returns the flush events of
    /// any tier that overflowed in the process.
    pub fn insert(&mut self, record: LogRecord) -> Vec<FlushEvent> {
        self.stats.inserts += 1;
        let mut events = Vec::new();
        let mut rec = record;
        loop {
            let tier = tier_of(&rec);
            // Search the tier for the buddy (same transaction).
            let buddy_addr = rec.buddy_addr();
            if tier < TIERS - 1 {
                if let Some(pos) = self.tiers[tier]
                    .iter()
                    .position(|r| r.addr == buddy_addr && r.txn == rec.txn)
                {
                    let buddy = self.tiers[tier].swap_remove(pos);
                    self.stats.coalesces += 1;
                    rec = rec.merge(buddy);
                    self.trace(|t| {
                        t.emit(TraceEvent::TierCoalesce {
                            tier: tier_of(&rec) as u8,
                            addr: rec.addr.raw(),
                            len: rec.payload.len() as u16,
                        });
                    });
                    continue; // try to coalesce again in the next tier
                }
            }
            // No coalescing opportunity: drain the tier if full.
            if self.tiers[tier].len() == TIER_CAPACITY {
                self.stats.overflow_drains += 1;
                let drained = std::mem::take(&mut self.tiers[tier]);
                self.trace(|t| {
                    for r in &drained {
                        t.emit(TraceEvent::TierDrain {
                            tier: tier as u8,
                            addr: r.addr.raw(),
                            len: r.payload.len() as u16,
                            overflow: true,
                        });
                    }
                });
                events.push(flush_event(drained));
            }
            let (addr, len) = (rec.addr.raw(), rec.payload.len() as u16);
            self.tiers[tier].push(rec);
            self.trace(|t| {
                t.emit(TraceEvent::TierAppend {
                    tier: tier as u8,
                    addr,
                    len,
                });
            });
            self.trace_occupancy();
            return events;
        }
    }

    /// Updates the buffered bytes covering word `addr` of transaction
    /// `txn` with `data` — the redo-logging path, where a record must
    /// hold the *final* value of the word. Returns `false` when no
    /// buffered record covers the word (it was already flushed; the
    /// caller appends a fresh record, which forward replay applies
    /// last).
    pub fn update_word(&mut self, txn: u64, addr: PmAddr, data: &[u8; WORD_BYTES]) -> bool {
        let word = addr.raw() & !(WORD_BYTES as u64 - 1);
        for tier in &mut self.tiers {
            for rec in tier.iter_mut() {
                if rec.txn != txn {
                    continue;
                }
                let start = rec.addr.raw();
                let end = start + rec.payload.len() as u64;
                if word >= start && word < end {
                    let off = (word - start) as usize;
                    rec.payload[off..off + WORD_BYTES].copy_from_slice(data);
                    return true;
                }
            }
        }
        false
    }

    /// Whether any buffered record covers bytes of the line at `line`.
    pub fn has_records_for_line(&self, line: PmAddr) -> bool {
        let line = line.line();
        self.tiers.iter().flatten().any(|r| r.line() == line)
    }

    /// Flushes the records covering `line` (an L2→L3 eviction must
    /// persist them before the data leaves the private cache). Returns
    /// `None` when the buffer holds no such record.
    pub fn flush_line(&mut self, line: PmAddr) -> Option<FlushEvent> {
        let line = line.line();
        let tracing = self.tracing();
        let mut out = Vec::new();
        let mut out_tiers = Vec::new();
        for (ti, tier) in self.tiers.iter_mut().enumerate() {
            let mut i = 0;
            while i < tier.len() {
                if tier[i].line() == line {
                    if tracing {
                        out_tiers.push(ti as u8);
                    }
                    out.push(tier.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            self.trace(|t| {
                for (ti, r) in out_tiers.iter().zip(&out) {
                    t.emit(TraceEvent::TierDrain {
                        tier: *ti,
                        addr: r.addr.raw(),
                        len: r.payload.len() as u16,
                        overflow: false,
                    });
                }
            });
            self.trace_occupancy();
            Some(flush_event(out))
        }
    }

    /// Discards the records of lazily-persistent `lines` (commit scan,
    /// §III-B2 last paragraph). Returns how many records were dropped.
    pub fn discard_lines(&mut self, lines: &[PmAddr]) -> usize {
        let lines: Vec<PmAddr> = lines.iter().map(|a| a.line()).collect();
        let mut dropped = 0;
        for tier in &mut self.tiers {
            let before = tier.len();
            tier.retain(|r| !lines.contains(&r.line()));
            dropped += before - tier.len();
        }
        self.stats.discarded += dropped as u64;
        dropped
    }

    /// Drains every tier into one packed flush (transaction commit).
    /// Returns `None` when empty.
    pub fn drain_all(&mut self) -> Option<FlushEvent> {
        let tracing = self.tracing();
        let mut all = Vec::new();
        let mut all_tiers = Vec::new();
        for (ti, tier) in self.tiers.iter_mut().enumerate() {
            if tracing {
                all_tiers.resize(all_tiers.len() + tier.len(), ti as u8);
            }
            all.append(tier);
        }
        if all.is_empty() {
            None
        } else {
            self.trace(|t| {
                for (ti, r) in all_tiers.iter().zip(&all) {
                    t.emit(TraceEvent::TierDrain {
                        tier: *ti,
                        addr: r.addr.raw(),
                        len: r.payload.len() as u16,
                        overflow: false,
                    });
                }
            });
            self.trace_occupancy();
            Some(flush_event(all))
        }
    }

    /// Clears the buffer without persisting anything (transaction
    /// abort, §V-B step 1).
    pub fn clear(&mut self) {
        for tier in &mut self.tiers {
            tier.clear();
        }
    }

    /// Records currently buffered in each tier (word, double, quad,
    /// line) — the occupancy invariant hook: no tier ever exceeds
    /// [`TIER_CAPACITY`].
    pub fn tier_lens(&self) -> [usize; TIERS] {
        [
            self.tiers[0].len(),
            self.tiers[1].len(),
            self.tiers[2].len(),
            self.tiers[3].len(),
        ]
    }

    /// Every buffered record, tier by tier (test hook: size-class,
    /// alignment and overlap invariants without draining).
    pub fn records(&self) -> impl Iterator<Item = &LogRecord> {
        self.tiers.iter().flatten()
    }

    /// Words currently covered by buffered records of transaction `txn`
    /// within `line` — a bitmap at word granularity. Used by tests and
    /// the speculative-logging path to avoid double-logging.
    pub fn words_covered(&self, txn: u64, line: PmAddr) -> u8 {
        let line = line.line();
        let mut mask = 0u8;
        for r in self.tiers.iter().flatten() {
            if r.txn == txn && r.line() == line {
                let first = ((r.addr.raw() - line.raw()) / WORD_BYTES as u64) as usize;
                for w in 0..r.words() {
                    mask |= 1 << (first + w);
                }
            }
        }
        mask
    }
}

/// Total on-chip buffer capacity in bytes: the lcm-based tier sizes of
/// §III-B2 (2 + 3 + 5 + 9 cache lines = 1,216 bytes).
pub const BUFFER_BYTES: usize = (2 + 3 + 5 + 9) * LINE_BYTES;

#[cfg(test)]
mod tests {
    use super::*;

    fn word(txn: u64, addr: u64, fill: u8) -> LogRecord {
        LogRecord::new(txn, PmAddr::new(addr), &[fill; 8])
    }

    #[test]
    fn buffer_bytes_match_paper() {
        assert_eq!(BUFFER_BYTES, 1216);
    }

    #[test]
    fn single_insert_no_flush() {
        let mut b = TieredLogBuffer::new();
        assert!(b.insert(word(1, 0, 0)).is_empty());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn full_line_coalesces_to_top_tier() {
        let mut b = TieredLogBuffer::new();
        for w in 0..8 {
            assert!(b.insert(word(1, w * 8, w as u8)).is_empty());
        }
        assert_eq!(b.len(), 1, "eight words coalesce into one line record");
        let ev = b.drain_all().unwrap();
        assert_eq!(ev.entries.len(), 1);
        assert_eq!(ev.entries[0].payload.len(), 64);
        // Payload is in address order.
        for w in 0..8usize {
            assert!(ev.entries[0].payload[w * 8..][..8]
                .iter()
                .all(|&x| x == w as u8));
        }
        assert_eq!(b.stats().coalesces, 7);
    }

    #[test]
    fn reverse_order_also_coalesces() {
        let mut b = TieredLogBuffer::new();
        for w in (0..8).rev() {
            b.insert(word(1, w * 8, w as u8));
        }
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn different_txns_do_not_coalesce() {
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 0, 1));
        b.insert(word(2, 8, 2));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn non_buddies_do_not_coalesce() {
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 8, 1));
        b.insert(word(1, 16, 2)); // adjacent but not a buddy pair (8^8=0, 16^8=24)
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn tier_overflow_drains_eight_records() {
        let mut b = TieredLogBuffer::new();
        // Nine non-coalescing word records (distinct lines).
        let mut events = Vec::new();
        for i in 0..9u64 {
            events.extend(b.insert(word(1, i * 64, i as u8)));
        }
        assert_eq!(events.len(), 1, "ninth insert drains the full word tier");
        let ev = &events[0];
        assert_eq!(ev.entries.len(), 8);
        assert_eq!(ev.lines, 2); // 8 × 16 B = 128 B → 2 lines
        assert_eq!(b.len(), 1);
        assert_eq!(b.stats().overflow_drains, 1);
    }

    #[test]
    fn flush_line_extracts_only_that_line() {
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 0, 1));
        b.insert(word(1, 8, 2)); // coalesces with the first
        b.insert(word(1, 64, 3));
        assert!(b.has_records_for_line(PmAddr::new(0)));
        let ev = b.flush_line(PmAddr::new(32)).unwrap(); // any addr in line 0
        assert_eq!(ev.entries.len(), 1);
        assert_eq!(ev.entries[0].payload.len(), 16);
        assert!(!b.has_records_for_line(PmAddr::new(0)));
        assert!(b.has_records_for_line(PmAddr::new(64)));
        assert!(b.flush_line(PmAddr::new(0)).is_none());
    }

    #[test]
    fn discard_lazy_lines() {
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 0, 1));
        b.insert(word(1, 64, 2));
        b.insert(word(1, 128, 3));
        let dropped = b.discard_lines(&[PmAddr::new(0), PmAddr::new(130)]);
        assert_eq!(dropped, 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.stats().discarded, 2);
    }

    #[test]
    fn drain_all_empties_buffer() {
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 0, 1));
        b.insert(word(1, 64, 2));
        let ev = b.drain_all().unwrap();
        assert_eq!(ev.entries.len(), 2);
        assert!(b.is_empty());
        assert!(b.drain_all().is_none());
    }

    #[test]
    fn clear_drops_without_events() {
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 0, 1));
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn words_covered_bitmap() {
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 0, 1));
        b.insert(word(1, 24, 2));
        assert_eq!(b.words_covered(1, PmAddr::new(0)), 0b0000_1001);
        assert_eq!(b.words_covered(2, PmAddr::new(0)), 0);
        // After coalescing 0+8, bitmap covers both words.
        b.insert(word(1, 8, 3));
        assert_eq!(b.words_covered(1, PmAddr::new(0)), 0b0000_1011);
    }

    #[test]
    fn duplicate_records_permitted() {
        // §III-B1: a reused evicted line may be logged again "without
        // overwriting prior logs".
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 0, 1));
        b.insert(word(1, 0, 2));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn update_word_rewrites_buffered_payload() {
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 0, 1));
        b.insert(word(1, 8, 2)); // coalesces into a 16-byte record
        assert!(b.update_word(1, PmAddr::new(8), &[9u8; 8]));
        let ev = b.drain_all().unwrap();
        assert_eq!(&ev.entries[0].payload[8..], &[9u8; 8]);
        assert_eq!(&ev.entries[0].payload[..8], &[1u8; 8]);
    }

    #[test]
    fn update_word_misses_flushed_or_foreign_records() {
        let mut b = TieredLogBuffer::new();
        b.insert(word(1, 0, 1));
        assert!(!b.update_word(2, PmAddr::new(0), &[9u8; 8]), "other txn");
        assert!(
            !b.update_word(1, PmAddr::new(64), &[9u8; 8]),
            "uncovered word"
        );
        b.drain_all();
        assert!(!b.update_word(1, PmAddr::new(0), &[9u8; 8]), "flushed");
    }

    #[test]
    fn cascaded_coalesce_across_three_tiers() {
        let mut b = TieredLogBuffer::new();
        // Insert words 0..3 of a line: 4 words → one quad record.
        for w in 0..4 {
            b.insert(word(1, w * 8, 0));
        }
        assert_eq!(b.len(), 1);
        let ev = b.drain_all().unwrap();
        assert_eq!(ev.entries[0].payload.len(), 32);
    }
}
