//! Log records and flush events shared by all buffer designs.

use slpmt_pmem::addr::{PmAddr, LINE_BYTES, WORD_BYTES};
use slpmt_pmem::device::LogFlushEntry;
use slpmt_pmem::payload::PayloadBuf;

/// An in-buffer log record: `payload.len()` bytes of pre-image starting
/// at the word-aligned `addr`, owned by transaction `txn`.
///
/// Record sizes are powers of two between one word and one line; the
/// media footprint is `payload + 8` bytes of address tag, i.e. the
/// 16/24/40/72-byte formats of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Owning transaction sequence number.
    pub txn: u64,
    /// Word-aligned, size-aligned start address.
    pub addr: PmAddr,
    /// Pre-image bytes (1, 2, 4 or 8 words), stored inline — a record
    /// is plain `Copy` data and never touches the heap.
    pub payload: PayloadBuf,
}

impl LogRecord {
    /// Creates a record, validating alignment and size.
    ///
    /// # Panics
    ///
    /// Panics if the payload length is not 8, 16, 32 or 64 bytes, or if
    /// `addr` is not aligned to the payload length (buddy coalescing
    /// relies on natural alignment).
    pub fn new(txn: u64, addr: PmAddr, payload: &[u8]) -> Self {
        let len = payload.len();
        assert!(
            matches!(len, 8 | 16 | 32 | 64),
            "record payload must be 1, 2, 4 or 8 words, got {len} bytes"
        );
        assert!(
            addr.raw().is_multiple_of(len as u64),
            "record at {addr} must be naturally aligned to its {len}-byte size"
        );
        LogRecord {
            txn,
            addr,
            payload: PayloadBuf::from_slice(payload),
        }
    }

    /// Number of words covered.
    pub fn words(&self) -> usize {
        self.payload.len() / WORD_BYTES
    }

    /// Media footprint in bytes (payload + 8-byte address tag).
    pub fn media_bytes(&self) -> u64 {
        self.payload.len() as u64 + 8
    }

    /// Address of the buddy record this one can coalesce with: the
    /// neighbouring, equally-sized, naturally-aligned block.
    pub fn buddy_addr(&self) -> PmAddr {
        PmAddr::new(self.addr.raw() ^ self.payload.len() as u64)
    }

    /// Line containing this record (records never span lines).
    pub fn line(&self) -> PmAddr {
        self.addr.line()
    }

    /// Merges this record with its buddy into the next-size record.
    ///
    /// # Panics
    ///
    /// Panics if `other` is not this record's buddy, differs in size or
    /// transaction, or the records already span a full line.
    pub fn merge(self, other: LogRecord) -> LogRecord {
        assert_eq!(self.txn, other.txn, "cannot merge across transactions");
        assert_eq!(
            self.payload.len(),
            other.payload.len(),
            "buddies have equal size"
        );
        assert!(self.payload.len() < LINE_BYTES, "line records do not merge");
        assert_eq!(other.addr, self.buddy_addr(), "not a buddy pair");
        let (lo, hi) = if self.addr < other.addr {
            (self, other)
        } else {
            (other, self)
        };
        LogRecord {
            txn: lo.txn,
            addr: lo.addr,
            payload: PayloadBuf::concat(&lo.payload, &hi.payload),
        }
    }

    /// Converts into the device-level flush entry.
    pub fn into_flush_entry(self) -> LogFlushEntry {
        LogFlushEntry {
            txn: self.txn,
            addr: self.addr,
            payload: self.payload,
        }
    }
}

/// A batch of records leaving a buffer for the persistence domain,
/// packed pad-style into `lines` 64-byte WPQ slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushEvent {
    /// Records in the batch.
    pub entries: Vec<LogFlushEntry>,
    /// WPQ slots the packed batch occupies.
    pub lines: u64,
}

impl FlushEvent {
    /// Total media bytes across the batch.
    pub fn media_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.payload.len() as u64 + 8)
            .sum()
    }
}

/// Pad-style packing: the number of 64-byte lines needed for records
/// totalling `media_bytes` bytes.
///
/// ```
/// use slpmt_logbuf::packed_lines;
/// assert_eq!(packed_lines(16), 1);
/// assert_eq!(packed_lines(64), 1);
/// assert_eq!(packed_lines(65), 2);
/// assert_eq!(packed_lines(8 * 72), 9); // a full line tier
/// ```
pub fn packed_lines(media_bytes: u64) -> u64 {
    media_bytes.div_ceil(LINE_BYTES as u64).max(1)
}

/// Builds a [`FlushEvent`] from records, computing the packing.
pub fn flush_event(records: Vec<LogRecord>) -> FlushEvent {
    let media: u64 = records.iter().map(LogRecord::media_bytes).sum();
    FlushEvent {
        lines: packed_lines(media),
        entries: records
            .into_iter()
            .map(LogRecord::into_flush_entry)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64, len: usize) -> LogRecord {
        LogRecord::new(1, PmAddr::new(addr), &vec![0xAA; len])
    }

    #[test]
    fn media_sizes_match_figure6() {
        assert_eq!(rec(0, 8).media_bytes(), 16);
        assert_eq!(rec(0, 16).media_bytes(), 24);
        assert_eq!(rec(0, 32).media_bytes(), 40);
        assert_eq!(rec(0, 64).media_bytes(), 72);
    }

    #[test]
    fn buddy_addresses() {
        assert_eq!(rec(0, 8).buddy_addr(), PmAddr::new(8));
        assert_eq!(rec(8, 8).buddy_addr(), PmAddr::new(0));
        assert_eq!(rec(16, 16).buddy_addr(), PmAddr::new(0));
        assert_eq!(rec(32, 32).buddy_addr(), PmAddr::new(0));
    }

    #[test]
    fn merge_produces_next_size() {
        let a = LogRecord::new(1, PmAddr::new(0), &[1; 8]);
        let b = LogRecord::new(1, PmAddr::new(8), &[2; 8]);
        let m = b.merge(a);
        assert_eq!(m.addr, PmAddr::new(0));
        assert_eq!(m.payload.len(), 16);
        assert_eq!(&m.payload[..8], &[1; 8]);
        assert_eq!(&m.payload[8..], &[2; 8]);
        // Order independent.
        let m2 = a.merge(b);
        assert_eq!(m, m2);
    }

    #[test]
    #[should_panic(expected = "not a buddy pair")]
    fn non_buddy_merge_rejected() {
        let a = rec(0, 8);
        let c = rec(16, 8); // buddy of 24, not of 0
        let _ = a.merge(c);
    }

    #[test]
    #[should_panic(expected = "across transactions")]
    fn cross_txn_merge_rejected() {
        let a = LogRecord::new(1, PmAddr::new(0), &[0; 8]);
        let b = LogRecord::new(2, PmAddr::new(8), &[0; 8]);
        let _ = a.merge(b);
    }

    #[test]
    #[should_panic(expected = "naturally aligned")]
    fn misaligned_record_rejected() {
        let _ = LogRecord::new(1, PmAddr::new(8), &[0; 16]);
    }

    #[test]
    #[should_panic(expected = "1, 2, 4 or 8 words")]
    fn ragged_record_rejected() {
        let _ = LogRecord::new(1, PmAddr::new(0), &[0; 24]);
    }

    #[test]
    fn packing_math() {
        assert_eq!(packed_lines(1), 1);
        assert_eq!(packed_lines(128), 2);
        // Eight word records: 8 × 16 = 128 B → 2 lines (the word tier
        // occupies two cache lines, §III-B2).
        let ev = flush_event((0..8).map(|i| rec(i * 8, 8)).collect());
        assert_eq!(ev.lines, 2);
        assert_eq!(ev.media_bytes(), 128);
        assert_eq!(ev.entries.len(), 8);
    }

    #[test]
    fn tier_capacities_match_paper_sizes() {
        // Figure 6 / §III-B2: tier sizes are lcm(record, 64) so each
        // retains eight records — 2, 3, 5 and 9 cache lines.
        assert_eq!(packed_lines(8 * 16), 2);
        assert_eq!(packed_lines(8 * 24), 3);
        assert_eq!(packed_lines(8 * 40), 5);
        assert_eq!(packed_lines(8 * 72), 9);
        // Total 1,216 bytes (§VI-B Table III "log buffer").
        assert_eq!((2 + 3 + 5 + 9) * 64, 1216);
    }
}
