//! ATOM-style line-granularity log buffer (Joshi et al., HPCA 2017).
//!
//! ATOM logs the *first* store to each cache line with a full-line undo
//! record and batches up to eight line records in an on-core buffer,
//! flushing them together. It decouples log persistence from data
//! persistence but cannot log below line granularity — the extra log
//! bytes relative to SLPMT's word records are the source of the
//! baseline-vs-ATOM gap in Figure 8 (right).

use crate::record::{flush_event, FlushEvent, LogRecord};
use slpmt_pmem::addr::{PmAddr, LINE_BYTES};

/// Maximum line records batched per flush.
pub const ATOM_CAPACITY: usize = 8;

/// ATOM's coalescing buffer of whole-line undo records.
///
/// ```
/// use slpmt_logbuf::AtomLineBuffer;
/// use slpmt_pmem::PmAddr;
/// let mut b = AtomLineBuffer::new();
/// assert!(b.insert_line(1, PmAddr::new(0), [0u8; 64]).is_none());
/// assert!(b.contains_line(PmAddr::new(0)));
/// let ev = b.drain_all().unwrap();
/// assert_eq!(ev.lines, 2); // 72 B packed
/// ```
#[derive(Debug, Clone, Default)]
pub struct AtomLineBuffer {
    records: Vec<LogRecord>,
    flushes: u64,
}

impl AtomLineBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffered record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of flush events emitted so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// `true` if a record for `line` is already buffered (the line's
    /// log bit equivalent: ATOM logs each line once per transaction).
    pub fn contains_line(&self, line: PmAddr) -> bool {
        let line = line.line();
        self.records.iter().any(|r| r.addr == line)
    }

    /// Buffers the pre-image of a whole line. If the buffer was full,
    /// returns the flush event draining the previous batch.
    ///
    /// # Panics
    ///
    /// Panics if `line` is not line-aligned.
    pub fn insert_line(
        &mut self,
        txn: u64,
        line: PmAddr,
        pre_image: [u8; LINE_BYTES],
    ) -> Option<FlushEvent> {
        assert!(line.is_line_aligned(), "ATOM records are whole lines");
        let ev = if self.records.len() == ATOM_CAPACITY {
            self.flushes += 1;
            Some(flush_event(std::mem::take(&mut self.records)))
        } else {
            None
        };
        self.records.push(LogRecord::new(txn, line, &pre_image));
        ev
    }

    /// Flushes the buffered record for `line` if present (needed before
    /// the line's data may leave the private cache).
    pub fn flush_line(&mut self, line: PmAddr) -> Option<FlushEvent> {
        let line = line.line();
        let pos = self.records.iter().position(|r| r.addr == line)?;
        let rec = self.records.swap_remove(pos);
        self.flushes += 1;
        Some(flush_event(vec![rec]))
    }

    /// Drains all buffered records (commit).
    pub fn drain_all(&mut self) -> Option<FlushEvent> {
        if self.records.is_empty() {
            return None;
        }
        self.flushes += 1;
        Some(flush_event(std::mem::take(&mut self.records)))
    }

    /// Drops everything without persisting (abort).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_eight_then_flushes() {
        let mut b = AtomLineBuffer::new();
        for i in 0..8u64 {
            assert!(b
                .insert_line(1, PmAddr::new(i * 64), [i as u8; 64])
                .is_none());
        }
        let ev = b
            .insert_line(1, PmAddr::new(8 * 64), [8; 64])
            .expect("ninth insert flushes the batch");
        assert_eq!(ev.entries.len(), 8);
        assert_eq!(ev.lines, 9); // 8 × 72 B = 576 B → 9 lines
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn line_granularity_traffic_exceeds_word_records() {
        // A single-word update costs ATOM a 72-byte record where the
        // tiered buffer pays 16 bytes — the Figure 8 (right) gap.
        let mut b = AtomLineBuffer::new();
        b.insert_line(1, PmAddr::new(0), [0; 64]);
        let ev = b.drain_all().unwrap();
        assert_eq!(ev.media_bytes(), 72);
    }

    #[test]
    fn contains_and_flush_line() {
        let mut b = AtomLineBuffer::new();
        b.insert_line(1, PmAddr::new(64), [1; 64]);
        assert!(b.contains_line(PmAddr::new(100)));
        assert!(!b.contains_line(PmAddr::new(0)));
        let ev = b.flush_line(PmAddr::new(64)).unwrap();
        assert_eq!(ev.entries.len(), 1);
        assert!(b.flush_line(PmAddr::new(64)).is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn clear_drops_records() {
        let mut b = AtomLineBuffer::new();
        b.insert_line(1, PmAddr::new(0), [0; 64]);
        b.clear();
        assert!(b.drain_all().is_none());
        assert_eq!(b.flushes(), 0);
    }

    #[test]
    #[should_panic(expected = "whole lines")]
    fn unaligned_line_rejected() {
        let mut b = AtomLineBuffer::new();
        b.insert_line(1, PmAddr::new(8), [0; 64]);
    }
}
