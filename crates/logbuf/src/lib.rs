//! On-core log buffers for hardware persistent-memory transactions.
//!
//! Three buffer designs are modelled, one per evaluated scheme family:
//!
//! * [`tiered::TieredLogBuffer`] — the paper's four-tier
//!   buddy-coalescing buffer (§III-B2, Figure 6): tiers for word,
//!   double-word, quad-word and full-line records (16/24/40/72 bytes on
//!   media), eight records per tier, 1,216 bytes total. Adjacent
//!   records coalesce upward on every insertion; full tiers drain as a
//!   packed "pad" write.
//! * [`atom::AtomLineBuffer`] — ATOM's (HPCA'17) buffer of up to eight
//!   *cache-line-granularity* undo records, flushed together.
//! * [`ede::EdeCombiner`] — EDE's (ISCA'21) bufferless path with a
//!   single write-combining slot: word records to the same line merge,
//!   any record to a different line (or a fence) emits the pending
//!   record directly to the persistence domain.
//!
//! All three produce [`FlushEvent`]s — batches of
//! [`LogFlushEntry`](slpmt_pmem::LogFlushEntry) plus the number of
//! 64-byte WPQ slots the packed batch occupies — which `slpmt-core`
//! forwards to the [`PmDevice`](slpmt_pmem::PmDevice).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod ede;
pub mod record;
pub mod tiered;

pub use atom::AtomLineBuffer;
pub use ede::EdeCombiner;
pub use record::{packed_lines, FlushEvent, LogRecord};
pub use tiered::TieredLogBuffer;
