//! Dependency-free deterministic pseudo-randomness.
//!
//! The simulator runs in hermetic environments with no access to
//! crates.io, so the workload generators and the randomized
//! ("property-style") tests use this small xoshiro256** generator
//! instead of the `rand` crate. Determinism is load-bearing: every
//! figure run and every test derives its stream from an explicit seed,
//! so results are reproducible bit-for-bit across runs and platforms.

#![forbid(unsafe_code)]

/// The SplitMix64 step — used to expand a 64-bit seed into generator
/// state and as a standalone mixing finaliser.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256** generator (Blackman & Vigna).
///
/// ```
/// use slpmt_prng::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose state is the SplitMix64 expansion of
    /// `seed` (the standard seeding recipe for xoshiro generators).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Debiased multiply-shift (Lemire): rejection keeps uniformity.
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(span as u128);
            if (m as u64) < span && (m as u64) < span.wrapping_neg() % span {
                continue;
            }
            return range.start + (m >> 64) as u64;
        }
    }

    /// A uniform `usize` in `lo..hi` (half-open).
    pub fn gen_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_usize(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// A seeded zipfian rank sampler over `0..n` with
/// `P(rank) ∝ 1 / (rank + 1)^theta`, using the closed-form inverse-CDF
/// approximation from Gray et al. ("Quickly generating billion-record
/// synthetic databases") — the same construction YCSB's
/// `ZipfianGenerator` uses. `zeta(n)` is computed once at construction
/// (O(n)); each [`sample`](Zipf::sample) consumes exactly one
/// [`SimRng::next_u64`] draw, so generator streams stay deterministic
/// regardless of which ranks come out.
///
/// `theta` is passed in thousandths (`990` = YCSB's default 0.99) so
/// callers that embed skew in `Copy + Eq` case descriptors never touch
/// floating point.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl Zipf {
    /// Builds a sampler over ranks `0..n` with skew `theta_milli/1000`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `theta_milli` is not in `1..=999` (the
    /// approximation requires `0 < theta < 1`).
    pub fn new(n: u64, theta_milli: u32) -> Self {
        assert!(n >= 2, "zipf needs at least two ranks");
        assert!(
            (1..=999).contains(&theta_milli),
            "theta must be in (0, 1): got {theta_milli}/1000"
        );
        let theta = theta_milli as f64 / 1000.0;
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        Zipf {
            n,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            half_pow_theta: 0.5f64.powf(theta),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;

    #[test]
    fn ranks_stay_in_bounds_and_skew() {
        let zipf = Zipf::new(1000, 990);
        let mut rng = SimRng::seed_from_u64(11);
        let mut hits = [0u64; 1000];
        for _ in 0..100_000 {
            let r = zipf.sample(&mut rng) as usize;
            assert!(r < 1000);
            hits[r] += 1;
        }
        // With theta=0.99 over 1000 ranks, rank 0 should carry roughly
        // 1/zeta(1000) ≈ 13% of the mass; demand a loose band.
        assert!(hits[0] > 80_000 / 10, "rank 0 hit {} times", hits[0]);
        assert!(hits[0] > 4 * hits[10].max(1));
        let top10: u64 = hits[..10].iter().sum();
        assert!(top10 > 30_000, "top-10 ranks carried {top10}/100000");
    }

    #[test]
    fn deterministic_for_seed() {
        let zipf = Zipf::new(500, 800);
        let mut a = SimRng::seed_from_u64(3);
        let mut b = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn one_draw_per_sample() {
        // The generator stream must advance by exactly one u64 per
        // sample, so mixed-workload traces stay reproducible.
        let zipf = Zipf::new(64, 500);
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..100 {
            let _ = zipf.sample(&mut a);
            let _ = b.next_u64();
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn tiny_rank_space_rejected() {
        let _ = Zipf::new(1, 990);
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1)")]
    fn degenerate_theta_rejected() {
        let _ = Zipf::new(10, 1000);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u = r.gen_usize(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut r = SimRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_usize(0..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.4)).count();
        assert!((3000..5000).contains(&hits), "p=0.4 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(4);
        let mut v: Vec<u64> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_ragged_lengths() {
        let mut r = SimRng::seed_from_u64(5);
        for len in [1, 7, 8, 9, 63] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }
}
