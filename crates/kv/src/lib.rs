//! The SLPMT key-value service facade and its deterministic
//! request-serving front end.
//!
//! Everything below the protocol layer already exists in the
//! reproduction — durable indexes, the simulated machine, the YCSB mix
//! family, the streaming recovery oracle. What this crate adds is the
//! *service boundary* a real PM deployment exposes:
//!
//! * [`store`] — [`KvStore`](store::KvStore), a clean
//!   `get`/`set`/`delete`/`cas`/`scan` facade over one simulated
//!   machine that owns transaction demarcation, value encoding into
//!   the persistent heap, and crash-to-ready recovery.
//! * [`codec`] — a memcached-text-subset wire codec (parse →
//!   dispatch → response buffers) that never panics on hostile input
//!   and resynchronises at the next command boundary.
//! * [`session`] — per-session receive/transmit buffers with request
//!   pipelining, in the Pelikan worker/session/buffer shape.
//! * [`admission`] — WPQ-depth-driven admission control: requests
//!   queue behind a drained write-pending queue or are shed once the
//!   queueing budget is exhausted, and both outcomes are first-class
//!   statistics.
//! * [`service`] — the deterministic in-process serve loop: seeded
//!   open-/closed-loop client generators feed sharded single-threaded
//!   workers; request latency is measured in simulated cycles only.
//! * [`sweep`] — crash and media-fault batteries driven *through the
//!   service boundary*, checked against the engine's streaming oracle.
//! * [`chaos`] — the crash-during-serve chaos harness: mid-request
//!   crashes over pipelined sessions, ack-journal restart, seeded
//!   client retry/backoff, duplicate suppression in the replay
//!   window, and degraded-mode online recovery behind a background
//!   scrub.
//!
//! All timing comes from the simulated cycle clock, so a serve run is
//! byte-identical for a `(seed, mix, shards)` triple regardless of
//! host parallelism — the repo-wide determinism contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod codec;
pub mod service;
pub mod session;
pub mod store;
pub mod sweep;

pub use admission::{Admission, AdmissionConfig, AdmissionStats};
pub use chaos::{ChaosCase, ChaosOutcome, ChaosReport};
pub use codec::{Codec, Parse, Request};
pub use service::{
    run_shard_service, shard_requests, HealthSnapshot, ServeConfig, ServiceError, ShardServeReport,
};
pub use session::{AckJournal, Session};
pub use store::{fingerprint, CasOutcome, CellError, HealthState, KvStore};
pub use sweep::KvSweepCase;
