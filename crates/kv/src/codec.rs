//! Memcached-text-subset wire codec.
//!
//! The grammar is the classic text protocol restricted to what the
//! service exposes, plus one extension verb:
//!
//! ```text
//! get <key>+\r\n
//! gets <key>+\r\n
//! set <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//! cas <key> <flags> <exptime> <bytes> <token>\r\n<data>\r\n
//! delete <key>\r\n
//! scan <lo> <hi>\r\n          (extension: ordered range read)
//! stats\r\n                   (health: shed/queued/recovering/scrubbed)
//! ```
//!
//! Keys are decimal `u64`s (at most [`MAX_KEY_DIGITS`] digits — longer
//! tokens are rejected as oversized). The parser works on raw bytes,
//! **never panics** on hostile input, and treats a bare `\n` (with an
//! optional preceding `\r`) as the line terminator, so after any
//! malformed line it resynchronises at the next newline and keeps
//! serving. Errors surface as the protocol's own `ERROR` /
//! `CLIENT_ERROR …` response lines.

/// Longest accepted key token (20 decimal digits covers `u64::MAX`).
pub const MAX_KEY_DIGITS: usize = 20;

/// Longest accepted command line; anything longer is discarded
/// wholesale (the connection-killing case in real servers).
pub const MAX_LINE: usize = 4096;

/// Canonical response lines (CRLF appended by the writer).
pub mod reply {
    /// Mutation applied durably.
    pub const STORED: &str = "STORED";
    /// CAS token was stale.
    pub const EXISTS: &str = "EXISTS";
    /// Key absent for `cas`/`delete`.
    pub const NOT_FOUND: &str = "NOT_FOUND";
    /// Key removed.
    pub const DELETED: &str = "DELETED";
    /// Terminates every retrieval response.
    pub const END: &str = "END";
    /// Unknown or malformed command.
    pub const ERROR: &str = "ERROR";
    /// Request shed by admission control.
    pub const SERVER_ERROR_BUSY: &str = "SERVER_ERROR busy";
    /// Write refused inside the post-crash degraded window (the
    /// poison-set scrub has not finished; reads still serve).
    pub const SERVER_ERROR_RECOVERING: &str = "SERVER_ERROR recovering";
    /// The client stream ended (or was cut) mid-request; the partial
    /// request is discarded, not executed.
    pub const SERVER_ERROR_TRUNCATED: &str = "SERVER_ERROR truncated request";
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `get`/`gets`: retrieval of one or more keys; `with_cas` selects
    /// the `gets` response shape (token on every VALUE line).
    Get {
        /// Requested keys, in request order.
        keys: Vec<u64>,
        /// `true` for `gets`.
        with_cas: bool,
    },
    /// `set`: unconditional store.
    Set {
        /// Target key.
        key: u64,
        /// Data block (exactly `<bytes>` long).
        value: Vec<u8>,
    },
    /// `cas`: conditional store against a token.
    Cas {
        /// Target key.
        key: u64,
        /// Client-held token.
        token: u64,
        /// Data block.
        value: Vec<u8>,
    },
    /// `delete`.
    Delete {
        /// Target key.
        key: u64,
    },
    /// `scan` extension: ordered range retrieval.
    Scan {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// `stats`: service-health counters (shed / queued / recovering /
    /// scrubbed), answered with `STAT` lines and `END`.
    Stats,
}

/// Outcome of one parse step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// Not enough buffered bytes for a complete request; consume
    /// nothing and wait for more input.
    More,
    /// A complete, well-formed request.
    Req(Request),
    /// A malformed request; the payload is the full error response
    /// line to send (without CRLF). The consumed count already skips
    /// to the next command boundary.
    Bad(String),
}

/// The stateless parser/encoder. `max_value` bounds accepted data
/// blocks (the store's limit).
#[derive(Debug, Clone, Copy)]
pub struct Codec {
    max_value: usize,
}

fn parse_u64(tok: &[u8]) -> Option<u64> {
    if tok.is_empty() || tok.len() > MAX_KEY_DIGITS {
        return None;
    }
    let mut v: u64 = 0;
    for &b in tok {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as u64)?;
    }
    Some(v)
}

fn client_error(msg: &str) -> Parse {
    Parse::Bad(format!("CLIENT_ERROR {msg}"))
}

impl Codec {
    /// A codec accepting data blocks up to `max_value` bytes.
    pub fn new(max_value: usize) -> Self {
        Codec { max_value }
    }

    /// The data-block size bound.
    pub fn max_value(&self) -> usize {
        self.max_value
    }

    /// Attempts to parse one request from the front of `buf`. Returns
    /// `(consumed, outcome)`; `consumed` is how many bytes the caller
    /// must drop from the buffer (0 for [`Parse::More`]).
    pub fn parse(&self, buf: &[u8]) -> (usize, Parse) {
        let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
            if buf.len() >= MAX_LINE {
                // Unterminated garbage beyond any legal line: discard
                // it all; resynchronisation happens at the next
                // newline that ever arrives.
                return (buf.len(), Parse::Bad(reply::ERROR.into()));
            }
            return (0, Parse::More);
        };
        let line_end = nl + 1;
        let mut line = &buf[..nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let tokens: Vec<&[u8]> = line
            .split(|&b| b == b' ')
            .filter(|t| !t.is_empty())
            .collect();
        let Some((&verb, rest)) = tokens.split_first() else {
            return (line_end, Parse::Bad(reply::ERROR.into()));
        };
        match verb {
            b"get" | b"gets" => {
                if rest.is_empty() {
                    return (line_end, Parse::Bad(reply::ERROR.into()));
                }
                let mut keys = Vec::with_capacity(rest.len());
                for tok in rest {
                    match parse_u64(tok) {
                        Some(k) => keys.push(k),
                        None => return (line_end, client_error("bad key")),
                    }
                }
                (
                    line_end,
                    Parse::Req(Request::Get {
                        keys,
                        with_cas: verb == b"gets",
                    }),
                )
            }
            b"set" | b"cas" => self.parse_storage(buf, line_end, verb == b"cas", rest),
            b"delete" => {
                if rest.len() != 1 {
                    return (line_end, Parse::Bad(reply::ERROR.into()));
                }
                match parse_u64(rest[0]) {
                    Some(key) => (line_end, Parse::Req(Request::Delete { key })),
                    None => (line_end, client_error("bad key")),
                }
            }
            b"stats" => {
                if !rest.is_empty() {
                    return (line_end, Parse::Bad(reply::ERROR.into()));
                }
                (line_end, Parse::Req(Request::Stats))
            }
            b"scan" => {
                if rest.len() != 2 {
                    return (line_end, Parse::Bad(reply::ERROR.into()));
                }
                match (parse_u64(rest[0]), parse_u64(rest[1])) {
                    (Some(lo), Some(hi)) if lo <= hi => {
                        (line_end, Parse::Req(Request::Scan { lo, hi }))
                    }
                    (Some(_), Some(_)) => (line_end, client_error("bad range")),
                    _ => (line_end, client_error("bad key")),
                }
            }
            _ => (line_end, Parse::Bad(reply::ERROR.into())),
        }
    }

    /// `set`/`cas` share the header + data-block shape; `with_token`
    /// selects the extra `cas` token field.
    fn parse_storage(
        &self,
        buf: &[u8],
        line_end: usize,
        with_token: bool,
        rest: &[&[u8]],
    ) -> (usize, Parse) {
        let expect = if with_token { 5 } else { 4 };
        if rest.len() != expect {
            return (line_end, Parse::Bad(reply::ERROR.into()));
        }
        let Some(key) = parse_u64(rest[0]) else {
            return (line_end, client_error("bad key"));
        };
        // <flags> and <exptime> are accepted and ignored, but must be
        // numeric.
        if parse_u64(rest[1]).is_none() || parse_u64(rest[2]).is_none() {
            return (line_end, client_error("bad command line format"));
        }
        let Some(bytes) = parse_u64(rest[3]).map(|b| b as usize) else {
            return (line_end, client_error("bad command line format"));
        };
        let token = if with_token {
            match parse_u64(rest[4]) {
                Some(t) => t,
                None => return (line_end, client_error("bad command line format")),
            }
        } else {
            0
        };
        if bytes > self.max_value {
            // Oversized object: reject on the header alone. The data
            // block (if any) is garbage the resynchronising parser
            // will step over line by line.
            return (line_end, client_error("object too large for cache"));
        }
        // The data block is <bytes> octets followed by CRLF.
        let need = line_end + bytes + 2;
        if buf.len() < need {
            return (0, Parse::More);
        }
        let value = buf[line_end..line_end + bytes].to_vec();
        if &buf[line_end + bytes..need] != b"\r\n" {
            // Bad chunk terminator: discard through the next newline
            // after the declared block so parsing resynchronises.
            let resync = buf[line_end + bytes..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| line_end + bytes + p + 1)
                .unwrap_or(buf.len());
            return (resync, client_error("bad data chunk"));
        }
        let req = if with_token {
            Request::Cas { key, token, value }
        } else {
            Request::Set { key, value }
        };
        (need, Parse::Req(req))
    }

    // ------------------------------------------------------------------
    // Encoders (request side — the deterministic client generators)

    /// Encodes a retrieval line.
    pub fn encode_get(out: &mut Vec<u8>, keys: &[u64], with_cas: bool) {
        out.extend_from_slice(if with_cas { b"gets" } else { b"get" });
        for k in keys {
            out.extend_from_slice(format!(" {k}").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
    }

    /// Encodes a `set` (header + data block).
    pub fn encode_set(out: &mut Vec<u8>, key: u64, value: &[u8]) {
        out.extend_from_slice(format!("set {key} 0 0 {}\r\n", value.len()).as_bytes());
        out.extend_from_slice(value);
        out.extend_from_slice(b"\r\n");
    }

    /// Encodes a `cas` (header with token + data block).
    pub fn encode_cas(out: &mut Vec<u8>, key: u64, token: u64, value: &[u8]) {
        out.extend_from_slice(format!("cas {key} 0 0 {} {token}\r\n", value.len()).as_bytes());
        out.extend_from_slice(value);
        out.extend_from_slice(b"\r\n");
    }

    /// Encodes a `delete` line.
    pub fn encode_delete(out: &mut Vec<u8>, key: u64) {
        out.extend_from_slice(format!("delete {key}\r\n").as_bytes());
    }

    /// Encodes a `scan` line.
    pub fn encode_scan(out: &mut Vec<u8>, lo: u64, hi: u64) {
        out.extend_from_slice(format!("scan {lo} {hi}\r\n").as_bytes());
    }

    /// Encodes a `stats` line.
    pub fn encode_stats(out: &mut Vec<u8>) {
        out.extend_from_slice(b"stats\r\n");
    }

    // ------------------------------------------------------------------
    // Response writers

    /// Writes one `VALUE` block (`gets` shape when `cas` is present).
    pub fn write_value(out: &mut Vec<u8>, key: u64, data: &[u8], cas: Option<u64>) {
        match cas {
            Some(t) => {
                out.extend_from_slice(format!("VALUE {key} 0 {} {t}\r\n", data.len()).as_bytes())
            }
            None => out.extend_from_slice(format!("VALUE {key} 0 {}\r\n", data.len()).as_bytes()),
        }
        out.extend_from_slice(data);
        out.extend_from_slice(b"\r\n");
    }

    /// Writes a bare response line with CRLF.
    pub fn write_line(out: &mut Vec<u8>, line: &str) {
        out.extend_from_slice(line.as_bytes());
        out.extend_from_slice(b"\r\n");
    }

    /// Writes one `STAT <name> <value>` line.
    pub fn write_stat(out: &mut Vec<u8>, name: &str, value: u64) {
        out.extend_from_slice(format!("STAT {name} {value}\r\n").as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(codec: &Codec, input: &[u8]) -> (usize, Parse) {
        codec.parse(input)
    }

    #[test]
    fn parses_every_verb() {
        let c = Codec::new(64);
        assert_eq!(
            one(&c, b"get 7\r\n"),
            (
                7,
                Parse::Req(Request::Get {
                    keys: vec![7],
                    with_cas: false
                })
            )
        );
        assert_eq!(
            one(&c, b"gets 7 9\r\n"),
            (
                10,
                Parse::Req(Request::Get {
                    keys: vec![7, 9],
                    with_cas: true
                })
            )
        );
        assert_eq!(
            one(&c, b"set 3 0 0 5\r\nhello\r\n"),
            (
                20,
                Parse::Req(Request::Set {
                    key: 3,
                    value: b"hello".to_vec()
                })
            )
        );
        assert_eq!(
            one(&c, b"cas 3 0 0 2 99\r\nhi\r\n"),
            (
                20,
                Parse::Req(Request::Cas {
                    key: 3,
                    token: 99,
                    value: b"hi".to_vec()
                })
            )
        );
        assert_eq!(
            one(&c, b"delete 12\r\n"),
            (11, Parse::Req(Request::Delete { key: 12 }))
        );
        assert_eq!(
            one(&c, b"scan 2 8\r\n"),
            (10, Parse::Req(Request::Scan { lo: 2, hi: 8 }))
        );
        assert_eq!(one(&c, b"stats\r\n"), (7, Parse::Req(Request::Stats)));
    }

    #[test]
    fn stats_verb_round_trips_and_rejects_operands() {
        let c = Codec::new(16);
        let mut buf = Vec::new();
        Codec::encode_stats(&mut buf);
        assert_eq!(c.parse(&buf), (buf.len(), Parse::Req(Request::Stats)));
        assert_eq!(c.parse(b"stats items\r\n").1, Parse::Bad("ERROR".into()));
        let mut out = Vec::new();
        Codec::write_stat(&mut out, "shed", 3);
        assert_eq!(out, b"STAT shed 3\r\n");
    }

    #[test]
    fn partial_input_waits() {
        let c = Codec::new(64);
        assert_eq!(one(&c, b"get 7"), (0, Parse::More));
        assert_eq!(one(&c, b"set 3 0 0 5\r\nhel"), (0, Parse::More));
        assert_eq!(one(&c, b""), (0, Parse::More));
    }

    #[test]
    fn error_paths_resynchronise() {
        let c = Codec::new(8);
        // Unknown verb.
        let (n, p) = one(&c, b"flush_all\r\nget 1\r\n");
        assert_eq!((n, p), (11, Parse::Bad("ERROR".into())));
        // Oversized key token.
        let long = format!("get {}\r\n", "9".repeat(21));
        assert_eq!(
            one(&c, long.as_bytes()),
            (long.len(), Parse::Bad("CLIENT_ERROR bad key".into()))
        );
        // Non-numeric key.
        assert!(matches!(one(&c, b"get abc\r\n").1, Parse::Bad(_)));
        // Oversized object: header consumed, data left for resync.
        let (n, p) = one(&c, b"set 1 0 0 9000\r\n");
        assert_eq!(n, 16);
        assert_eq!(
            p,
            Parse::Bad("CLIENT_ERROR object too large for cache".into())
        );
        // Bad data-chunk terminator skips to the next newline.
        let (n, p) = one(&c, b"set 1 0 0 2\r\nhiXXget 9\r\n");
        assert_eq!(p, Parse::Bad("CLIENT_ERROR bad data chunk".into()));
        assert_eq!(&b"set 1 0 0 2\r\nhiXXget 9\r\n"[n..], b"");
        // Empty line.
        assert_eq!(one(&c, b"\r\n").1, Parse::Bad("ERROR".into()));
        // Arithmetic-overflow key.
        assert!(matches!(
            one(&c, b"get 99999999999999999999\r\n").1,
            Parse::Bad(_)
        ));
    }

    #[test]
    fn unterminated_garbage_is_discarded_at_max_line() {
        let c = Codec::new(8);
        let garbage = vec![b'x'; MAX_LINE + 10];
        let (n, p) = one(&c, &garbage);
        assert_eq!(n, garbage.len());
        assert_eq!(p, Parse::Bad("ERROR".into()));
    }

    #[test]
    fn encoders_round_trip() {
        let c = Codec::new(64);
        let mut buf = Vec::new();
        Codec::encode_set(&mut buf, 5, b"abc");
        Codec::encode_cas(&mut buf, 5, 77, b"de");
        Codec::encode_get(&mut buf, &[5], true);
        Codec::encode_delete(&mut buf, 5);
        Codec::encode_scan(&mut buf, 1, 9);
        let mut reqs = Vec::new();
        let mut pos = 0;
        while pos < buf.len() {
            let (n, p) = c.parse(&buf[pos..]);
            pos += n;
            match p {
                Parse::Req(r) => reqs.push(r),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(pos, buf.len());
        assert_eq!(
            reqs,
            vec![
                Request::Set {
                    key: 5,
                    value: b"abc".to_vec()
                },
                Request::Cas {
                    key: 5,
                    token: 77,
                    value: b"de".to_vec()
                },
                Request::Get {
                    keys: vec![5],
                    with_cas: true
                },
                Request::Delete { key: 5 },
                Request::Scan { lo: 1, hi: 9 },
            ]
        );
    }

    #[test]
    fn binary_data_blocks_survive() {
        // Data blocks may contain \r\n and non-UTF-8 bytes.
        let c = Codec::new(16);
        let mut buf = Vec::new();
        Codec::encode_set(&mut buf, 1, b"\r\n\xff\x00!");
        let (n, p) = c.parse(&buf);
        assert_eq!(n, buf.len());
        assert_eq!(
            p,
            Parse::Req(Request::Set {
                key: 1,
                value: b"\r\n\xff\x00!".to_vec()
            })
        );
    }
}
