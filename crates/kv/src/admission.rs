//! WPQ-depth-driven admission control.
//!
//! The write-pending queue is the paper's persistence boundary: a
//! store is durable once the WPQ accepts it (ADR). When the device
//! drains slowly — high media latency, drain jitter — the WPQ fills
//! and every further durable mutation stalls the core. The service
//! front end turns that back-pressure into an explicit admission
//! decision instead of an invisible stall:
//!
//! * while `wpq_depth >= high_watermark`, the worker polls in
//!   `poll_cycles` steps (charged as compute, so queueing is visible
//!   on the simulated clock);
//! * once the accumulated wait exceeds `queue_limit` cycles the
//!   request is **shed** with `SERVER_ERROR busy`.
//!
//! The loop is bounded by construction (`queue_limit / poll_cycles`
//! iterations, then shed), so admission can never deadlock — the
//! backpressure property test checks exactly this against a pure
//! reference model.

use crate::store::KvStore;

/// Admission-control knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Admit only while the WPQ holds fewer than this many undrained
    /// entries. The default (the device's full capacity, 8) admits
    /// until the queue is literally full.
    pub high_watermark: usize,
    /// Give up (shed) once a request has queued this many cycles.
    pub queue_limit: u64,
    /// Poll step while queueing, charged as compute cycles.
    pub poll_cycles: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            high_watermark: 8,
            queue_limit: 100_000,
            poll_cycles: 200,
        }
    }
}

/// One admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted after queueing for the given number of cycles (0 =
    /// straight through).
    Admit {
        /// Cycles spent polling before the WPQ dropped below the
        /// watermark.
        queued: u64,
    },
    /// Shed after the queueing budget ran out.
    Shed {
        /// Cycles spent polling before giving up.
        queued: u64,
    },
}

/// Aggregate admission statistics for one worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted without queueing.
    pub immediate: u64,
    /// Requests admitted after a non-zero queueing wait.
    pub queued: u64,
    /// Requests shed.
    pub shed: u64,
    /// Total cycles spent queueing (admitted + shed).
    pub queued_cycles: u64,
}

impl AdmissionStats {
    /// Folds one decision into the totals.
    pub fn record(&mut self, decision: Admission) {
        match decision {
            Admission::Admit { queued: 0 } => self.immediate += 1,
            Admission::Admit { queued } => {
                self.queued += 1;
                self.queued_cycles += queued;
            }
            Admission::Shed { queued } => {
                self.shed += 1;
                self.queued_cycles += queued;
            }
        }
    }

    /// Requests that reached a decision.
    pub fn decisions(&self) -> u64 {
        self.immediate + self.queued + self.shed
    }
}

/// Pure admission reference: given a sampled WPQ-depth sequence (one
/// sample per poll step, the first being the depth at arrival),
/// returns the decision the worker must reach. The backpressure
/// property test replays recorded depth samples through this model
/// and demands exact agreement with the served outcome.
pub fn reference_decision(depths: &[usize], cfg: &AdmissionConfig) -> Admission {
    let mut queued = 0u64;
    for &d in depths {
        if d < cfg.high_watermark {
            return Admission::Admit { queued };
        }
        if queued >= cfg.queue_limit {
            break;
        }
        queued += cfg.poll_cycles;
    }
    Admission::Shed {
        queued: queued.min(cfg.queue_limit.max(1)),
    }
}

/// Runs the admission loop against the live machine: polls the WPQ in
/// `poll_cycles` steps (advancing the simulated clock) until the depth
/// drops below the watermark or the queueing budget is spent.
pub fn admit(store: &mut KvStore, cfg: &AdmissionConfig) -> Admission {
    let mut queued = 0u64;
    loop {
        if store.wpq_depth() < cfg.high_watermark {
            return Admission::Admit { queued };
        }
        if queued >= cfg.queue_limit {
            return Admission::Shed { queued };
        }
        let step = cfg.poll_cycles.max(1);
        store.compute(step);
        queued += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::{MachineConfig, Scheme};
    use slpmt_pmem::PmConfig;
    use slpmt_workloads::IndexKind;

    #[test]
    fn empty_wpq_admits_immediately() {
        let mut s = KvStore::open(Scheme::Slpmt, IndexKind::KvBtree, 16);
        let cfg = AdmissionConfig::default();
        assert_eq!(admit(&mut s, &cfg), Admission::Admit { queued: 0 });
    }

    #[test]
    fn forced_stall_queues_then_drains() {
        // Tiny WPQ + enormous write latency: after a burst of durable
        // sets the queue stays deep, and admission must wait it out.
        let pm = PmConfig {
            wpq_entries: 2,
            pm_write_cycles: 20_000,
            ..PmConfig::default()
        };
        let cfg = MachineConfig::for_scheme(Scheme::Slpmt).with_pm(pm);
        let mut s = KvStore::with_config(cfg, IndexKind::KvBtree, 16);
        for k in 0..4u64 {
            s.set(k, b"0123456789abcdef");
        }
        assert!(s.wpq_depth() > 0, "burst left the WPQ non-empty");
        let acfg = AdmissionConfig {
            high_watermark: 1,
            queue_limit: 10_000_000,
            poll_cycles: 100,
        };
        match admit(&mut s, &acfg) {
            Admission::Admit { queued } => assert!(queued > 0, "must have queued"),
            shed => panic!("unexpected {shed:?}"),
        }
        assert!(s.wpq_depth() < 1 + 1);
    }

    #[test]
    fn budget_exhaustion_sheds() {
        let pm = PmConfig {
            wpq_entries: 2,
            pm_write_cycles: 1_000_000,
            ..PmConfig::default()
        };
        let cfg = MachineConfig::for_scheme(Scheme::Slpmt).with_pm(pm);
        let mut s = KvStore::with_config(cfg, IndexKind::KvBtree, 16);
        for k in 0..4u64 {
            s.set(k, b"0123456789abcdef");
        }
        let acfg = AdmissionConfig {
            high_watermark: 1,
            queue_limit: 1_000,
            poll_cycles: 100,
        };
        match admit(&mut s, &acfg) {
            Admission::Shed { queued } => assert_eq!(queued, 1_000),
            admit => panic!("unexpected {admit:?}"),
        }
    }

    #[test]
    fn reference_model_matches_decisions() {
        let cfg = AdmissionConfig {
            high_watermark: 4,
            queue_limit: 400,
            poll_cycles: 100,
        };
        assert_eq!(
            reference_decision(&[2], &cfg),
            Admission::Admit { queued: 0 }
        );
        assert_eq!(
            reference_decision(&[8, 8, 3], &cfg),
            Admission::Admit { queued: 200 }
        );
        // 5 saturated samples: 0,100,200,300,400 → budget spent → shed.
        assert_eq!(
            reference_decision(&[8; 6], &cfg),
            Admission::Shed { queued: 400 }
        );
    }

    #[test]
    fn depth_exactly_at_watermark_queues() {
        // `admit while depth < watermark` is a strict inequality: a
        // depth equal to the watermark must queue, and admits on the
        // first sample below it.
        let cfg = AdmissionConfig {
            high_watermark: 4,
            queue_limit: 1_000,
            poll_cycles: 100,
        };
        assert_eq!(
            reference_decision(&[4, 3], &cfg),
            Admission::Admit { queued: 100 }
        );
        assert_eq!(
            reference_decision(&[3], &cfg),
            Admission::Admit { queued: 0 }
        );
    }

    #[test]
    fn zero_queue_limit_sheds_without_waiting() {
        let cfg = AdmissionConfig {
            high_watermark: 1,
            queue_limit: 0,
            poll_cycles: 100,
        };
        // Saturated at arrival with no budget: shed immediately, zero
        // cycles spent.
        assert_eq!(
            reference_decision(&[5], &cfg),
            Admission::Shed { queued: 0 }
        );
        // Below the watermark still admits — a zero budget only
        // forbids waiting, not serving.
        assert_eq!(
            reference_decision(&[0], &cfg),
            Admission::Admit { queued: 0 }
        );
    }

    #[test]
    fn drain_arriving_after_budget_exhaustion_is_too_late() {
        let cfg = AdmissionConfig {
            high_watermark: 4,
            queue_limit: 400,
            poll_cycles: 100,
        };
        // The WPQ drains on the sample right after the budget is
        // spent: the decision is already Shed — admission never peeks
        // past its budget.
        assert_eq!(
            reference_decision(&[8, 8, 8, 8, 8, 2], &cfg),
            Admission::Shed { queued: 400 }
        );
        // One sample earlier and the same drain admits.
        assert_eq!(
            reference_decision(&[8, 8, 8, 8, 2], &cfg),
            Admission::Admit { queued: 400 }
        );
    }

    #[test]
    fn reference_is_pinned_against_live_admit() {
        // Two identical stores: one runs the live admission loop, the
        // other records the depth sequence the loop would observe and
        // feeds it to the reference model. Determinism makes the pair
        // exact.
        let build = || {
            let pm = PmConfig {
                wpq_entries: 2,
                pm_write_cycles: 20_000,
                ..PmConfig::default()
            };
            let cfg = MachineConfig::for_scheme(Scheme::Slpmt).with_pm(pm);
            let mut s = KvStore::with_config(cfg, IndexKind::KvBtree, 16);
            for k in 0..4u64 {
                s.set(k, b"0123456789abcdef");
            }
            s
        };
        let acfg = AdmissionConfig {
            high_watermark: 1,
            queue_limit: 5_000,
            poll_cycles: 100,
        };
        let mut live = build();
        let decision = admit(&mut live, &acfg);
        let mut shadow = build();
        let mut depths = vec![shadow.wpq_depth()];
        let mut spent = 0u64;
        while *depths.last().unwrap() >= acfg.high_watermark && spent < acfg.queue_limit {
            shadow.compute(acfg.poll_cycles);
            spent += acfg.poll_cycles;
            depths.push(shadow.wpq_depth());
        }
        assert_eq!(reference_decision(&depths, &acfg), decision);
    }

    #[test]
    fn stats_fold() {
        let mut st = AdmissionStats::default();
        st.record(Admission::Admit { queued: 0 });
        st.record(Admission::Admit { queued: 300 });
        st.record(Admission::Shed { queued: 500 });
        assert_eq!(st.immediate, 1);
        assert_eq!(st.queued, 1);
        assert_eq!(st.shed, 1);
        assert_eq!(st.queued_cycles, 800);
        assert_eq!(st.decisions(), 3);
    }
}
