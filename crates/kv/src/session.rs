//! Per-session receive/transmit buffers with request pipelining — the
//! Pelikan worker/session shape, minus the socket.
//!
//! A [`Session`] owns a receive buffer clients append wire bytes to
//! and a transmit buffer the worker appends responses to. Clients may
//! pipeline arbitrarily many requests before the worker drains any of
//! them; the worker pulls complete requests one at a time with
//! [`Session::next_request`], which compacts the consumed prefix
//! lazily so pipelined ingestion stays O(bytes).
//!
//! For crash-during-serve recovery, every parsed request carries a
//! **per-session sequence number** and the session tracks an **ack
//! watermark** — how many responses have been flushed to the client.
//! The watermarks live in an [`AckJournal`]; after a restart,
//! [`Session::rebuilt`] reconstructs a session from its journaled
//! watermark plus the client's sent-count, which bounds the **replay
//! window**: retried requests with sequence numbers inside the window
//! may already have executed before the crash, so the worker applies
//! duplicate suppression to them.

use crate::codec::{Codec, Parse, Request};

/// One client session: id + buffered wire traffic in both directions.
#[derive(Debug, Clone, Default)]
pub struct Session {
    id: u32,
    rbuf: Vec<u8>,
    rpos: usize,
    /// Transmit buffer: the worker appends encoded responses here, in
    /// request order.
    pub wbuf: Vec<u8>,
    parsed: u64,
    bad: u64,
    /// Sequence number of the first request parsed by *this*
    /// incarnation (non-zero only for rebuilt post-restart sessions).
    base_seq: u64,
    /// Responses flushed to the client (the ack watermark).
    acked: u64,
    /// Requests with sequence numbers below this are replays of
    /// pre-crash traffic (duplicate suppression applies).
    replay_until: u64,
}

impl Session {
    /// A fresh session with the given id.
    pub fn new(id: u32) -> Self {
        Session {
            id,
            ..Session::default()
        }
    }

    /// Rebuilds a session after a service restart: the journaled ack
    /// watermark says how many responses the client provably received,
    /// and `sent` — the client's own count of requests it had issued —
    /// bounds the replay window. The client re-feeds its un-acked tail
    /// (requests `acked..sent`) before any new traffic; requests with
    /// sequence numbers below `sent` are flagged as replays via
    /// [`in_replay`](Self::in_replay).
    pub fn rebuilt(id: u32, acked: u64, sent: u64) -> Self {
        Session {
            id,
            base_seq: acked,
            acked,
            replay_until: sent.max(acked),
            ..Session::default()
        }
    }

    /// The session id (stamped on request-span trace events).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Sequence number the next parsed request will carry (requests
    /// are numbered per session, surviving restarts via
    /// [`rebuilt`](Self::rebuilt)).
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.parsed
    }

    /// `true` while the next request to parse is a replay of pre-crash
    /// traffic (inside the replay window, where duplicate suppression
    /// applies).
    pub fn in_replay(&self) -> bool {
        self.next_seq() < self.replay_until
    }

    /// Responses flushed to the client so far (the ack watermark).
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Marks one more response as flushed to the client. The serve
    /// loop calls this after a dispatch completes while the machine is
    /// still live — a crash between dispatch and flush leaves the
    /// response un-acked.
    pub fn ack_response(&mut self) {
        self.acked += 1;
    }

    /// Appends wire bytes from the client (pipelined ingestion).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.rbuf.extend_from_slice(bytes);
    }

    /// Unconsumed receive bytes still buffered.
    pub fn pending(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    /// Requests successfully parsed so far.
    pub fn parsed(&self) -> u64 {
        self.parsed
    }

    /// Malformed requests rejected so far.
    pub fn bad(&self) -> u64 {
        self.bad
    }

    /// Pulls the next complete request off the receive buffer.
    ///
    /// * `None` — the buffer holds no complete request (wait for more
    ///   bytes).
    /// * `Some(Ok(req))` — a well-formed request, consumed.
    /// * `Some(Err(line))` — a malformed request; `line` is the error
    ///   response to transmit. The buffer has already resynchronised
    ///   to the next command boundary.
    pub fn next_request(&mut self, codec: &Codec) -> Option<Result<Request, String>> {
        let (consumed, outcome) = codec.parse(&self.rbuf[self.rpos..]);
        self.rpos += consumed;
        // Compact once the dead prefix dominates, keeping ingestion
        // amortised-linear without reallocating per request.
        if self.rpos > 4096 && self.rpos * 2 > self.rbuf.len() {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        match outcome {
            Parse::More => None,
            Parse::Req(req) => {
                self.parsed += 1;
                Some(Ok(req))
            }
            Parse::Bad(line) => {
                self.bad += 1;
                Some(Err(line))
            }
        }
    }

    /// Takes the accumulated transmit bytes (response stream).
    pub fn take_responses(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.wbuf)
    }
}

/// The ack journal: per-session flushed-response watermarks, recorded
/// as responses leave the worker. After a crash it is the restart
/// path's ground truth for [`Session::rebuilt`] — every journaled ack
/// names a response the client provably received, so the durability
/// contract ("zero lost acks") is checked against exactly these
/// watermarks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AckJournal {
    acked: Vec<u64>,
}

impl AckJournal {
    /// A journal covering `sessions` sessions, all watermarks zero.
    pub fn new(sessions: usize) -> Self {
        AckJournal {
            acked: vec![0; sessions],
        }
    }

    /// Records `session`'s watermark (monotone; a lower value than
    /// already journaled is ignored).
    pub fn record(&mut self, session: u32, acked: u64) {
        let s = session as usize;
        if s >= self.acked.len() {
            self.acked.resize(s + 1, 0);
        }
        self.acked[s] = self.acked[s].max(acked);
    }

    /// The journaled watermark for `session` (0 when never recorded).
    pub fn watermark(&self, session: u32) -> u64 {
        self.acked.get(session as usize).copied().unwrap_or(0)
    }

    /// Total responses journaled across sessions.
    pub fn total(&self) -> u64 {
        self.acked.iter().sum()
    }

    /// Sessions the journal covers.
    pub fn sessions(&self) -> usize {
        self.acked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_requests_drain_in_order() {
        let codec = Codec::new(32);
        let mut s = Session::new(3);
        let mut wire = Vec::new();
        Codec::encode_set(&mut wire, 1, b"a");
        Codec::encode_get(&mut wire, &[1], false);
        Codec::encode_delete(&mut wire, 1);
        s.feed(&wire);
        assert!(matches!(
            s.next_request(&codec),
            Some(Ok(Request::Set { key: 1, .. }))
        ));
        assert!(matches!(
            s.next_request(&codec),
            Some(Ok(Request::Get { .. }))
        ));
        assert!(matches!(
            s.next_request(&codec),
            Some(Ok(Request::Delete { key: 1 }))
        ));
        assert!(s.next_request(&codec).is_none());
        assert_eq!(s.pending(), 0);
        assert_eq!(s.parsed(), 3);
    }

    #[test]
    fn split_feeds_reassemble() {
        let codec = Codec::new(32);
        let mut s = Session::new(0);
        let mut wire = Vec::new();
        Codec::encode_set(&mut wire, 9, b"hello");
        // Feed byte by byte: More until the final CRLF byte lands.
        for (i, b) in wire.iter().enumerate() {
            s.feed(&[*b]);
            let got = s.next_request(&codec);
            if i + 1 < wire.len() {
                assert!(got.is_none(), "complete at byte {i}?");
            } else {
                assert!(matches!(got, Some(Ok(Request::Set { key: 9, .. }))));
            }
        }
    }

    #[test]
    fn malformed_then_wellformed() {
        let codec = Codec::new(32);
        let mut s = Session::new(0);
        s.feed(b"bogus cmd\r\nget 4\r\n");
        assert!(matches!(s.next_request(&codec), Some(Err(e)) if e == "ERROR"));
        assert!(matches!(
            s.next_request(&codec),
            Some(Ok(Request::Get { .. }))
        ));
        assert_eq!((s.parsed(), s.bad()), (1, 1));
    }

    #[test]
    fn sequence_numbers_and_ack_watermark_survive_rebuild() {
        let codec = Codec::new(32);
        let mut s = Session::new(2);
        assert_eq!(s.next_seq(), 0);
        assert!(!s.in_replay());
        let mut wire = Vec::new();
        for k in 0..5u64 {
            Codec::encode_delete(&mut wire, k);
        }
        s.feed(&wire);
        // Parse 5, ack 3: seqs 3 and 4 were served but never flushed.
        for _ in 0..5 {
            s.next_request(&codec).unwrap().unwrap();
        }
        for _ in 0..3 {
            s.ack_response();
        }
        assert_eq!((s.next_seq(), s.acked()), (5, 3));
        // Restart: the journal held acked=3, the client had sent 5.
        let mut r = Session::rebuilt(2, 3, 5);
        assert_eq!(r.id(), 2);
        assert_eq!(r.next_seq(), 3, "numbering resumes at the watermark");
        assert!(r.in_replay(), "seqs 3..5 are the replay window");
        let mut tail = Vec::new();
        Codec::encode_delete(&mut tail, 3);
        Codec::encode_delete(&mut tail, 4);
        Codec::encode_delete(&mut tail, 99); // fresh post-restart traffic
        r.feed(&tail);
        r.next_request(&codec).unwrap().unwrap();
        assert!(r.in_replay(), "seq 4 still inside the window");
        r.next_request(&codec).unwrap().unwrap();
        assert!(!r.in_replay(), "seq 5 is new traffic");
        r.next_request(&codec).unwrap().unwrap();
        assert_eq!(r.next_seq(), 6);
    }

    #[test]
    fn ack_journal_is_monotone_and_grows() {
        let mut j = AckJournal::new(2);
        j.record(0, 4);
        j.record(0, 2); // stale watermark ignored
        j.record(3, 7); // auto-grows
        assert_eq!(j.watermark(0), 4);
        assert_eq!(j.watermark(1), 0);
        assert_eq!(j.watermark(3), 7);
        assert_eq!(j.watermark(9), 0);
        assert_eq!(j.total(), 11);
        assert_eq!(j.sessions(), 4);
    }

    #[test]
    fn compaction_keeps_tail() {
        let codec = Codec::new(32);
        let mut s = Session::new(0);
        for k in 0..2000u64 {
            let mut wire = Vec::new();
            Codec::encode_delete(&mut wire, k);
            s.feed(&wire);
        }
        for k in 0..2000u64 {
            match s.next_request(&codec) {
                Some(Ok(Request::Delete { key })) => assert_eq!(key, k),
                other => panic!("at {k}: {other:?}"),
            }
        }
        assert!(s.next_request(&codec).is_none());
    }
}
