//! Per-session receive/transmit buffers with request pipelining — the
//! Pelikan worker/session shape, minus the socket.
//!
//! A [`Session`] owns a receive buffer clients append wire bytes to
//! and a transmit buffer the worker appends responses to. Clients may
//! pipeline arbitrarily many requests before the worker drains any of
//! them; the worker pulls complete requests one at a time with
//! [`Session::next_request`], which compacts the consumed prefix
//! lazily so pipelined ingestion stays O(bytes).

use crate::codec::{Codec, Parse, Request};

/// One client session: id + buffered wire traffic in both directions.
#[derive(Debug, Clone, Default)]
pub struct Session {
    id: u32,
    rbuf: Vec<u8>,
    rpos: usize,
    /// Transmit buffer: the worker appends encoded responses here, in
    /// request order.
    pub wbuf: Vec<u8>,
    parsed: u64,
    bad: u64,
}

impl Session {
    /// A fresh session with the given id.
    pub fn new(id: u32) -> Self {
        Session {
            id,
            ..Session::default()
        }
    }

    /// The session id (stamped on request-span trace events).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Appends wire bytes from the client (pipelined ingestion).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.rbuf.extend_from_slice(bytes);
    }

    /// Unconsumed receive bytes still buffered.
    pub fn pending(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    /// Requests successfully parsed so far.
    pub fn parsed(&self) -> u64 {
        self.parsed
    }

    /// Malformed requests rejected so far.
    pub fn bad(&self) -> u64 {
        self.bad
    }

    /// Pulls the next complete request off the receive buffer.
    ///
    /// * `None` — the buffer holds no complete request (wait for more
    ///   bytes).
    /// * `Some(Ok(req))` — a well-formed request, consumed.
    /// * `Some(Err(line))` — a malformed request; `line` is the error
    ///   response to transmit. The buffer has already resynchronised
    ///   to the next command boundary.
    pub fn next_request(&mut self, codec: &Codec) -> Option<Result<Request, String>> {
        let (consumed, outcome) = codec.parse(&self.rbuf[self.rpos..]);
        self.rpos += consumed;
        // Compact once the dead prefix dominates, keeping ingestion
        // amortised-linear without reallocating per request.
        if self.rpos > 4096 && self.rpos * 2 > self.rbuf.len() {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        match outcome {
            Parse::More => None,
            Parse::Req(req) => {
                self.parsed += 1;
                Some(Ok(req))
            }
            Parse::Bad(line) => {
                self.bad += 1;
                Some(Err(line))
            }
        }
    }

    /// Takes the accumulated transmit bytes (response stream).
    pub fn take_responses(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.wbuf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_requests_drain_in_order() {
        let codec = Codec::new(32);
        let mut s = Session::new(3);
        let mut wire = Vec::new();
        Codec::encode_set(&mut wire, 1, b"a");
        Codec::encode_get(&mut wire, &[1], false);
        Codec::encode_delete(&mut wire, 1);
        s.feed(&wire);
        assert!(matches!(
            s.next_request(&codec),
            Some(Ok(Request::Set { key: 1, .. }))
        ));
        assert!(matches!(
            s.next_request(&codec),
            Some(Ok(Request::Get { .. }))
        ));
        assert!(matches!(
            s.next_request(&codec),
            Some(Ok(Request::Delete { key: 1 }))
        ));
        assert!(s.next_request(&codec).is_none());
        assert_eq!(s.pending(), 0);
        assert_eq!(s.parsed(), 3);
    }

    #[test]
    fn split_feeds_reassemble() {
        let codec = Codec::new(32);
        let mut s = Session::new(0);
        let mut wire = Vec::new();
        Codec::encode_set(&mut wire, 9, b"hello");
        // Feed byte by byte: More until the final CRLF byte lands.
        for (i, b) in wire.iter().enumerate() {
            s.feed(&[*b]);
            let got = s.next_request(&codec);
            if i + 1 < wire.len() {
                assert!(got.is_none(), "complete at byte {i}?");
            } else {
                assert!(matches!(got, Some(Ok(Request::Set { key: 9, .. }))));
            }
        }
    }

    #[test]
    fn malformed_then_wellformed() {
        let codec = Codec::new(32);
        let mut s = Session::new(0);
        s.feed(b"bogus cmd\r\nget 4\r\n");
        assert!(matches!(s.next_request(&codec), Some(Err(e)) if e == "ERROR"));
        assert!(matches!(
            s.next_request(&codec),
            Some(Ok(Request::Get { .. }))
        ));
        assert_eq!((s.parsed(), s.bad()), (1, 1));
    }

    #[test]
    fn compaction_keeps_tail() {
        let codec = Codec::new(32);
        let mut s = Session::new(0);
        for k in 0..2000u64 {
            let mut wire = Vec::new();
            Codec::encode_delete(&mut wire, k);
            s.feed(&wire);
        }
        for k in 0..2000u64 {
            match s.next_request(&codec) {
                Some(Ok(Request::Delete { key })) => assert_eq!(key, k),
                other => panic!("at {k}: {other:?}"),
            }
        }
        assert!(s.next_request(&codec).is_none());
    }
}
