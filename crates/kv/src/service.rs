//! The deterministic in-process serve loop.
//!
//! One [`run_shard_service`] call is one single-threaded worker bound
//! to one shard: it owns a [`KvStore`], a set of client
//! [`Session`]s, and the admission gate. Seeded client generators
//! encode the shard's request stream into the sessions' receive
//! buffers (fully pipelined); the worker drains them in arrival
//! order, taking every request through admission → parse → dispatch →
//! response-encode. Every latency is a difference of simulated-cycle
//! clocks, so a serve run is byte-identical for a
//! `(seed, mix, shards)` triple no matter how many host threads the
//! caller fans the shards across.
//!
//! CAS tokens are derivable from durable state
//! ([`fingerprint`](crate::store::fingerprint) of the current value),
//! and the trace is deterministic — so the closed-loop generator
//! *knows* each key's current token at encode time and emits `cas`
//! commands that carry it, the way a real client would after a `gets`.
//! Stale-token and miss paths are exercised separately by the protocol
//! battery.

use crate::admission::{admit, Admission, AdmissionConfig, AdmissionStats};
use crate::codec::{reply, Codec, Request};
use crate::session::Session;
use crate::store::{fingerprint, CasOutcome, KvStore};
use slpmt_core::{MachineConfig, SchemeKind};
use slpmt_pmem::PmConfig;
use slpmt_prng::splitmix64;
use slpmt_trace::{Event, RequestVerb};
use slpmt_workloads::ycsb::YcsbOp;
use slpmt_workloads::{
    open_loop_arrivals, session_of, shard_of, ycsb_mix, IndexKind, KvRequest, MixSpec,
};
use std::collections::BTreeMap;

/// Latency classes, indexed by [`class_of`] (matches
/// `KvRequest::verb` labels).
pub const VERB_CLASSES: [&str; 6] = ["get", "gets", "set", "cas", "delete", "scan"];

/// A typed service-level failure the serve loop surfaces instead of
/// panicking, so one broken client degrades to an error response
/// rather than aborting the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// A session's receive stream ended mid-request (the client was
    /// cut off, or the generator under-fed the session): there are
    /// buffered bytes or an expected request, but no complete request
    /// to parse.
    TruncatedStream {
        /// The session whose stream truncated.
        session: u32,
        /// Request index (within the shard's stream) that could not be
        /// pulled.
        at: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::TruncatedStream { session, at } => {
                write!(
                    f,
                    "session {session} stream truncated mid-request at request {at}"
                )
            }
        }
    }
}

/// Pulls the next complete request off a session, converting an
/// incomplete stream into a typed [`ServiceError`] instead of a
/// panic.
pub fn take_request(
    sess: &mut Session,
    codec: &Codec,
    at: u64,
) -> Result<Result<Request, String>, ServiceError> {
    let session = sess.id();
    sess.next_request(codec)
        .ok_or(ServiceError::TruncatedStream { session, at })
}

/// Service-health counters the `stats` verb exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests admitted after a non-zero queueing wait.
    pub queued: u64,
    /// `true` inside the post-crash degraded window.
    pub recovering: bool,
    /// Lines scrubbed since the last degraded recovery.
    pub scrubbed: u64,
    /// Flagged lines still waiting for the background scrub.
    pub scrub_pending: u64,
}

impl HealthSnapshot {
    /// Store-level health alone (no admission counters) — what
    /// [`dispatch`] answers when the serve loop does not overlay its
    /// own shed/queued totals.
    pub fn of_store(store: &KvStore) -> Self {
        HealthSnapshot {
            shed: 0,
            queued: 0,
            recovering: !store.ready(),
            scrubbed: store.scrubbed(),
            scrub_pending: store.scrub_pending() as u64,
        }
    }

    /// Overlays a worker's admission statistics.
    pub fn with_admission(mut self, stats: &AdmissionStats) -> Self {
        self.shed = stats.shed;
        self.queued = stats.queued;
        self
    }
}

/// Writes the `stats` response: one `STAT` line per counter, then
/// `END`.
pub fn write_stats(out: &mut Vec<u8>, h: &HealthSnapshot) {
    Codec::write_stat(out, "shed", h.shed);
    Codec::write_stat(out, "queued", h.queued);
    Codec::write_stat(out, "recovering", u64::from(h.recovering));
    Codec::write_stat(out, "scrubbed", h.scrubbed);
    Codec::write_stat(out, "scrub_pending", h.scrub_pending);
    Codec::write_line(out, reply::END);
}

/// Index of a verb label in [`VERB_CLASSES`].
pub fn class_of(verb: &str) -> usize {
    VERB_CLASSES.iter().position(|v| *v == verb).unwrap_or(0)
}

/// One serve run's configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated logging scheme.
    pub scheme: SchemeKind,
    /// Index backend behind the facade.
    pub kind: IndexKind,
    /// YCSB mix shaping the request stream.
    pub mix: MixSpec,
    /// Load-phase inserts (applied before measurement).
    pub load: usize,
    /// Measured requests.
    pub requests: usize,
    /// Value payload size.
    pub value_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Keyspace shards (one worker per shard).
    pub shards: usize,
    /// Client sessions per shard (round-robin request assignment).
    pub sessions: usize,
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
    /// `true` for open-loop arrivals; `false` for closed loop.
    pub open_loop: bool,
    /// Mean inter-arrival gap for the open loop (cycles; 0 = all at
    /// once).
    pub mean_gap: u64,
    /// WPQ drain-jitter window (0 = deterministic drain).
    pub drain_jitter: u64,
    /// Device-timing override (forced-stall setups); `None` uses the
    /// scheme default.
    pub pm: Option<PmConfig>,
    /// Per-core trace-ring capacity; 0 disables request-span tracing.
    pub trace_capacity: usize,
}

impl ServeConfig {
    /// Baseline configuration for a `(scheme, kind, mix)` triple: 500
    /// loaded keys, 1000 requests of 32-byte values, seed 42, one
    /// shard, four sessions, closed loop, default admission.
    pub fn new(scheme: impl Into<SchemeKind>, kind: IndexKind, mix: MixSpec) -> Self {
        ServeConfig {
            scheme: scheme.into(),
            kind,
            mix,
            load: 500,
            requests: 1000,
            value_size: 32,
            seed: 42,
            shards: 1,
            sessions: 4,
            admission: AdmissionConfig::default(),
            open_loop: false,
            mean_gap: 0,
            drain_jitter: 0,
            pm: None,
            trace_capacity: 0,
        }
    }
}

/// What one shard worker produced.
#[derive(Debug, Clone)]
pub struct ShardServeReport {
    /// Shard index.
    pub shard: usize,
    /// Requests in this shard's stream.
    pub requests: u64,
    /// Requests that were dispatched (admitted and executed).
    pub served: u64,
    /// Admission statistics (immediate / queued / shed).
    pub admission: AdmissionStats,
    /// Service-phase simulated cycles (excludes the load phase).
    pub sim_cycles: u64,
    /// Per-verb-class latency samples (admitted requests only),
    /// indexed like [`VERB_CLASSES`].
    pub samples: Vec<Vec<u64>>,
    /// The full response byte stream, sessions concatenated in id
    /// order.
    pub responses: Vec<u8>,
    /// splitmix64 digest of `responses` (the byte-identity check).
    pub response_digest: u64,
    /// Device WPQ stall cycles over the whole run.
    pub wpq_stall_cycles: u64,
    /// Requests refused because the session stream truncated
    /// mid-request (each answered `SERVER_ERROR truncated request`).
    pub truncated: u64,
    /// Trace records captured when `trace_capacity > 0`.
    pub trace: Vec<slpmt_core::TraceRecord>,
}

/// Deterministic digest of a byte stream (splitmix64 fold).
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut state = 0xD19E_57D1_9E57_D19E ^ (bytes.len() as u64);
    let mut acc = splitmix64(&mut state);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        state ^= u64::from_le_bytes(w);
        acc ^= splitmix64(&mut state);
    }
    acc
}

/// Splits the load phase and the request stream across shards by
/// hashed key ownership; scans split per shard exactly like the
/// sharded mixed driver splits them (each shard walks its own keys).
pub fn shard_streams(cfg: &ServeConfig) -> (Vec<Vec<YcsbOp>>, Vec<Vec<KvRequest>>) {
    let shards = cfg.shards.max(1);
    let (loads, mixed) = ycsb_mix(cfg.load, cfg.requests, cfg.value_size, cfg.seed, &cfg.mix);
    let mut loads_by = vec![Vec::new(); shards];
    for op in loads {
        loads_by[shard_of(op.key, shards)].push(op);
    }
    let reqs: Vec<KvRequest> = mixed.iter().map(KvRequest::from_mixed).collect();
    (loads_by, shard_requests(&reqs, shards))
}

/// Partitions a request stream by key ownership. Scans are split into
/// the per-shard subsets of their expected keys (empty subsets are
/// dropped), mirroring `partition_mixed`.
pub fn shard_requests(reqs: &[KvRequest], shards: usize) -> Vec<Vec<KvRequest>> {
    let shards = shards.max(1);
    let mut by = vec![Vec::new(); shards];
    for req in reqs {
        match req {
            KvRequest::Scan { keys } => {
                let mut per: Vec<Vec<u64>> = vec![Vec::new(); shards];
                for &k in keys {
                    per[shard_of(k, shards)].push(k);
                }
                for (s, keys) in per.into_iter().enumerate() {
                    if !keys.is_empty() {
                        by[s].push(KvRequest::Scan { keys });
                    }
                }
            }
            other => by[shard_of(other.key(), shards)].push(other.clone()),
        }
    }
    by
}

/// Encode-time client model: tracks each key's current CAS token so
/// `cas` commands carry the token a real client would hold after its
/// `gets`.
#[derive(Debug, Default, Clone)]
pub struct TokenModel {
    tokens: BTreeMap<u64, u64>,
}

impl TokenModel {
    /// Folds one request's effect into the model and returns the
    /// token a `cas` must carry (`None` for other verbs).
    fn on_request(&mut self, req: &KvRequest) -> Option<u64> {
        match req {
            KvRequest::Set { key, value } => {
                self.tokens.insert(*key, fingerprint(value));
                None
            }
            KvRequest::Cas { key, value } => {
                let held = self.tokens.get(key).copied().unwrap_or(0);
                self.tokens.insert(*key, fingerprint(value));
                Some(held)
            }
            KvRequest::Delete { key } => {
                self.tokens.remove(key);
                None
            }
            _ => None,
        }
    }

    /// Seeds the model from a load-phase insert.
    pub fn on_load(&mut self, op: &YcsbOp) {
        self.tokens.insert(op.key, fingerprint(&op.value));
    }
}

/// Encodes one abstract request into wire bytes, updating the token
/// model. `ordered` selects whether scans use the `scan` verb or
/// degrade to a multi-key `get` (unordered backends).
pub fn encode_request(req: &KvRequest, model: &mut TokenModel, ordered: bool, out: &mut Vec<u8>) {
    let token = model.on_request(req);
    match req {
        KvRequest::Get { key } => Codec::encode_get(out, &[*key], false),
        KvRequest::Gets { key } => Codec::encode_get(out, &[*key], true),
        KvRequest::Set { key, value } => Codec::encode_set(out, *key, value),
        KvRequest::Cas { key, value } => Codec::encode_cas(out, *key, token.unwrap_or(0), value),
        KvRequest::Delete { key } => Codec::encode_delete(out, *key),
        KvRequest::Scan { keys } => {
            if ordered {
                Codec::encode_scan(out, keys[0], *keys.last().unwrap());
            } else {
                Codec::encode_get(out, keys, false);
            }
        }
    }
}

fn trace_verb(req: &Request) -> RequestVerb {
    match req {
        Request::Get {
            with_cas: false, ..
        } => RequestVerb::Get,
        Request::Get { with_cas: true, .. } => RequestVerb::Gets,
        Request::Set { .. } => RequestVerb::Set,
        Request::Cas { .. } => RequestVerb::Cas,
        Request::Delete { .. } => RequestVerb::Delete,
        Request::Scan { .. } => RequestVerb::Scan,
        Request::Stats => RequestVerb::Stats,
    }
}

fn sample_class(req: &Request) -> usize {
    match req {
        Request::Get {
            with_cas: false, ..
        } => 0,
        Request::Get { with_cas: true, .. } => 1,
        Request::Set { .. } => 2,
        Request::Cas { .. } => 3,
        Request::Delete { .. } => 4,
        Request::Scan { .. } => 5,
        // Health queries are untimed metadata; bill them as reads.
        Request::Stats => 0,
    }
}

/// Dispatches one parsed request against the store, appending the
/// response to `out`. This is the single execution path shared by the
/// serve loop, the protocol battery and the service-boundary crash
/// sweeps.
pub fn dispatch(store: &mut KvStore, req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Get { keys, with_cas } => {
            for &k in keys {
                if let Some(v) = store.get(k) {
                    let cas = with_cas.then(|| fingerprint(&v));
                    Codec::write_value(out, k, &v, cas);
                }
            }
            Codec::write_line(out, reply::END);
        }
        Request::Set { key, value } => {
            store.set(*key, value);
            Codec::write_line(out, reply::STORED);
        }
        Request::Cas { key, token, value } => {
            let line = match store.cas(*key, *token, value) {
                CasOutcome::Stored => reply::STORED,
                CasOutcome::Exists => reply::EXISTS,
                CasOutcome::NotFound => reply::NOT_FOUND,
            };
            Codec::write_line(out, line);
        }
        Request::Delete { key } => {
            let line = if store.delete(*key) {
                reply::DELETED
            } else {
                reply::NOT_FOUND
            };
            Codec::write_line(out, line);
        }
        Request::Scan { lo, hi } => match store.scan(*lo, *hi) {
            Some(pairs) => {
                for (k, v) in pairs {
                    Codec::write_value(out, k, &v, None);
                }
                Codec::write_line(out, reply::END);
            }
            None => Codec::write_line(out, "SERVER_ERROR scan unsupported"),
        },
        Request::Stats => write_stats(out, &HealthSnapshot::of_store(store)),
    }
}

/// Per-shard deterministic seed derivation (jitter, arrivals).
fn shard_seed(seed: u64, shard: usize, salt: u64) -> u64 {
    let mut state = seed ^ salt ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// Runs one shard's worker over its partitioned load phase and
/// request stream. Pure simulation: safe to fan shards across host
/// threads, results are identical to the serial run.
pub fn run_shard_service(
    cfg: &ServeConfig,
    shard: usize,
    loads: &[YcsbOp],
    reqs: &[KvRequest],
) -> ShardServeReport {
    let machine_cfg = match &cfg.pm {
        Some(pm) => MachineConfig::for_kind(cfg.scheme).with_pm(pm.clone()),
        None => MachineConfig::for_kind(cfg.scheme),
    };
    let mut store = KvStore::with_config(machine_cfg, cfg.kind, cfg.value_size);
    store.prefault(loads.len() + reqs.len());
    if cfg.drain_jitter > 0 {
        let jseed = shard_seed(cfg.seed, shard, 0x4A17_7E12);
        store
            .machine_mut()
            .set_wpq_drain_jitter(cfg.drain_jitter, jseed);
    }
    let handle = (cfg.trace_capacity > 0).then(|| store.enable_tracing(cfg.trace_capacity));
    let tracing = handle.is_some() && store.machine().trace_enabled();

    // Load phase (pre-measurement) + client token model seeding.
    let mut model = TokenModel::default();
    for op in loads {
        store.set(op.key, &op.value);
        model.on_load(op);
    }
    // Probe backend orderedness once, before measurement starts: it
    // decides whether scans go out as `scan` or degrade to multi-get.
    let ordered = store.scan(0, 0).is_some();

    // Encode the whole stream into the sessions' receive buffers
    // (fully pipelined ingestion).
    let codec = Codec::new(cfg.value_size);
    let sessions = cfg.sessions.max(1);
    let mut sess: Vec<Session> = (0..sessions as u32).map(Session::new).collect();
    let mut wire = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        wire.clear();
        encode_request(req, &mut model, ordered, &mut wire);
        sess[session_of(i, sessions) as usize].feed(&wire);
    }

    let arrivals = cfg.open_loop.then(|| {
        open_loop_arrivals(
            reqs.len(),
            cfg.mean_gap,
            shard_seed(cfg.seed, shard, 0x0A11_7EA1),
        )
    });

    let start = store.now();
    let mut stats = AdmissionStats::default();
    let mut samples: Vec<Vec<u64>> = vec![Vec::new(); VERB_CLASSES.len()];
    let mut served = 0u64;
    let mut truncated = 0u64;
    for i in 0..reqs.len() {
        let s = session_of(i, sessions) as usize;
        // Pacing: open-loop requests arrive on the schedule; the
        // worker idles forward if it is ahead of the next arrival.
        if let Some(arr) = &arrivals {
            let at = start + arr[i];
            let now = store.now();
            if now < at {
                store.compute(at - now);
            }
        }
        let arrival = store.now();
        let decision = admit(&mut store, &cfg.admission);
        stats.record(decision);
        let sid = sess[s].id();
        match decision {
            Admission::Shed { queued } => {
                // The request is consumed (and discarded) so the
                // session stream stays in sync, then refused.
                let _ = sess[s].next_request(&codec);
                Codec::write_line(&mut sess[s].wbuf, reply::SERVER_ERROR_BUSY);
                if tracing {
                    if let Some(h) = &handle {
                        h.borrow_mut().emit_at(
                            store.now(),
                            Event::RequestEnd {
                                session: sid,
                                req: i as u64,
                                queued,
                                shed: true,
                            },
                        );
                    }
                }
            }
            Admission::Admit { queued } => {
                let parsed = match take_request(&mut sess[s], &codec, i as u64) {
                    Ok(parsed) => parsed,
                    Err(ServiceError::TruncatedStream { .. }) => {
                        // A cut-off client is that client's problem,
                        // not the worker's: refuse the request and
                        // keep serving every other session.
                        truncated += 1;
                        Codec::write_line(&mut sess[s].wbuf, reply::SERVER_ERROR_TRUNCATED);
                        continue;
                    }
                };
                match parsed {
                    Ok(req) => {
                        if tracing {
                            if let Some(h) = &handle {
                                h.borrow_mut().emit_at(
                                    store.now(),
                                    Event::RequestBegin {
                                        session: sid,
                                        req: i as u64,
                                        verb: trace_verb(&req),
                                    },
                                );
                            }
                        }
                        let mut out = std::mem::take(&mut sess[s].wbuf);
                        dispatch(&mut store, &req, &mut out);
                        sess[s].wbuf = out;
                        served += 1;
                        samples[sample_class(&req)].push(store.now() - arrival);
                        if tracing {
                            if let Some(h) = &handle {
                                h.borrow_mut().emit_at(
                                    store.now(),
                                    Event::RequestEnd {
                                        session: sid,
                                        req: i as u64,
                                        queued,
                                        shed: false,
                                    },
                                );
                            }
                        }
                    }
                    Err(line) => Codec::write_line(&mut sess[s].wbuf, &line),
                }
            }
        }
    }
    let sim_cycles = store.now() - start;

    let mut responses = Vec::new();
    for s in &mut sess {
        responses.extend_from_slice(&s.take_responses());
    }
    let response_digest = digest64(&responses);
    let wpq_stall_cycles = store.machine().device().wpq_stall_cycles();
    let trace = store.context_mut().take_trace();
    ShardServeReport {
        shard,
        requests: reqs.len() as u64,
        served,
        admission: stats,
        sim_cycles,
        samples,
        responses,
        response_digest,
        wpq_stall_cycles,
        truncated,
        trace,
    }
}

/// Runs every shard serially (the reference execution the parallel
/// fan-out in `slpmt-bench` must reproduce byte-for-byte).
pub fn run_serve_serial(cfg: &ServeConfig) -> Vec<ShardServeReport> {
    let (loads, reqs) = shard_streams(cfg);
    (0..cfg.shards.max(1))
        .map(|s| run_shard_service(cfg, s, &loads[s], &reqs[s]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;

    fn base() -> ServeConfig {
        let mut cfg = ServeConfig::new(Scheme::Slpmt, IndexKind::KvBtree, MixSpec::YCSB_A);
        cfg.load = 60;
        cfg.requests = 200;
        cfg.value_size = 16;
        cfg.seed = 7;
        cfg
    }

    #[test]
    fn serve_is_deterministic() {
        let cfg = base();
        let a = run_serve_serial(&cfg);
        let b = run_serve_serial(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.responses, y.responses);
            assert_eq!(x.response_digest, y.response_digest);
            assert_eq!(x.sim_cycles, y.sim_cycles);
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn every_request_serves_under_default_admission() {
        let cfg = base();
        let reports = run_serve_serial(&cfg);
        let r = &reports[0];
        assert_eq!(r.served, r.requests);
        assert_eq!(r.admission.shed, 0);
        assert_eq!(
            r.samples.iter().map(|s| s.len() as u64).sum::<u64>(),
            r.served
        );
        assert!(r.sim_cycles > 0);
        assert!(!r.responses.is_empty());
    }

    #[test]
    fn sharded_streams_cover_the_request_stream() {
        let mut cfg = base();
        cfg.shards = 4;
        let (loads, reqs) = shard_streams(&cfg);
        assert_eq!(loads.iter().map(Vec::len).sum::<usize>(), cfg.load);
        // Scans may split (adding entries) but nothing may be lost.
        assert!(reqs.iter().map(Vec::len).sum::<usize>() >= cfg.requests);
        for (s, part) in reqs.iter().enumerate() {
            for req in part {
                match req {
                    KvRequest::Scan { keys } => {
                        assert!(keys.iter().all(|&k| shard_of(k, 4) == s))
                    }
                    other => assert_eq!(shard_of(other.key(), 4), s),
                }
            }
        }
    }

    #[test]
    fn cas_requests_always_store_in_trace_order() {
        // YCSB-F is RMW-heavy; with encode-time tokens every cas must
        // hit STORED (the stream is serial per shard).
        let mut cfg = base();
        cfg.mix = MixSpec::YCSB_F;
        cfg.requests = 150;
        let reports = run_serve_serial(&cfg);
        let text = String::from_utf8_lossy(&reports[0].responses).into_owned();
        assert!(text.contains("STORED"));
        assert!(!text.contains("EXISTS"), "stale token in serial stream");
        assert!(!text.contains("SERVER_ERROR"));
    }

    #[test]
    fn unordered_backend_degrades_scans_to_multiget() {
        let mut cfg = base();
        cfg.kind = IndexKind::Hashtable;
        cfg.mix = MixSpec::YCSB_E; // scan-heavy
        cfg.requests = 100;
        let reports = run_serve_serial(&cfg);
        let text = String::from_utf8_lossy(&reports[0].responses).into_owned();
        assert!(!text.contains("scan unsupported"), "degrade at encode time");
    }

    #[test]
    fn open_loop_pacing_stretches_the_run() {
        let closed = run_serve_serial(&base());
        let mut cfg = base();
        cfg.open_loop = true;
        cfg.mean_gap = 5_000;
        let open = run_serve_serial(&cfg);
        assert!(open[0].sim_cycles > closed[0].sim_cycles);
        // Pacing changes timing, not outcomes: same response bytes.
        assert_eq!(open[0].responses, closed[0].responses);
    }

    #[test]
    fn truncated_stream_degrades_to_typed_error() {
        let codec = Codec::new(32);
        let mut s = Session::new(7);
        // Cut mid-data-block: header promises 5 bytes, stream stops
        // after 3.
        s.feed(b"set 1 0 0 5\r\nhel");
        match take_request(&mut s, &codec, 3) {
            Err(ServiceError::TruncatedStream { session: 7, at: 3 }) => {}
            other => panic!("expected typed truncation error, got {other:?}"),
        }
        // The worker's degrade path writes the refusal and keeps the
        // session alive; once the missing bytes arrive the stream
        // parses normally again.
        Codec::write_line(&mut s.wbuf, reply::SERVER_ERROR_TRUNCATED);
        s.feed(b"lo\r\nget 1\r\n");
        assert!(matches!(
            take_request(&mut s, &codec, 4),
            Ok(Ok(Request::Set { key: 1, .. }))
        ));
        assert!(matches!(
            take_request(&mut s, &codec, 5),
            Ok(Ok(Request::Get { .. }))
        ));
        let text = String::from_utf8(s.take_responses()).unwrap();
        assert!(text.contains("SERVER_ERROR truncated request"));
    }

    #[test]
    fn stats_dispatch_reports_store_health() {
        let mut store = KvStore::open(Scheme::Slpmt, IndexKind::KvBtree, 16);
        let mut out = Vec::new();
        dispatch(&mut store, &Request::Stats, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("STAT recovering 0\r\n"));
        assert!(text.contains("STAT scrubbed 0\r\n"));
        assert!(text.ends_with("END\r\n"));
    }

    #[test]
    fn request_spans_are_traced() {
        let mut cfg = base();
        cfg.requests = 50;
        cfg.trace_capacity = 1 << 14;
        let reports = run_serve_serial(&cfg);
        let r = &reports[0];
        if !r.trace.is_empty() {
            let begins = r
                .trace
                .iter()
                .filter(|t| matches!(t.event, Event::RequestBegin { .. }))
                .count();
            let ends = r
                .trace
                .iter()
                .filter(|t| matches!(t.event, Event::RequestEnd { .. }))
                .count();
            assert_eq!(begins as u64, r.served);
            assert_eq!(ends as u64, r.requests);
        }
    }
}
