//! Crash and media-fault batteries driven *through the service
//! boundary*.
//!
//! The engine-level sweeps (`slpmt_workloads::crashsweep` /
//! `faultsweep`) prove committed-prefix durability for a mixed trace
//! applied directly to a [`DurableIndex`]. This module proves the same
//! property one layer up: every operation travels the full service
//! path — abstract request → wire encoding → codec parse → dispatch →
//! facade transaction — before the crash lands, and recovery goes
//! through [`KvStore::recover`]'s crash-to-ready sequence. The oracle
//! is still the engine's [`StreamingOracle`] (the request stream maps
//! 1:1 onto a mixed trace), but value checks decode the facade's
//! length-prefixed cells instead of comparing raw index payloads.
//!
//! The degradation rules of the media-fault battery mirror the
//! engine-level ones verbatim: log replay never panics; no torn or
//! corrupt state without a matching plan knob; every lost line traces
//! to an injected fault; a loss-free recovery must satisfy the strict
//! oracle.

use crate::codec::{Codec, Parse};
use crate::service::{dispatch, encode_request, TokenModel};
use crate::store::KvStore;
use slpmt_core::SchemeKind;
use slpmt_pmem::FaultPlan;
use slpmt_workloads::crashsweep::{sample_points, StreamingOracle};
use slpmt_workloads::ycsb::MixedOp;
use slpmt_workloads::{inspect, service_trace, IndexKind, KvRequest, MixSpec};
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One service-boundary sweep configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvSweepCase {
    /// Simulated logging scheme.
    pub scheme: SchemeKind,
    /// Index backend behind the facade.
    pub kind: IndexKind,
    /// Trace seed.
    pub seed: u64,
    /// Load-phase inserts.
    pub load: usize,
    /// Mixed requests after the load phase.
    pub requests: usize,
    /// Value payload size.
    pub value_size: usize,
    /// Request mix.
    pub mix: MixSpec,
}

impl KvSweepCase {
    /// A baseline case: 30 loaded keys + `requests` YCSB-A requests of
    /// 16-byte values.
    pub fn new(scheme: impl Into<SchemeKind>, kind: IndexKind, seed: u64, requests: usize) -> Self {
        KvSweepCase {
            scheme: scheme.into(),
            kind,
            seed,
            load: 30,
            requests,
            value_size: 16,
            mix: MixSpec::YCSB_A,
        }
    }

    /// Same case with a different mix.
    pub fn with_mix(mut self, mix: MixSpec) -> Self {
        self.mix = mix;
        self
    }
}

impl fmt::Display for KvSweepCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kv-serve {} {} {} seed={} load={} reqs={} val={}",
            self.scheme, self.kind, self.mix, self.seed, self.load, self.requests, self.value_size
        )
    }
}

/// The case's deterministic service trace: mixed ops (the oracle's
/// input) and the mapped request stream, index-aligned.
pub fn service_ops(case: &KvSweepCase) -> (Vec<MixedOp>, Vec<KvRequest>) {
    service_trace(
        case.load,
        case.requests,
        case.value_size,
        case.seed,
        &case.mix,
    )
}

fn build_store(case: &KvSweepCase) -> KvStore {
    let mut store = KvStore::open(case.scheme, case.kind, case.value_size);
    store.prefault(case.load + case.requests);
    store
}

/// Replays one request through the full service path: wire-encode
/// (updating the client token model), codec-parse, dispatch.
fn apply_wire(
    store: &mut KvStore,
    codec: &Codec,
    model: &mut TokenModel,
    ordered: bool,
    req: &KvRequest,
    wire: &mut Vec<u8>,
    out: &mut Vec<u8>,
) {
    wire.clear();
    encode_request(req, model, ordered, wire);
    let mut pos = 0;
    while pos < wire.len() {
        let (n, parse) = codec.parse(&wire[pos..]);
        pos += n;
        match parse {
            Parse::Req(r) => dispatch(store, &r, out),
            other => panic!("generated wire must parse cleanly, got {other:?}"),
        }
    }
}

/// Decoded-state check: the recovered store must agree with the
/// oracle's committed prefix, comparing *decoded payloads* (the facade
/// stores length-prefixed cells the raw engine oracle cannot compare
/// directly).
pub fn check_store(store: &KvStore, oracle: &StreamingOracle<'_>) -> Result<(), String> {
    if store.len() != oracle.len() {
        return Err(format!(
            "{} keys recovered through the facade, oracle has {}",
            store.len(),
            oracle.len()
        ));
    }
    for (k, v) in oracle.iter() {
        match store.peek_value(k) {
            Some(got) if got == v => {}
            got => {
                return Err(format!(
                    "key {k} decoded as {:?} B, oracle says {} B",
                    got.map(|g| g.len()),
                    v.len()
                ))
            }
        }
    }
    Ok(())
}

/// Runs the case's request stream crash-free through the service
/// path, checks the decoded end state against the oracle, and returns
/// the persist-event count — the sweep domain is `1..=N`.
///
/// # Panics
///
/// Panics if the crash-free run already disagrees with the oracle.
pub fn count_service_events(case: &KvSweepCase) -> u64 {
    let (ops, reqs) = service_ops(case);
    let mut store = build_store(case);
    let ordered = store.scan(0, 0).is_some();
    let codec = Codec::new(case.value_size);
    let mut model = TokenModel::default();
    let (mut wire, mut out) = (Vec::new(), Vec::new());
    for req in &reqs {
        apply_wire(
            &mut store, &codec, &mut model, ordered, req, &mut wire, &mut out,
        );
    }
    let mut oracle = StreamingOracle::new(&ops);
    oracle.advance_to(ops.len());
    if let Err(e) = check_store(&store, &oracle) {
        panic!("{case}: crash-free service run disagrees with the oracle: {e}");
    }
    store.machine().persist_event_count()
}

/// Crashes the service at persist event `k`, recovers through the
/// facade, and checks committed-prefix durability with decoded
/// values. The caller-owned oracle advances monotonically, so an
/// ascending sweep pays O(trace) model work total.
///
/// # Errors
///
/// Returns a human-readable failure description when the recovered
/// service state violates the committed-prefix contract, an
/// invariant, or heap-leak accounting.
pub fn run_service_crash_at(
    case: &KvSweepCase,
    oracle: &mut StreamingOracle<'_>,
    k: u64,
) -> Result<(), String> {
    let (_ops, reqs) = service_ops(case);
    let mut store = build_store(case);
    let ordered = store.scan(0, 0).is_some();
    store.machine_mut().arm_crash_at_event(k);
    let codec = Codec::new(case.value_size);
    let mut model = TokenModel::default();
    let (mut wire, mut out) = (Vec::new(), Vec::new());
    let mut op_seq = Vec::with_capacity(reqs.len());
    for req in &reqs {
        apply_wire(
            &mut store, &codec, &mut model, ordered, req, &mut wire, &mut out,
        );
        op_seq.push(store.txn_seq());
        if store.machine().crash_tripped() {
            break;
        }
    }
    store.crash();
    let marker = store.durable_commit_seq();
    let b = op_seq.iter().take_while(|&&seq| seq <= marker).count();
    oracle.advance_to(b);
    store.recover();
    store
        .check_invariants()
        .map_err(|e| format!("invariant violated after service recovery: {e}"))?;
    let reachable = store.reachable();
    if !inspect(store.context(), &reachable).is_clean() {
        return Err("allocations still leaked after facade GC".into());
    }
    check_store(&store, oracle).map_err(|e| format!("{e} (b={b}, marker seq {marker})"))
}

/// [`run_service_crash_at`] with a panic guard: any panic in the
/// replay/recovery path becomes a failure string.
pub fn check_service_point(
    case: &KvSweepCase,
    oracle: &mut StreamingOracle<'_>,
    k: u64,
) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| run_service_crash_at(case, oracle, k))) {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(format!("{case} @k={k}: {e}")),
        Err(p) => Some(format!("{case} @k={k}: panic: {}", panic_msg(p))),
    }
}

/// Seeded sample of `count` distinct crash points in `1..=n`,
/// ascending (so one oracle serves the whole sweep).
pub fn service_points(case: &KvSweepCase, n: u64, count: usize) -> Vec<u64> {
    sample_points(case.seed ^ 0x5E7E_CE00, n, count)
}

fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_string())
}

/// Media-fault battery at the service boundary: replays the request
/// stream with `plan` armed and a crash at persist event `k`, then
/// checks the engine's degradation rules against the facade's
/// recovery. Mirrors `slpmt_workloads::faultsweep::run_fault_at`
/// rule-for-rule, with decoded-value strict checks.
///
/// # Errors
///
/// Returns a failure description when log replay panics, a fault
/// appears out of thin air, a lost line has no injected cause, or a
/// loss-free recovery breaks the strict oracle.
pub fn run_service_fault_at(case: &KvSweepCase, plan: &FaultPlan, k: u64) -> Result<(), String> {
    let (ops, reqs) = service_ops(case);
    let mut store = build_store(case);
    let ordered = store.scan(0, 0).is_some();
    store.machine_mut().set_fault_plan(*plan);
    store.machine_mut().arm_crash_at_event(k);
    let codec = Codec::new(case.value_size);
    let mut model = TokenModel::default();
    let (mut wire, mut out) = (Vec::new(), Vec::new());
    let mut op_seq = Vec::with_capacity(reqs.len());
    for req in &reqs {
        apply_wire(
            &mut store, &codec, &mut model, ordered, req, &mut wire, &mut out,
        );
        op_seq.push(store.txn_seq());
        if store.machine().crash_tripped() {
            break;
        }
    }
    store.crash();
    let marker = store.durable_commit_seq();
    let b = op_seq.iter().take_while(|&&seq| seq <= marker).count();
    // Log replay must never panic, whatever the media did.
    let report = match catch_unwind(AssertUnwindSafe(|| store.replay())) {
        Ok(r) => r,
        Err(p) => return Err(format!("log replay panicked: {}", panic_msg(p))),
    };
    // Faults must not appear out of thin air.
    if !plan.tear && report.torn_records + report.torn_markers != 0 {
        return Err(format!(
            "{} torn records / {} torn markers without a tear in the plan",
            report.torn_records, report.torn_markers
        ));
    }
    if plan.flip_records == 0 && report.corrupt_records != 0 {
        return Err(format!(
            "{} corrupt records without a flip in the plan",
            report.corrupt_records
        ));
    }
    // Every lost line must trace back to an injected fault.
    let tainted: BTreeSet<u64> = {
        let dev = store.machine().device();
        dev.fault_poisoned_lines()
            .iter()
            .chain(dev.fault_flipped_lines())
            .copied()
            .collect()
    };
    if let Some(stray) = report.lost_lines.iter().find(|l| !tainted.contains(l)) {
        return Err(format!(
            "line {stray:#x} reported lost but no injected fault touched it"
        ));
    }
    if !report.lost_lines.is_empty() {
        // Degraded and detected: the loss was reported honestly and
        // attributed; the facade surfaces the report to the
        // application, and structure recovery over a lossy image is
        // out of contract (same stop as the engine-level battery).
        return Ok(());
    }
    // Zero lost lines: the faults were fully absorbed, so the strict
    // decoded-state oracle applies unchanged and any panic is a
    // failure.
    let strict = catch_unwind(AssertUnwindSafe(move || -> Result<(), String> {
        store.rebuild();
        store
            .check_invariants()
            .map_err(|e| format!("invariant violated after recovery: {e}"))?;
        let reachable = store.reachable();
        if !inspect(store.context(), &reachable).is_clean() {
            return Err("allocations still leaked after GC".into());
        }
        let mut oracle = StreamingOracle::new(&ops);
        oracle.advance_to(b);
        check_store(&store, &oracle).map_err(|e| format!("{e} (marker seq {marker})"))
    }));
    match strict {
        Ok(r) => r,
        Err(p) => Err(format!("structure recovery panicked: {}", panic_msg(p))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;
    use slpmt_workloads::faultsweep::default_plans;

    #[test]
    fn crash_free_service_run_matches_oracle() {
        let case = KvSweepCase::new(Scheme::Slpmt, IndexKind::KvBtree, 11, 60);
        let n = count_service_events(&case);
        assert!(n > 0);
    }

    #[test]
    fn sampled_service_crash_points_recover() {
        let case = KvSweepCase::new(Scheme::Slpmt, IndexKind::KvBtree, 5, 50);
        let n = count_service_events(&case);
        let (ops, _) = service_ops(&case);
        let mut oracle = StreamingOracle::new(&ops);
        for k in service_points(&case, n, 8) {
            if let Some(fail) = check_service_point(&case, &mut oracle, k) {
                panic!("{fail}");
            }
        }
    }

    #[test]
    fn fault_battery_smoke() {
        let case = KvSweepCase::new(Scheme::Slpmt, IndexKind::KvBtree, 9, 40);
        let n = count_service_events(&case);
        let plans = default_plans(1234);
        let plan = &plans[0];
        for k in [n / 3, 2 * n / 3] {
            if let Err(e) = run_service_fault_at(&case, plan, k.max(1)) {
                panic!("{case} plan[0] @k={k}: {e}");
            }
        }
    }

    #[test]
    fn points_are_ascending_and_seeded() {
        let case = KvSweepCase::new(Scheme::Slpmt, IndexKind::KvBtree, 5, 50);
        let pts = service_points(&case, 500, 20);
        assert_eq!(pts.len(), 20);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(pts, service_points(&case, 500, 20));
    }
}
