//! The KV facade: a clean durable `get`/`set`/`delete`/`cas`/`scan`
//! API over one simulated machine.
//!
//! [`KvStore`] owns what the benchmark drivers used to spell out by
//! hand: transaction demarcation (every mutation is one durable
//! transaction), value encoding into fixed persistent-heap cells, and
//! the crash → replay → structure-recovery → leak-GC sequence that
//! takes a machine from power-loss back to ready.
//!
//! Values are variable-length up to `max_value` and are encoded into a
//! fixed cell: an 8-byte little-endian length prefix, the payload, and
//! zero padding up to the cell size (`8 + max_value` rounded up to a
//! word, at least 16 bytes so every backend's update path is usable).
//! The cell is what the underlying [`DurableIndex`] stores; the facade
//! decodes on the way out, so callers only ever see raw payloads.

use slpmt_annotate::AnnotationTable;
use slpmt_core::{Machine, MachineConfig, RecoveryReport, SchemeKind};
use slpmt_pmem::PmAddr;
use slpmt_prng::splitmix64;
use slpmt_workloads::ctx::AnnotationSource;
use slpmt_workloads::{DurableIndex, IndexKind, PmContext};

/// Deterministic verification cost the background scrub charges per
/// flagged line (a re-read plus ECC re-establishment).
pub const SCRUB_CYCLES_PER_LINE: u64 = 300;

/// Why an encoded cell failed to decode. Surfaces instead of a panic
/// when media faults (or the salvage scrub that zeroes unsalvageable
/// lines) leave a cell whose length prefix no longer describes its
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellError {
    /// The cell is shorter than the 8-byte length prefix.
    Short {
        /// Actual cell length in bytes.
        len: usize,
    },
    /// The length prefix claims more payload than the cell holds
    /// (corrupt prefix).
    BadLength {
        /// The prefix's claimed payload length.
        claimed: u64,
        /// Payload capacity actually present after the prefix.
        capacity: usize,
    },
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Short { len } => {
                write!(f, "cell of {len} B is shorter than the length prefix")
            }
            CellError::BadLength { claimed, capacity } => {
                write!(
                    f,
                    "length prefix claims {claimed} B of {capacity} B capacity"
                )
            }
        }
    }
}

/// Online-recovery health of a [`KvStore`]: either serving normally
/// or inside the post-crash degraded window where reads serve but
/// writes are refused until the poison-set scrub completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Fully serving; no scrub work outstanding.
    #[default]
    Ready,
    /// Degraded window: the recovery report flagged salvaged or lost
    /// lines, and the background scrub has not finished re-verifying
    /// them.
    Recovering,
}

/// Outcome of a compare-and-swap, mirroring the memcached `cas`
/// response vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// Token matched; the value was replaced durably.
    Stored,
    /// The key exists but the token was stale.
    Exists,
    /// The key is not present.
    NotFound,
}

/// Deterministic CAS token for a value payload: a splitmix64 fold over
/// the bytes, derivable from durable state alone — after a crash the
/// recovered store hands out the same tokens, so clients never hold a
/// token the service cannot re-derive.
pub fn fingerprint(value: &[u8]) -> u64 {
    let mut state = 0x5EED_CA5F_1290_0D51 ^ (value.len() as u64);
    let mut acc = splitmix64(&mut state);
    for chunk in value.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        state ^= u64::from_le_bytes(w);
        acc ^= splitmix64(&mut state);
    }
    acc
}

/// The durable key-value store facade.
pub struct KvStore {
    ctx: PmContext,
    idx: Box<dyn DurableIndex>,
    kind: IndexKind,
    max_value: usize,
    cell: usize,
    health: HealthState,
    scrub_queue: Vec<u64>,
    scrubbed: u64,
}

impl KvStore {
    /// Opens a store simulating `scheme` over a fresh `kind` index
    /// accepting values up to `max_value` bytes.
    pub fn open(scheme: impl Into<SchemeKind>, kind: IndexKind, max_value: usize) -> Self {
        Self::with_config(MachineConfig::for_kind(scheme), kind, max_value)
    }

    /// Opens a store from an explicit machine configuration (timing
    /// sweeps, forced-stall WPQ setups).
    pub fn with_config(cfg: MachineConfig, kind: IndexKind, max_value: usize) -> Self {
        let cell = 8 + max_value.div_ceil(8).max(1) * 8;
        let mut ctx = PmContext::with_config(cfg, AnnotationTable::new());
        let idx = kind.build(&mut ctx, cell, AnnotationSource::Manual);
        KvStore {
            ctx,
            idx,
            kind,
            max_value,
            cell,
            health: HealthState::Ready,
            scrub_queue: Vec::new(),
            scrubbed: 0,
        }
    }

    /// Pre-faults heap pages for roughly `ops` operations' worth of
    /// allocations (see `PmContext::prefault_heap`); call before a
    /// measured or parallel run.
    pub fn prefault(&mut self, ops: usize) {
        let bytes = (ops as u64) * (self.cell as u64 + 192) + (1 << 20);
        self.ctx.prefault_heap(bytes);
    }

    /// The index backend this store runs on.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Largest accepted value payload, in bytes.
    pub fn max_value(&self) -> usize {
        self.max_value
    }

    /// The fixed encoded-cell size values occupy in the heap.
    pub fn cell_size(&self) -> usize {
        self.cell
    }

    fn encode(&self, value: &[u8]) -> Vec<u8> {
        assert!(
            value.len() <= self.max_value,
            "value of {} B exceeds max_value {}",
            value.len(),
            self.max_value
        );
        let mut cell = vec![0u8; self.cell];
        cell[..8].copy_from_slice(&(value.len() as u64).to_le_bytes());
        cell[8..8 + value.len()].copy_from_slice(value);
        cell
    }

    /// Checked cell decode: the payload when the length prefix
    /// describes the cell, a typed [`CellError`] otherwise. Never
    /// panics and never unwraps — short cells (salvage-scrubbed lines
    /// can truncate a cell to zeros) and corrupt prefixes both surface
    /// as errors the caller can degrade on.
    pub fn decode_cell(cell: &[u8]) -> Result<Vec<u8>, CellError> {
        let Some(prefix) = cell.get(..8) else {
            return Err(CellError::Short { len: cell.len() });
        };
        let mut raw = [0u8; 8];
        raw.copy_from_slice(prefix);
        let claimed = u64::from_le_bytes(raw);
        let capacity = cell.len() - 8;
        if claimed > capacity as u64 {
            return Err(CellError::BadLength { claimed, capacity });
        }
        Ok(cell[8..8 + claimed as usize].to_vec())
    }

    /// Decodes an encoded cell back to its payload, degrading instead
    /// of erroring: a short cell decodes empty, a corrupt length
    /// prefix (possible under injected media faults) is clamped to the
    /// cell's actual capacity. The timed read path uses this so a
    /// degraded value is observable rather than fatal; callers that
    /// must distinguish use [`decode_cell`](Self::decode_cell).
    pub fn decode(cell: &[u8]) -> Vec<u8> {
        match Self::decode_cell(cell) {
            Ok(v) => v,
            Err(CellError::Short { .. }) => Vec::new(),
            Err(CellError::BadLength { .. }) => cell[8..].to_vec(),
        }
    }

    // ------------------------------------------------------------------
    // The service verbs (each mutation = one durable transaction)

    /// Timed point read; `None` when absent.
    pub fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        self.idx.get(&mut self.ctx, key).map(|c| Self::decode(&c))
    }

    /// Timed point read returning `(payload, cas_token)`.
    pub fn gets(&mut self, key: u64) -> Option<(Vec<u8>, u64)> {
        self.get(key).map(|v| {
            let t = fingerprint(&v);
            (v, t)
        })
    }

    /// Unconditional durable store: inserts the key or replaces its
    /// value, whichever applies.
    pub fn set(&mut self, key: u64, value: &[u8]) {
        let cell = self.encode(value);
        if self.idx.contains(&self.ctx, key) {
            let updated = self.idx.update(&mut self.ctx, key, &cell);
            debug_assert!(updated);
        } else {
            self.idx.insert(&mut self.ctx, key, &cell);
        }
    }

    /// Conditional durable store: replaces `key`'s value only when
    /// `token` matches the fingerprint of the current value.
    pub fn cas(&mut self, key: u64, token: u64, value: &[u8]) -> CasOutcome {
        match self.get(key) {
            None => CasOutcome::NotFound,
            Some(current) if fingerprint(&current) != token => CasOutcome::Exists,
            Some(_) => {
                let cell = self.encode(value);
                let updated = self.idx.update(&mut self.ctx, key, &cell);
                debug_assert!(updated);
                CasOutcome::Stored
            }
        }
    }

    /// Durable removal; `true` when the key was present.
    pub fn delete(&mut self, key: u64) -> bool {
        self.idx.remove(&mut self.ctx, key)
    }

    /// Timed range scan over `lo..=hi`, decoded; `None` when the
    /// backend is unordered (the caller degrades to point reads).
    pub fn scan(&mut self, lo: u64, hi: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        self.idx.scan_range(&mut self.ctx, lo, hi).map(|pairs| {
            pairs
                .into_iter()
                .map(|(k, c)| (k, Self::decode(&c)))
                .collect()
        })
    }

    // ------------------------------------------------------------------
    // Untimed observers (checkers, oracles)

    /// Untimed decoded lookup (invariant checkers, oracles).
    pub fn peek_value(&self, key: u64) -> Option<Vec<u8>> {
        self.idx.value_of(&self.ctx, key).map(|c| Self::decode(&c))
    }

    /// Number of live keys (untimed).
    pub fn len(&self) -> usize {
        self.idx.len(&self.ctx)
    }

    /// `true` when no keys are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the backend's structural invariant checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.idx.check_invariants(&self.ctx)
    }

    /// Every heap allocation reachable from the structure roots.
    pub fn reachable(&self) -> Vec<PmAddr> {
        self.idx.reachable(&self.ctx)
    }

    // ------------------------------------------------------------------
    // Crash & recovery (the facade owns the full sequence)

    /// Simulates a power failure: volatile state is lost, the durable
    /// image and log survive.
    pub fn crash(&mut self) {
        self.ctx.crash();
    }

    /// Log replay alone (undo/redo), returning the engine's report.
    /// Split out so fault batteries can wrap just the replay in a
    /// panic guard before deciding whether structure recovery is safe.
    pub fn replay(&mut self) -> RecoveryReport {
        self.ctx.recover()
    }

    /// Structure recovery + leak GC after [`replay`](Self::replay);
    /// returns the number of leaked allocations reclaimed.
    pub fn rebuild(&mut self) -> usize {
        self.idx.recover(&mut self.ctx);
        let reachable = self.idx.reachable(&self.ctx);
        self.ctx.gc(&reachable)
    }

    /// Crash-to-ready recovery: log replay, structure recovery and
    /// leak GC in one call. After it returns the store serves requests
    /// again.
    pub fn recover(&mut self) -> RecoveryReport {
        let report = self.replay();
        self.rebuild();
        self.health = HealthState::Ready;
        self.scrub_queue.clear();
        self.scrubbed = 0;
        report
    }

    // ------------------------------------------------------------------
    // Degraded-mode online recovery

    /// Crash-to-*serving* recovery with graceful degradation: log
    /// replay and structure rebuild run as usual, but when the
    /// validate/salvage phase flagged any lines (salvaged from log
    /// records, lost beyond salvage, or still carrying media poison)
    /// the store comes back in [`HealthState::Recovering`] instead of
    /// blocking: reads serve immediately while the flagged lines wait
    /// in a scrub queue for [`scrub_step`](Self::scrub_step). The
    /// service layer refuses writes (`SERVER_ERROR recovering`) until
    /// the queue drains and the store is [`ready`](Self::ready) again.
    pub fn recover_degraded(&mut self) -> RecoveryReport {
        let report = self.replay();
        self.rebuild();
        self.begin_degraded_window(&report);
        report
    }

    /// Opens the degraded window from a recovery report: every line
    /// the validate/salvage phase flagged (salvaged, lost, or still
    /// poisoned) plus every line restored from an applied undo
    /// pre-image queues for the background scrub, and the store drops
    /// to [`HealthState::Recovering`] while any are pending. Rollback
    /// lines were just re-persisted from records that survived the
    /// crash, so a conservative deployment re-verifies them before
    /// accepting new writes; the set is bounded by the in-flight
    /// transactions at the crash. Split out of
    /// [`recover_degraded`](Self::recover_degraded) so harnesses that
    /// guard [`replay`](Self::replay) and [`rebuild`](Self::rebuild)
    /// separately can still open the window.
    pub fn begin_degraded_window(&mut self, report: &RecoveryReport) {
        let mut flagged: std::collections::BTreeSet<u64> = report
            .salvaged_lines
            .iter()
            .chain(report.lost_lines.iter())
            .chain(report.rolled_back_lines.iter())
            .copied()
            .collect();
        flagged.extend(self.machine().device().poisoned_line_addrs());
        self.scrub_queue = flagged.into_iter().collect();
        self.scrubbed = 0;
        self.health = if self.scrub_queue.is_empty() {
            HealthState::Ready
        } else {
            HealthState::Recovering
        };
    }

    /// Runs up to `n` steps of the background scrub: each step
    /// re-reads one flagged line, clears any residual media poison,
    /// and charges deterministic verification cycles. The store
    /// returns to [`HealthState::Ready`] once the queue is empty.
    /// Returns the number of lines scrubbed by this call.
    pub fn scrub_step(&mut self, n: usize) -> usize {
        let take = n.min(self.scrub_queue.len());
        if take == 0 {
            if self.scrub_queue.is_empty() {
                self.health = HealthState::Ready;
            }
            return 0;
        }
        let drained: Vec<u64> = self.scrub_queue.drain(..take).collect();
        for la in drained {
            self.ctx.machine_mut().scrub_line(PmAddr::new(la));
            // Verification cost: re-read + ECC re-establishment.
            self.ctx.compute(SCRUB_CYCLES_PER_LINE);
        }
        self.scrubbed += take as u64;
        if self.scrub_queue.is_empty() {
            self.health = HealthState::Ready;
        }
        take
    }

    /// Current health (ready vs recovering).
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// `true` when the store serves writes (no scrub work pending).
    pub fn ready(&self) -> bool {
        self.health == HealthState::Ready
    }

    /// Flagged lines still waiting for the background scrub.
    pub fn scrub_pending(&self) -> usize {
        self.scrub_queue.len()
    }

    /// Lines scrubbed since the last degraded recovery.
    pub fn scrubbed(&self) -> u64 {
        self.scrubbed
    }

    // ------------------------------------------------------------------
    // Machine plumbing (admission, tracing, fault plans)

    /// Simulated cycle clock.
    pub fn now(&self) -> u64 {
        self.ctx.machine().now()
    }

    /// Current WPQ occupancy at the simulated clock — the admission
    /// signal.
    pub fn wpq_depth(&self) -> usize {
        self.ctx.machine().wpq_depth()
    }

    /// Charges pure compute cycles (admission polling, parse cost).
    pub fn compute(&mut self, cycles: u64) {
        self.ctx.compute(cycles);
    }

    /// Sequence number of the most recent durable transaction (the
    /// oracle's committed-prefix clock).
    pub fn txn_seq(&self) -> u64 {
        self.ctx.txn_seq()
    }

    /// Sequence number of the most recent transaction whose commit is
    /// durable in the pre-recovery PM image (hardware log tail or
    /// software commit header, per the configured design).
    pub fn durable_commit_seq(&self) -> u64 {
        self.ctx.durable_commit_seq()
    }

    /// The underlying machine (stats, WPQ knobs, crash arming).
    pub fn machine(&self) -> &Machine {
        self.ctx.machine()
    }

    /// Mutable machine access (fault plans, drain jitter, crash
    /// arming).
    pub fn machine_mut(&mut self) -> &mut Machine {
        self.ctx.machine_mut()
    }

    /// The execution context (heap inspection, tracing).
    pub fn context(&self) -> &PmContext {
        &self.ctx
    }

    /// Mutable context access.
    pub fn context_mut(&mut self) -> &mut PmContext {
        &mut self.ctx
    }

    /// Enables event tracing on the machine, returning the shared
    /// handle so the service loop can emit request spans into the same
    /// deterministic record stream.
    pub fn enable_tracing(&mut self, capacity_per_core: usize) -> slpmt_core::TraceHandle {
        self.ctx.enable_tracing(capacity_per_core)
    }
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("kind", &self.kind)
            .field("max_value", &self.max_value)
            .field("cell", &self.cell)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;

    fn store() -> KvStore {
        KvStore::open(Scheme::Slpmt, IndexKind::KvBtree, 24)
    }

    #[test]
    fn set_get_delete_round_trip() {
        let mut s = store();
        assert_eq!(s.get(7), None);
        s.set(7, b"hello");
        assert_eq!(s.get(7).as_deref(), Some(&b"hello"[..]));
        s.set(7, b"world!"); // replace, different length
        assert_eq!(s.get(7).as_deref(), Some(&b"world!"[..]));
        assert_eq!(s.len(), 1);
        assert!(s.delete(7));
        assert!(!s.delete(7));
        assert!(s.is_empty());
    }

    #[test]
    fn cas_token_discipline() {
        let mut s = store();
        assert_eq!(s.cas(1, 99, b"x"), CasOutcome::NotFound);
        s.set(1, b"first");
        let (v, tok) = s.gets(1).unwrap();
        assert_eq!(v, b"first");
        assert_eq!(s.cas(1, tok ^ 1, b"stale"), CasOutcome::Exists);
        assert_eq!(s.get(1).as_deref(), Some(&b"first"[..]));
        assert_eq!(s.cas(1, tok, b"second"), CasOutcome::Stored);
        assert_eq!(s.get(1).as_deref(), Some(&b"second"[..]));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
        // Length is part of the fingerprint, not just padded content.
        assert_ne!(fingerprint(b"a"), fingerprint(b"a\0"));
    }

    #[test]
    fn scan_on_ordered_backend_decodes() {
        let mut s = store();
        for k in [5u64, 1, 9, 3] {
            s.set(k, format!("v{k}").as_bytes());
        }
        let got = s.scan(2, 8).expect("btree is ordered");
        assert_eq!(
            got,
            vec![(3, b"v3".to_vec()), (5, b"v5".to_vec())],
            "decoded, ordered, bounded"
        );
    }

    #[test]
    fn hash_backend_reports_unordered() {
        let mut s = KvStore::open(Scheme::Slpmt, IndexKind::Hashtable, 16);
        s.set(1, b"x");
        assert!(s.scan(0, 10).is_none());
    }

    #[test]
    fn crash_recovery_round_trip() {
        let mut s = store();
        for k in 0..20u64 {
            s.set(k, &k.to_le_bytes());
        }
        for k in 0..10u64 {
            s.delete(k);
        }
        s.crash();
        s.recover();
        assert_eq!(s.len(), 10);
        for k in 10..20u64 {
            assert_eq!(s.peek_value(k).as_deref(), Some(&k.to_le_bytes()[..]));
        }
        s.check_invariants().unwrap();
        // The recovered store keeps serving.
        s.set(100, b"post-recovery");
        assert_eq!(s.get(100).as_deref(), Some(&b"post-recovery"[..]));
    }

    #[test]
    fn decode_clamps_corrupt_length() {
        // A fault-corrupted length prefix must not panic the decoder.
        let mut cell = vec![0u8; 24];
        cell[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(KvStore::decode(&cell).len(), 16);
        assert_eq!(KvStore::decode(&[1, 2, 3]), Vec::<u8>::new());
    }

    #[test]
    fn decode_cell_is_typed_and_unwrap_free() {
        // Round trip.
        let mut cell = vec![0u8; 24];
        cell[..8].copy_from_slice(&3u64.to_le_bytes());
        cell[8..11].copy_from_slice(b"abc");
        assert_eq!(KvStore::decode_cell(&cell), Ok(b"abc".to_vec()));
        // Salvage-scrubbed (all-zero) cell: a valid empty payload.
        assert_eq!(KvStore::decode_cell(&[0u8; 24]), Ok(Vec::new()));
        // Short cell (truncated below the prefix).
        assert_eq!(
            KvStore::decode_cell(&[1, 2, 3]),
            Err(CellError::Short { len: 3 })
        );
        assert_eq!(KvStore::decode_cell(&[]), Err(CellError::Short { len: 0 }));
        // Corrupt length prefix.
        let mut bad = vec![0u8; 24];
        bad[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            KvStore::decode_cell(&bad),
            Err(CellError::BadLength {
                claimed: u64::MAX,
                capacity: 16
            })
        );
        // Exactly-at-capacity prefix is fine.
        let mut full = vec![7u8; 16];
        full[..8].copy_from_slice(&8u64.to_le_bytes());
        assert_eq!(KvStore::decode_cell(&full), Ok(vec![7u8; 8]));
    }

    #[test]
    fn degraded_recovery_without_faults_is_ready_immediately() {
        let mut s = store();
        for k in 0..10u64 {
            s.set(k, &k.to_le_bytes());
        }
        s.crash();
        s.recover_degraded();
        assert_eq!(s.health(), HealthState::Ready);
        assert!(s.ready());
        assert_eq!(s.scrub_pending(), 0);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn scrub_step_drains_queue_and_restores_ready() {
        let mut s = store();
        s.set(1, b"x");
        s.crash();
        s.recover_degraded();
        // Simulate a degraded window by hand: queue two fake lines.
        s.scrub_queue = vec![0x1000, 0x2000];
        s.health = HealthState::Recovering;
        assert!(!s.ready());
        let before = s.now();
        assert_eq!(s.scrub_step(1), 1);
        assert!(!s.ready(), "one line still pending");
        assert_eq!(s.scrub_pending(), 1);
        assert_eq!(s.scrub_step(8), 1, "drains only what is queued");
        assert!(s.ready());
        assert_eq!(s.scrubbed(), 2);
        assert_eq!(
            s.now() - before,
            2 * SCRUB_CYCLES_PER_LINE,
            "scrub cost is deterministic"
        );
        assert_eq!(s.scrub_step(4), 0, "idempotent once drained");
    }

    /// Regression: a transaction whose commit is dropped by an armed
    /// crash must NOT apply its deferred frees. The rolled-back index
    /// still references the old value blob; if the heap model freed it,
    /// a post-recovery allocation hands the same address to another key
    /// and the two keys alias one blob.
    #[test]
    fn rolled_back_update_does_not_leak_its_old_blob_to_the_allocator() {
        let mut s = KvStore::open(Scheme::Slpmt, IndexKind::KvBtree, 16);
        s.prefault(64);
        let keys: Vec<u64> = (0..30u64).map(|i| 0x1000 + i * 7).collect();
        for (i, &k) in keys.iter().enumerate() {
            s.set(k, &[i as u8; 16]);
        }
        // Trip mid-way through the update of keys[5]: the new blob and
        // the commit record are dropped, so recovery rolls it back.
        for delta in 1..4u64 {
            let n = s.machine().persist_event_count();
            s.machine_mut().arm_crash_at_event(n + delta);
            s.set(keys[5], &[0xEE; 16]);
            assert!(s.machine().crash_tripped());
            s.crash();
            s.recover();
            assert_eq!(s.get(keys[5]).as_deref(), Some(&[5u8; 16][..]));
            // Keep serving: re-issue the lost update, then write a
            // different key. Before the fix the second write aliased
            // keys[5]'s blob and clobbered it.
            s.set(keys[5], &[0xEE; 16]);
            s.set(keys[20], &[0xAB; 16]);
            assert_eq!(s.get(keys[5]).as_deref(), Some(&[0xEE; 16][..]));
            assert_eq!(s.get(keys[20]).as_deref(), Some(&[0xAB; 16][..]));
            // Restore the baseline for the next delta.
            s.set(keys[5], &[5u8; 16]);
            s.set(keys[20], &[20u8; 16]);
        }
    }

    #[test]
    fn cell_size_floor() {
        let s = KvStore::open(Scheme::Slpmt, IndexKind::KvBtree, 0);
        assert_eq!(s.cell_size(), 16);
        let s = KvStore::open(Scheme::Slpmt, IndexKind::KvBtree, 9);
        assert_eq!(s.cell_size(), 24);
    }
}
