//! Crash-during-serve chaos harness: mid-request fault injection,
//! client retry/backoff, and degraded-mode online recovery.
//!
//! The service-boundary sweeps ([`crate::sweep`]) prove
//! committed-prefix durability for a request stream pushed through the
//! wire path. This module closes the loop the way a deployment would
//! experience it: the crash lands **while the service is serving
//! pipelined sessions**, and after the restart the *same clients* come
//! back and finish their work. One chaos point runs three phases:
//!
//! 1. **Serve until the crash.** Sessions pipeline the whole request
//!    stream; the worker drains them in arrival order. Every response
//!    flushed while the machine is still live advances that session's
//!    ack watermark in the [`AckJournal`]. A crash armed at persist
//!    event `k` (optionally with a media [`FaultPlan`]) cuts the run
//!    mid-dispatch: the tripped request's response is never flushed,
//!    so it stays un-acked.
//! 2. **Recover and pin the contract.** The durable prefix `b` is
//!    derived from the persisted commit markers. The pinned
//!    ack-durability contract is `acked ≤ b`: every response the
//!    client provably received must be durable — **zero lost acks**.
//!    Log replay must never panic; with no fault plan armed, torn or
//!    corrupt records and lost lines are failures outright; with a
//!    plan, every anomaly must trace to an injected knob (the
//!    engine-battery attribution rules). A loss-free image proceeds to
//!    structure rebuild (guarded: recovery-to-ready never panics), the
//!    recovered state is checked against the streaming oracle at `b`,
//!    and the degraded window opens over the flagged-line scrub queue.
//! 3. **Restart, retry, converge.** Sessions are rebuilt from their
//!    journaled watermarks ([`Session::rebuilt`]); the deterministic
//!    client re-encodes its stream and re-feeds the un-acked tail.
//!    While the store is [`Recovering`](crate::store::HealthState),
//!    reads serve but retried writes are refused with
//!    `SERVER_ERROR recovering`; the client backs off on the seeded
//!    capped-exponential [`RetryPolicy`] schedule (simulated cycles)
//!    while the background scrub drains. Retries inside the replay
//!    window go through [`dispatch_replay`], which
//!    duplicate-suppresses sets/cas via value comparison against the
//!    fingerprint-CAS-token state machine and answers deletes with the
//!    idempotent `NOT_FOUND`-means-already-done convention. The final
//!    state must match the oracle at the full trace length — zero
//!    duplicate-applied retries, nothing lost.
//!
//! The `poison_contract` knob deliberately corrupts the recovered
//! state before the mid-recovery check so the battery can prove its
//! own teeth (a checker that cannot fail is vacuous).
//!
//! Everything is driven by the simulated cycle clock — backoff waits,
//! scrub costs, latencies — so a chaos point is byte-identical for a
//! `(case, plan, k)` triple no matter how many host threads the sweep
//! fans across.

use crate::codec::{reply, Codec, Request};
use crate::service::{dispatch, encode_request, take_request, TokenModel};
use crate::session::{AckJournal, Session};
use crate::store::{CasOutcome, KvStore};
use crate::sweep::check_store;
use slpmt_core::SchemeKind;
use slpmt_pmem::FaultPlan;
use slpmt_trace::Event;
use slpmt_workloads::crashsweep::{sample_points, StreamingOracle};
use slpmt_workloads::ycsb::MixedOp;
use slpmt_workloads::{
    inspect, service_trace, session_of, IndexKind, KvRequest, MixSpec, RetryPolicy,
};
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Flagged lines the background scrub clears between served requests
/// (one batch per drained request keeps the window finite even under a
/// read-only retry tail).
pub const SCRUB_BATCH_PER_REQUEST: usize = 1;

/// Flagged lines scrubbed while a refused client sits out its backoff
/// wait (the scrub runs *concurrently* with the wait in wall-clock
/// terms; the simulation bills both).
pub const SCRUB_BATCH_PER_BACKOFF: usize = 4;

/// One chaos configuration: a service-boundary sweep case plus the
/// session topology the crash lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosCase {
    /// Simulated logging scheme.
    pub scheme: SchemeKind,
    /// Index backend behind the facade.
    pub kind: IndexKind,
    /// Trace seed.
    pub seed: u64,
    /// Load-phase inserts (part of the request stream).
    pub load: usize,
    /// Mixed requests after the load phase.
    pub requests: usize,
    /// Value payload size.
    pub value_size: usize,
    /// Request mix.
    pub mix: MixSpec,
    /// Client sessions (round-robin request assignment).
    pub sessions: usize,
    /// Per-core trace-ring capacity; 0 disables chaos-span tracing.
    pub trace_capacity: usize,
}

impl ChaosCase {
    /// A baseline case: 30 loaded keys + `requests` YCSB-A requests of
    /// 16-byte values across 4 pipelined sessions.
    pub fn new(scheme: impl Into<SchemeKind>, kind: IndexKind, seed: u64, requests: usize) -> Self {
        ChaosCase {
            scheme: scheme.into(),
            kind,
            seed,
            load: 30,
            requests,
            value_size: 16,
            mix: MixSpec::YCSB_A,
            sessions: 4,
            trace_capacity: 0,
        }
    }

    /// Same case with a different mix.
    pub fn with_mix(mut self, mix: MixSpec) -> Self {
        self.mix = mix;
        self
    }
}

impl fmt::Display for ChaosCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kv-chaos {} {} {} seed={} load={} reqs={} val={} sess={}",
            self.scheme,
            self.kind,
            self.mix,
            self.seed,
            self.load,
            self.requests,
            self.value_size,
            self.sessions
        )
    }
}

/// The case's deterministic service trace: mixed ops (the oracle's
/// input) and the mapped request stream, index-aligned.
pub fn chaos_ops(case: &ChaosCase) -> (Vec<MixedOp>, Vec<KvRequest>) {
    service_trace(
        case.load,
        case.requests,
        case.value_size,
        case.seed,
        &case.mix,
    )
}

fn build_store(case: &ChaosCase) -> KvStore {
    let mut store = KvStore::open(case.scheme, case.kind, case.value_size);
    store.prefault(case.load + case.requests);
    store
}

/// What one strict (loss-free) chaos point measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Responses flushed (acked) before the crash landed.
    pub acked: u64,
    /// Durable prefix length `b` at the crash point.
    pub durable: u64,
    /// Requests the rebuilt clients re-fed after the restart.
    pub retried: u64,
    /// Retried writes duplicate-suppressed in the replay window.
    pub suppressed: u64,
    /// Write refusals (`SERVER_ERROR recovering`) inside the degraded
    /// window, each followed by a seeded backoff wait.
    pub refused_writes: u64,
    /// Flagged lines the scrub cleared before the store went ready.
    pub scrubbed: u64,
}

/// One chaos point's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// Loss-free recovery: the full contract held end to end.
    Strict(ChaosReport),
    /// The injected faults cost lines the log could not rebuild. The
    /// loss was reported honestly and attributed to the plan; retry
    /// over a lossy image is out of contract (the engine-battery
    /// stop).
    Lossy {
        /// Lines reported lost by replay.
        lost: usize,
    },
}

/// Runs the case's request stream crash-free through the pipelined
/// session path, checks the decoded end state against the oracle, and
/// returns the persist-event count — the chaos domain is `1..=N`.
///
/// # Panics
///
/// Panics if the crash-free run already disagrees with the oracle.
pub fn count_chaos_events(case: &ChaosCase) -> u64 {
    match run_chaos_point(case, None, u64::MAX, false) {
        Ok(ChaosOutcome::Strict(_)) => {}
        other => panic!("{case}: crash-free chaos run failed: {other:?}"),
    }
    // The crash never trips at u64::MAX, so replaying the same path
    // without the arm gives the same event count; measure it directly.
    let (_ops, reqs) = chaos_ops(case);
    let mut store = build_store(case);
    let ordered = store.scan(0, 0).is_some();
    let codec = Codec::new(case.value_size);
    let sessions = case.sessions.max(1);
    let mut sess: Vec<Session> = (0..sessions as u32).map(Session::new).collect();
    let mut model = TokenModel::default();
    let mut wire = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        wire.clear();
        encode_request(req, &mut model, ordered, &mut wire);
        sess[session_of(i, sessions) as usize].feed(&wire);
    }
    for i in 0..reqs.len() {
        let s = session_of(i, sessions) as usize;
        let req = match take_request(&mut sess[s], &codec, i as u64) {
            Ok(Ok(req)) => req,
            other => panic!("{case}: generated stream must parse cleanly, got {other:?}"),
        };
        let mut out = std::mem::take(&mut sess[s].wbuf);
        dispatch(&mut store, &req, &mut out);
        sess[s].wbuf = out;
    }
    store.machine().persist_event_count()
}

/// Replays one request in the post-restart replay window, applying
/// duplicate suppression: the request may or may not have executed
/// before the crash, and either way the store must converge to
/// exactly-once state.
///
/// * `set` — if the key already holds the target value the write is
///   skipped (`STORED` without a transaction); otherwise it applies.
/// * `cas` — the token state machine does the work: a matching token
///   stores; a stale token whose *current value already equals the cas
///   target* means the pre-crash execution applied it (`STORED`,
///   suppressed); any other stale token answers `EXISTS` and leaves
///   state alone — a later replayed write owns the key.
/// * `delete` — a present key deletes; an absent key answers
///   `NOT_FOUND`, the idempotent already-done convention.
/// * reads dispatch normally.
///
/// Returns how many duplicates were suppressed (0 or 1).
pub fn dispatch_replay(store: &mut KvStore, req: &Request, out: &mut Vec<u8>) -> u64 {
    match req {
        Request::Set { key, value } => {
            if store.peek_value(*key).is_some_and(|cur| cur == *value) {
                Codec::write_line(out, reply::STORED);
                1
            } else {
                store.set(*key, value);
                Codec::write_line(out, reply::STORED);
                0
            }
        }
        Request::Cas { key, token, value } => match store.cas(*key, *token, value) {
            CasOutcome::Stored => {
                Codec::write_line(out, reply::STORED);
                0
            }
            CasOutcome::Exists => {
                if store.peek_value(*key).is_some_and(|cur| cur == *value) {
                    Codec::write_line(out, reply::STORED);
                    1
                } else {
                    Codec::write_line(out, reply::EXISTS);
                    0
                }
            }
            CasOutcome::NotFound => {
                Codec::write_line(out, reply::NOT_FOUND);
                0
            }
        },
        Request::Delete { key } => {
            if store.delete(*key) {
                Codec::write_line(out, reply::DELETED);
                0
            } else {
                Codec::write_line(out, reply::NOT_FOUND);
                1
            }
        }
        other => {
            dispatch(store, other, out);
            0
        }
    }
}

fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_string())
}

/// Deliberately corrupts the recovered state so the oracle check MUST
/// fail — the battery's non-vacuity probe.
fn poison_recovered_state(store: &mut KvStore, oracle: &StreamingOracle<'_>) {
    match oracle.iter().next() {
        Some((k, _)) => {
            store.delete(k);
        }
        None => store.set(u64::MAX ^ 0xBAD, b"poison"),
    }
}

/// Runs one chaos point: serve until the crash at persist event `k`
/// (with `plan` armed when given), recover, pin the ack-durability
/// contract, then restart the clients and drive the retry phase to
/// convergence through the degraded window.
///
/// # Errors
///
/// Returns a human-readable failure when any leg of the contract
/// breaks: an acked response is not durable, replay or rebuild panics,
/// an anomaly has no injected cause, the recovered or converged state
/// disagrees with the oracle, an invariant or leak check fails, or a
/// refused write exhausts its retry budget.
pub fn run_chaos_point(
    case: &ChaosCase,
    plan: Option<&FaultPlan>,
    k: u64,
    poison_contract: bool,
) -> Result<ChaosOutcome, String> {
    let (ops, reqs) = chaos_ops(case);
    let mut store = build_store(case);
    let ordered = store.scan(0, 0).is_some();
    let handle = (case.trace_capacity > 0).then(|| store.enable_tracing(case.trace_capacity));
    let tracing = handle.is_some() && store.machine().trace_enabled();
    if let Some(p) = plan {
        store.machine_mut().set_fault_plan(*p);
    }
    store.machine_mut().arm_crash_at_event(k);
    if tracing {
        if let Some(h) = &handle {
            h.borrow_mut()
                .emit_at(store.now(), Event::ChaosCrashArm { k });
        }
    }

    // Phase 1: pipelined ingestion, then serve until the crash trips.
    let codec = Codec::new(case.value_size);
    let sessions = case.sessions.max(1);
    let mut sess: Vec<Session> = (0..sessions as u32).map(Session::new).collect();
    let mut model = TokenModel::default();
    let mut wire = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        wire.clear();
        encode_request(req, &mut model, ordered, &mut wire);
        sess[session_of(i, sessions) as usize].feed(&wire);
    }
    let mut journal = AckJournal::new(sessions);
    let mut op_seq: Vec<u64> = Vec::with_capacity(reqs.len());
    let mut acked_global = 0usize;
    for (i, _) in reqs.iter().enumerate() {
        if store.machine().crash_tripped() {
            break;
        }
        let s = session_of(i, sessions) as usize;
        let req = match take_request(&mut sess[s], &codec, i as u64) {
            Ok(Ok(req)) => req,
            Ok(Err(line)) => return Err(format!("generated request {i} refused by codec: {line}")),
            Err(e) => return Err(format!("generated stream truncated: {e}")),
        };
        let mut out = std::mem::take(&mut sess[s].wbuf);
        dispatch(&mut store, &req, &mut out);
        sess[s].wbuf = out;
        op_seq.push(store.txn_seq());
        if store.machine().crash_tripped() {
            // The dispatch that tripped never flushed its response:
            // it stays un-acked, exactly the window the retry phase
            // must cover.
            break;
        }
        sess[s].ack_response();
        journal.record(sess[s].id(), sess[s].acked());
        acked_global = i + 1;
    }

    // Phase 2: crash, derive the durable prefix, pin the contract.
    store.crash();
    let marker = store.durable_commit_seq();
    let b = op_seq.iter().take_while(|&&seq| seq <= marker).count();
    if acked_global as u64 != journal.total() {
        return Err(format!(
            "ack journal total {} disagrees with acked prefix {acked_global}",
            journal.total()
        ));
    }
    // Zero lost acks: every flushed response must be durable.
    if acked_global > b {
        return Err(format!(
            "lost ack: {acked_global} responses flushed but only {b} requests durable \
             (marker seq {marker})"
        ));
    }
    // Log replay must never panic, whatever the media did.
    let report = match catch_unwind(AssertUnwindSafe(|| store.replay())) {
        Ok(r) => r,
        Err(p) => return Err(format!("log replay panicked: {}", panic_msg(p))),
    };
    // Anomalies must not appear out of thin air.
    let (tear_armed, flips_armed) = plan.map_or((false, 0), |p| (p.tear, p.flip_records));
    if !tear_armed && report.torn_records + report.torn_markers != 0 {
        return Err(format!(
            "{} torn records / {} torn markers without a tear in the plan",
            report.torn_records, report.torn_markers
        ));
    }
    if flips_armed == 0 && report.corrupt_records != 0 {
        return Err(format!(
            "{} corrupt records without a flip in the plan",
            report.corrupt_records
        ));
    }
    if !report.lost_lines.is_empty() {
        if plan.is_none() {
            return Err(format!(
                "{} lines lost with no fault plan armed",
                report.lost_lines.len()
            ));
        }
        // Every lost line must trace back to an injected fault.
        let tainted: BTreeSet<u64> = {
            let dev = store.machine().device();
            dev.fault_poisoned_lines()
                .iter()
                .chain(dev.fault_flipped_lines())
                .copied()
                .collect()
        };
        if let Some(stray) = report.lost_lines.iter().find(|l| !tainted.contains(l)) {
            return Err(format!(
                "line {stray:#x} reported lost but no injected fault touched it"
            ));
        }
        return Ok(ChaosOutcome::Lossy {
            lost: report.lost_lines.len(),
        });
    }
    // Loss-free: recovery-to-ready must never panic.
    let rebuilt = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
        store.rebuild();
        store
            .check_invariants()
            .map_err(|e| format!("invariant violated after recovery: {e}"))?;
        let reachable = store.reachable();
        if !inspect(store.context(), &reachable).is_clean() {
            return Err("allocations still leaked after facade GC".into());
        }
        Ok(())
    }));
    match rebuilt {
        Ok(r) => r?,
        Err(p) => return Err(format!("structure recovery panicked: {}", panic_msg(p))),
    }
    store.begin_degraded_window(&report);
    if tracing {
        if let Some(h) = &handle {
            h.borrow_mut().emit_at(
                store.now(),
                Event::DegradedBegin {
                    poisoned: store.scrub_pending() as u32,
                },
            );
        }
    }
    let mut oracle = StreamingOracle::new(&ops);
    oracle.advance_to(b);
    if poison_contract {
        poison_recovered_state(&mut store, &oracle);
    }
    check_store(&store, &oracle)
        .map_err(|e| format!("recovered state: {e} (b={b}, marker seq {marker})"))?;

    // Phase 3: rebuild the sessions from the journal, re-feed the
    // un-acked tail, retry through the degraded window to convergence.
    let mut sent = vec![0u64; sessions];
    for i in 0..reqs.len() {
        sent[session_of(i, sessions) as usize] += 1;
    }
    let mut rsess: Vec<Session> = (0..sessions as u32)
        .map(|s| Session::rebuilt(s, journal.watermark(s), sent[s as usize]))
        .collect();
    if tracing {
        if let Some(h) = &handle {
            h.borrow_mut().emit_at(
                store.now(),
                Event::ServiceRestart {
                    sessions: sessions as u32,
                    acked: journal.total(),
                },
            );
        }
    }
    // The client-side token model is deterministic, so re-encoding the
    // full stream reproduces the pre-crash wire bytes exactly; only
    // the un-acked tail is re-fed.
    let mut model = TokenModel::default();
    for (i, req) in reqs.iter().enumerate() {
        wire.clear();
        encode_request(req, &mut model, ordered, &mut wire);
        if i >= acked_global {
            rsess[session_of(i, sessions) as usize].feed(&wire);
        }
    }
    let policy = RetryPolicy::new(case.seed ^ 0xC4A0_5BAC);
    let (mut retried, mut suppressed, mut refused) = (0u64, 0u64, 0u64);
    for (i, orig) in reqs.iter().enumerate().skip(acked_global) {
        let s = session_of(i, sessions) as usize;
        let replaying = rsess[s].in_replay();
        let seq = rsess[s].next_seq();
        let req = match take_request(&mut rsess[s], &codec, i as u64) {
            Ok(Ok(req)) => req,
            Ok(Err(line)) => return Err(format!("retried request {i} refused by codec: {line}")),
            Err(e) => return Err(format!("retried stream truncated: {e}")),
        };
        // Background scrub interleaves with serving, one batch per
        // drained request, so the window closes even on a read tail.
        store.scrub_step(SCRUB_BATCH_PER_REQUEST);
        // Degraded window: reads serve, writes are refused until the
        // scrub queue drains. The client re-sends the identical bytes
        // after each seeded backoff wait, so re-dispatching the parsed
        // request is exact.
        if orig.is_write() {
            let mut attempt: u32 = 0;
            while !store.ready() {
                attempt += 1;
                if attempt > policy.max_attempts {
                    return Err(format!(
                        "request {i}: write still refused after {} attempts",
                        policy.max_attempts
                    ));
                }
                refused += 1;
                Codec::write_line(&mut rsess[s].wbuf, reply::SERVER_ERROR_RECOVERING);
                store.compute(policy.backoff(seq, attempt));
                store.scrub_step(SCRUB_BATCH_PER_BACKOFF);
            }
        }
        let mut out = std::mem::take(&mut rsess[s].wbuf);
        if replaying {
            suppressed += dispatch_replay(&mut store, &req, &mut out);
        } else {
            dispatch(&mut store, &req, &mut out);
        }
        rsess[s].wbuf = out;
        rsess[s].ack_response();
        journal.record(rsess[s].id(), rsess[s].acked());
        retried += 1;
    }
    // Drain any scrub residue (pure read tails may leave some), then
    // the converged state must match the oracle over the whole trace.
    while !store.ready() {
        store.scrub_step(8);
    }
    if tracing {
        if let Some(h) = &handle {
            h.borrow_mut().emit_at(
                store.now(),
                Event::DegradedEnd {
                    scrubbed: store.scrubbed() as u32,
                },
            );
        }
    }
    oracle.advance_to(ops.len());
    check_store(&store, &oracle)
        .map_err(|e| format!("converged state: {e} (acked={acked_global}, b={b})"))?;
    store
        .check_invariants()
        .map_err(|e| format!("invariant violated after retry convergence: {e}"))?;
    let reachable = store.reachable();
    if !inspect(store.context(), &reachable).is_clean() {
        return Err("allocations still leaked after retry convergence".into());
    }
    if journal.total() != reqs.len() as u64 {
        return Err(format!(
            "journal converged at {} acks, stream has {} requests",
            journal.total(),
            reqs.len()
        ));
    }
    Ok(ChaosOutcome::Strict(ChaosReport {
        acked: acked_global as u64,
        durable: b as u64,
        retried,
        suppressed,
        refused_writes: refused,
        scrubbed: store.scrubbed(),
    }))
}

/// [`run_chaos_point`] with a panic guard: any panic anywhere in the
/// serve/recover/retry path becomes a failure string tagged with the
/// point's coordinates.
pub fn check_chaos_point(
    case: &ChaosCase,
    plan: Option<&FaultPlan>,
    k: u64,
    poison_contract: bool,
) -> Result<ChaosOutcome, String> {
    let tag = |e: String| match plan {
        Some(p) => format!("{case} plan(seed={}) @k={k}: {e}", p.seed),
        None => format!("{case} @k={k}: {e}"),
    };
    match catch_unwind(AssertUnwindSafe(|| {
        run_chaos_point(case, plan, k, poison_contract)
    })) {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(e)) => Err(tag(e)),
        Err(p) => Err(tag(format!("panic: {}", panic_msg(p)))),
    }
}

/// Seeded sample of `count` distinct crash points in `1..=n`,
/// ascending.
pub fn chaos_points(case: &ChaosCase, n: u64, count: usize) -> Vec<u64> {
    sample_points(case.seed ^ 0xC4A0_57EE, n, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;
    use slpmt_workloads::faultsweep::default_plans;

    fn base(seed: u64, requests: usize) -> ChaosCase {
        ChaosCase::new(Scheme::Slpmt, IndexKind::KvBtree, seed, requests)
    }

    #[test]
    fn crash_free_chaos_run_matches_oracle() {
        let n = count_chaos_events(&base(11, 50));
        assert!(n > 0);
    }

    #[test]
    fn sampled_chaos_points_hold_the_contract() {
        let case = base(5, 40);
        let n = count_chaos_events(&case);
        for k in chaos_points(&case, n, 6) {
            match check_chaos_point(&case, None, k, false) {
                Ok(ChaosOutcome::Strict(r)) => {
                    assert!(r.acked <= r.durable, "ack-durability inverted");
                    assert_eq!(r.acked + r.retried, (case.load + case.requests) as u64);
                }
                Ok(ChaosOutcome::Lossy { .. }) => panic!("lossy without a fault plan"),
                Err(e) => panic!("{e}"),
            }
        }
    }

    #[test]
    fn chaos_point_with_fault_plan_attributes_or_converges() {
        let case = base(9, 36);
        let n = count_chaos_events(&case);
        let plans = default_plans(77);
        for k in [n / 3, 2 * n / 3] {
            if let Err(e) = check_chaos_point(&case, Some(&plans[1]), k.max(1), false) {
                panic!("{e}");
            }
        }
    }

    #[test]
    fn poisoned_contract_is_not_vacuous() {
        let case = base(5, 40);
        let n = count_chaos_events(&case);
        let k = n / 2;
        assert!(
            check_chaos_point(&case, None, k.max(1), true).is_err(),
            "deliberately corrupted state must fail the oracle check"
        );
    }

    #[test]
    fn replay_dispatch_suppresses_duplicates() {
        let mut store = KvStore::open(Scheme::Slpmt, IndexKind::KvBtree, 16);
        store.set(1, b"aaaa");
        let mut out = Vec::new();
        // Replayed set of the value already present: suppressed.
        let s = dispatch_replay(
            &mut store,
            &Request::Set {
                key: 1,
                value: b"aaaa".to_vec(),
            },
            &mut out,
        );
        assert_eq!(s, 1);
        // Replayed delete of an absent key: idempotent already-done.
        let s = dispatch_replay(&mut store, &Request::Delete { key: 42 }, &mut out);
        assert_eq!(s, 1);
        // A genuinely new set applies.
        let s = dispatch_replay(
            &mut store,
            &Request::Set {
                key: 2,
                value: b"bbbb".to_vec(),
            },
            &mut out,
        );
        assert_eq!(s, 0);
        assert_eq!(store.peek_value(2).as_deref(), Some(&b"bbbb"[..]));
    }

    #[test]
    fn chaos_points_are_ascending_and_seeded() {
        let case = base(5, 40);
        let pts = chaos_points(&case, 500, 16);
        assert_eq!(pts.len(), 16);
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(pts, chaos_points(&case, 500, 16));
    }

    #[test]
    fn chaos_spans_are_traced() {
        let mut case = base(5, 40);
        case.trace_capacity = 1 << 14;
        let n = count_chaos_events(&case);
        // A mid-stream crash exercises arm + restart spans; whether a
        // degraded window opens depends on the image, so only the
        // unconditional spans are asserted.
        let outcome = run_chaos_point(&case, None, n / 2, false);
        assert!(
            matches!(outcome, Ok(ChaosOutcome::Strict(_))),
            "{outcome:?}"
        );
    }
}
