//! Extension experiment (beyond the paper's YCSB-load evaluation):
//! mixed read/insert/update/remove workloads in the style of YCSB's
//! run phases. Selective logging's advantage shrinks as the read share
//! grows (reads create no logs to skip) and persists under removal
//! pressure (the Pattern 1 free case keeps the dying nodes' poison
//! stores free of logging and persistence). On nearly-pure-read mixes
//! lazy persistency can even cost a little: the deferred lines are
//! load-forced durable during the read phase, when eager persistence
//! would already have paid for them during loading — a trade-off the
//! paper's insert-only evaluation never exposes.

use slpmt_bench::{compare, geomean, header, ops_count, SEED};
use slpmt_core::{MachineConfig, Scheme};
use slpmt_workloads::runner::{run_mixed, IndexKind};
use slpmt_workloads::ycsb::ycsb_mixed_with_updates;
use slpmt_workloads::AnnotationSource;

fn main() {
    header(
        "Extension",
        "mixed YCSB-style workloads (read% / remove% / insert%)",
    );
    let n = ops_count();
    // (label, read%, update%, remove%) — the rest are fresh inserts.
    let mixes = [
        ("load (insert-only)", 0u8, 0u8, 0u8),
        ("write-heavy (30r/10d)", 30, 0, 10),
        ("YCSB-A (50r/50u)", 50, 50, 0),
        ("YCSB-B (95r/5u)", 95, 5, 0),
        ("read-heavy (90r/5d)", 90, 0, 5),
    ];
    println!(
        "{:<24} {:>10} {:>10} {:>10}   (SLPMT speedup over FG)",
        "mix", "hashtable", "rbtree", "kv-ctree"
    );
    let mut first_geo = 0.0;
    let mut last_geo = 0.0;
    for (i, (label, read_pct, update_pct, remove_pct)) in mixes.iter().enumerate() {
        let (load, ops) =
            ycsb_mixed_with_updates(n / 2, n, 64, SEED, *read_pct, *update_pct, *remove_pct);
        print!("{label:<24}");
        let mut speedups = Vec::new();
        for kind in [IndexKind::Hashtable, IndexKind::Rbtree, IndexKind::KvCtree] {
            let base = run_mixed(
                MachineConfig::for_scheme(Scheme::Fg),
                kind,
                &load,
                &ops,
                64,
                AnnotationSource::Manual,
                true,
            );
            let r = run_mixed(
                MachineConfig::for_scheme(Scheme::Slpmt),
                kind,
                &load,
                &ops,
                64,
                AnnotationSource::Manual,
                true,
            );
            let sp = r.speedup_vs(&base);
            speedups.push(sp);
            print!(" {sp:>9.2}x");
        }
        println!();
        let g = geomean(speedups);
        if i == 0 {
            first_geo = g;
        }
        last_geo = g;
    }
    println!();
    compare(
        "read-share trend",
        "advantage shrinks with read share",
        format!("{first_geo:.2}x at pure-insert → {last_geo:.2}x read-heavy"),
    );
}
