//! Figure 8 — kernel benchmarks: speedup over the FG baseline (left)
//! and PM write-traffic reduction (right), for FG+LG, FG+LZ, SLPMT,
//! ATOM and EDE.
//!
//! Paper headline numbers: SLPMT averages 1.57× over FG, 1.65× over
//! ATOM and 1.78× over EDE, with ~35 % average write-traffic
//! reduction; FG itself beats ATOM by 1.05× and EDE by 1.13×;
//! log-free and lazy complement each other (hashtable: +24 % and
//! +17 %, together +52 %).

use slpmt_bench::runner::{fig08_cells, run_matrix};
use slpmt_bench::{compare, geomean, header, workload};
use slpmt_core::Scheme;
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::AnnotationSource;

fn main() {
    header(
        "Figure 8",
        "kernel speedup (left) and write-traffic reduction (right)",
    );
    let ops = workload(256);
    let schemes = [
        Scheme::FgLg,
        Scheme::FgLz,
        Scheme::Slpmt,
        Scheme::Atom,
        Scheme::Ede,
    ];

    // All 24 cells (FG baseline + 5 schemes × 4 kernels) simulate in
    // parallel; the merge is deterministic, kind-major, FG first.
    let cells = fig08_cells(&IndexKind::KERNELS);
    let results = run_matrix(&cells, &ops, 256, AnnotationSource::Manual, None);
    let row = 1 + schemes.len();

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9}   (speedup over FG / traffic reduction)",
        "kernel", "FG+LG", "FG+LZ", "SLPMT", "ATOM", "EDE"
    );
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut slpmt_red = Vec::new();
    for (k, kind) in IndexKind::KERNELS.into_iter().enumerate() {
        let base = &results[k * row];
        print!("{:<10}", kind.to_string());
        for (i, s) in schemes.iter().enumerate() {
            let r = &results[k * row + 1 + i];
            let sp = r.speedup_vs(base);
            per_scheme[i].push(sp);
            if *s == Scheme::Slpmt {
                slpmt_red.push(r.traffic_reduction_vs(base));
            }
            print!(" {sp:>5.2}x");
            print!("/{:>+3.0}%", r.traffic_reduction_vs(base) * 100.0);
        }
        println!();
    }
    println!();
    let g = |i: usize| geomean(per_scheme[i].iter().copied());
    compare(
        "SLPMT speedup over FG",
        "1.57x avg",
        format!("{:.2}x geomean", g(2)),
    );
    compare(
        "SLPMT speedup over ATOM",
        "1.65x avg",
        format!("{:.2}x", g(2) / g(3)),
    );
    compare(
        "SLPMT speedup over EDE",
        "1.78x avg",
        format!("{:.2}x", g(2) / g(4)),
    );
    compare("FG over ATOM", "1.05x", format!("{:.2}x", 1.0 / g(3)));
    compare("FG over EDE", "1.13x", format!("{:.2}x", 1.0 / g(4)));
    compare(
        "SLPMT traffic reduction",
        "35% avg",
        format!(
            "{:.0}% avg",
            slpmt_red.iter().sum::<f64>() / slpmt_red.len() as f64 * 100.0
        ),
    );
    compare(
        "ATOM/EDE traffic",
        "above baseline (negative)",
        "negative reductions above".into(),
    );
}
