//! Table I (`store`/`storeT` bit semantics), Figure 4 (persist
//! ordering) and §III-D (hardware overhead): checked mechanically and
//! printed for the record.

use slpmt_cache::CacheConfig;
use slpmt_core::{HardwareOverhead, Machine, MachineConfig, Scheme, StoreKind};
use slpmt_pmem::PmAddr;

fn main() {
    slpmt_bench::header("Table I", "storeT persist/log-bit semantics");
    println!(
        "{:<34} {:>11} {:>8}",
        "instruction", "persist bit", "log bit"
    );
    let rows = [
        (StoreKind::Store, "store"),
        (
            StoreKind::StoreT {
                lazy: false,
                log_free: false,
            },
            "storeT lazy=0 log-free=0",
        ),
        (StoreKind::log_free(), "storeT lazy=0 log-free=1"),
        (StoreKind::lazy_log_free(), "storeT lazy=1 log-free=1"),
        (StoreKind::lazy_logged(), "storeT lazy=1 log-free=0"),
    ];
    let expected = [
        (true, true),
        (true, true),
        (true, false),
        (false, false),
        (false, true),
    ];
    for ((kind, name), (p, l)) in rows.iter().zip(expected) {
        let e = kind.effects(true, true);
        assert_eq!(
            (e.set_persist, e.set_log),
            (p, l),
            "Table I violated for {name}"
        );
        println!(
            "{name:<34} {:>11} {:>8}",
            e.set_persist as u8, e.set_log as u8
        );
    }
    println!("all five rows match Table I");

    slpmt_bench::header(
        "Figure 4",
        "undo ordering: logs persist before logged lines",
    );
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
    let a = PmAddr::new(0x10000);
    m.tx_begin();
    m.store_u64(a, 1, StoreKind::Store); // logged line
    m.store_u64(a.add(64), 2, StoreKind::log_free()); // log-free line
    m.tx_commit();
    let t = m.device().traffic();
    assert!(t.log_records >= 1 && t.data_lines == 2);
    assert!(m.device().log().max_committed_seq() >= 1);
    println!(
        "one committed txn: {} log records, {} data lines, marker after data — ordering held",
        t.log_records, t.data_lines
    );

    slpmt_bench::header("§III-D", "hardware overhead budget");
    let oh = HardwareOverhead::for_config(&CacheConfig::default());
    slpmt_bench::compare(
        "cache metadata",
        "~3.9 KB",
        format!(
            "{:.1} KB (L1 {} b/line, L2 {} b/line)",
            oh.cache_meta_bytes as f64 / 1024.0,
            oh.l1_bits_per_line,
            oh.l2_bits_per_line
        ),
    );
    slpmt_bench::compare("log buffer", "1.2 KB", format!("{} B", oh.log_buffer_bytes));
    slpmt_bench::compare(
        "signatures",
        "1.0 KB",
        format!("{} B (4 × 2048 bit)", oh.signature_bytes),
    );
    slpmt_bench::compare(
        "total",
        "6.1 KB",
        format!("{:.1} KB", oh.total_bytes() as f64 / 1024.0),
    );
    let mixed = oh.cache_meta_bytes;
    let naive = HardwareOverhead::naive_uniform_l2_bytes(&CacheConfig::default());
    slpmt_bench::compare(
        "mixed-granularity L2 saving",
        "75% of L2 log bits",
        format!("{mixed} B vs naive {naive} B"),
    );
}
