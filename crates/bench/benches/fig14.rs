//! Figure 14 — the PMDK-style KV store with btree/ctree/rtree index
//! backends, compiler-annotated (§VI-A), at 256-byte (left) and
//! 16-byte (right) values.
//!
//! Paper: at 256 B SLPMT gains 1.35–1.87× over EDE and 1.4–2× over
//! ATOM, reducing baseline write traffic by 32.6–47.6 %; kv-rtree has
//! the largest traffic reduction but kv-ctree the largest speedup
//! (rtree spends more time computing). At 16 B SLPMT still beats EDE
//! and ATOM by 1.35× and 1.58× on average, with fine-grain logging
//! contributing most and log-free + lazy adding ~26 % on top.

use slpmt_bench::runner::{matrix, run_matrix};
use slpmt_bench::{compare, geomean, header, workload};
use slpmt_core::Scheme;
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::AnnotationSource;

fn main() {
    for (vs, label, atom_paper, ede_paper, red_paper) in [
        (
            256usize,
            "left: 256 B values",
            "1.4x–2x",
            "1.35x–1.87x",
            "32.6%–47.6%",
        ),
        (
            16usize,
            "right: 16 B values",
            "1.58x avg",
            "1.35x avg",
            "(fine-grain dominates)",
        ),
    ] {
        header("Figure 14", label);
        let ops = workload(vs);
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>10}",
            "backend", "vs FG", "vs ATOM", "vs EDE", "red. vs FG"
        );
        let mut vs_atom = Vec::new();
        let mut vs_ede = Vec::new();
        let mut reds = Vec::new();
        let mut speedups = Vec::new();
        // 12 cells (4 schemes × 3 backends) simulate in parallel with
        // a deterministic kind-major merge.
        let schemes = [Scheme::Fg, Scheme::Slpmt, Scheme::Atom, Scheme::Ede];
        let cells = matrix(&schemes, &IndexKind::PMKV);
        let results = run_matrix(&cells, &ops, vs, AnnotationSource::Compiler, None);
        for (k, kind) in IndexKind::PMKV.into_iter().enumerate() {
            let row = &results[k * schemes.len()..(k + 1) * schemes.len()];
            let (base, s, a, e) = (&row[0], &row[1], &row[2], &row[3]);
            let sa = a.cycles as f64 / s.cycles as f64;
            let se = e.cycles as f64 / s.cycles as f64;
            let red = s.traffic_reduction_vs(base);
            vs_atom.push(sa);
            vs_ede.push(se);
            reds.push((kind, red));
            speedups.push((kind, s.speedup_vs(base)));
            println!(
                "{:<10} {:>8.2}x {:>8.2}x {:>8.2}x {:>9.1}%",
                kind.to_string(),
                s.speedup_vs(base),
                sa,
                se,
                red * 100.0
            );
        }
        println!();
        compare(
            "SLPMT over ATOM",
            atom_paper,
            format!("{:.2}x geomean", geomean(vs_atom)),
        );
        compare(
            "SLPMT over EDE",
            ede_paper,
            format!("{:.2}x geomean", geomean(vs_ede)),
        );
        compare(
            "traffic reduction",
            red_paper,
            reds.iter()
                .map(|(k, r)| format!("{k} {:.1}%", r * 100.0))
                .collect::<Vec<_>>()
                .join(", ")
                .to_string(),
        );
        if vs == 256 {
            let max_red = reds.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
            let max_sp = speedups
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap()
                .0;
            compare(
                "largest reduction / speedup",
                "kv-rtree / kv-ctree",
                format!("{max_red} / {max_sp}"),
            );
        }
    }
}
