//! Figure 9 — SLPMT restricted to cache-line-granularity logging:
//! selective logging still pays without fine-grain records.
//!
//! Paper: SLPMT-CL gains 1.27× over the line-granularity baseline
//! (FG-CL), which itself incurs ~15 % more write traffic than the
//! word-granularity design.

use slpmt_bench::{compare, geomean, header, run, workload};
use slpmt_core::Scheme;
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::AnnotationSource;

fn main() {
    header(
        "Figure 9",
        "line-granularity variants: speedup and traffic vs FG-CL",
    );
    let ops = workload(256);
    println!(
        "{:<10} {:>14} {:>14} {:>22}",
        "kernel", "SLPMT-CL", "traffic red.", "FG-CL extra vs FG"
    );
    let mut speedups = Vec::new();
    let mut extra = Vec::new();
    for kind in IndexKind::KERNELS {
        let fg = run(Scheme::Fg, kind, &ops, 256, AnnotationSource::Manual);
        let fg_cl = run(Scheme::FgCl, kind, &ops, 256, AnnotationSource::Manual);
        let slpmt_cl = run(Scheme::SlpmtCl, kind, &ops, 256, AnnotationSource::Manual);
        let sp = slpmt_cl.speedup_vs(&fg_cl);
        let red = slpmt_cl.traffic_reduction_vs(&fg_cl);
        let ex = fg_cl.traffic.media_bytes() as f64 / fg.traffic.media_bytes() as f64 - 1.0;
        speedups.push(sp);
        extra.push(ex);
        println!(
            "{:<10} {:>12.2}x {:>13.0}% {:>21.0}%",
            kind.to_string(),
            sp,
            red * 100.0,
            ex * 100.0
        );
    }
    println!();
    compare(
        "SLPMT-CL over FG-CL",
        "1.27x avg",
        format!("{:.2}x geomean", geomean(speedups)),
    );
    compare(
        "line-granularity traffic cost",
        "+15% without features",
        format!(
            "{:+.0}% avg",
            extra.iter().sum::<f64>() / extra.len() as f64 * 100.0
        ),
    );
}
