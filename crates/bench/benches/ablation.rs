//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Speculative logging** (§III-B1): disabling the eviction-time
//!    group fill shows the duplicate-logging cost it avoids.
//! 2. **Log path**: the four-tier coalescing buffer vs ATOM's line
//!    records vs EDE's bufferless per-word records, isolated as log
//!    bytes on one workload.
//! 3. **§V-A in-place update optimisation**: lazy+logged data plus an
//!    eager log-free sequential record array, versus conventional
//!    eager undo.
//! 4. **WPQ drain banks**: how medium parallelism shifts the regime
//!    from throughput-bound to burst-stall-bound.

use slpmt_bench::runner::par_map;
use slpmt_bench::{compare, header, workload};
use slpmt_core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt_pmem::PmAddr;
use slpmt_workloads::runner::{run_inserts_with, IndexKind};
use slpmt_workloads::AnnotationSource;

fn main() {
    let ops = workload(256);

    header("Ablation 1", "speculative logging (§III-B1)");
    let run_spec = |on: bool| {
        let mut cfg = MachineConfig::for_scheme(Scheme::Slpmt).with_tiny_caches();
        cfg.features.speculative_logging = on;
        let r = run_inserts_with(
            cfg,
            IndexKind::Rbtree,
            &ops,
            256,
            AnnotationSource::Manual,
            false,
        );
        (r.stats.log_records_created, r.traffic.log_bytes)
    };
    let (rec_on, bytes_on) = run_spec(true);
    let (rec_off, bytes_off) = run_spec(false);
    compare(
        "records created (tiny caches)",
        "trade-off: fills vs re-log dedup",
        format!("{rec_on} with vs {rec_off} without ({bytes_on} vs {bytes_off} log B)"),
    );
    println!("speculative fills create extra records at eviction so the L2");
    println!("group bits survive; the payoff is avoiding duplicate logging");
    println!("when evicted lines are re-stored (coalesced into the same packs).");

    header(
        "Ablation 2",
        "log path: tiered buffer vs ATOM lines vs EDE direct",
    );
    let paths = [
        ("tiered (FG)", Scheme::Fg),
        ("ATOM lines", Scheme::Atom),
        ("EDE direct", Scheme::Ede),
    ];
    let path_runs = par_map(&paths, |&(_, scheme)| {
        run_inserts_with(
            MachineConfig::for_scheme(scheme),
            IndexKind::Rbtree,
            &ops,
            256,
            AnnotationSource::None,
            false,
        )
    });
    for ((name, _), r) in paths.iter().zip(&path_runs) {
        println!(
            "{name:<14} {:>9} log records, {:>9} log B, {:>7} media lines",
            r.traffic.log_records, r.traffic.log_bytes, r.traffic.wpq_lines
        );
    }

    header("Ablation 3", "§V-A in-place update optimisation");
    // Conventional: N random in-place updates, each logged and
    // persisted eagerly at commit.
    let updates: Vec<PmAddr> = (0..256u64)
        .map(|i| PmAddr::new(0x10000 + (i * 7 % 256) * 64))
        .collect();
    let conventional = {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        m.tx_begin();
        for (i, &a) in updates.iter().enumerate() {
            m.store_u64(a, i as u64, StoreKind::Store);
        }
        m.tx_commit();
        (m.now(), m.device().traffic().media_bytes())
    };
    // §V-A: update the data with lazily-persistent-but-logged storeT
    // and append a log-free record of the new value to a sequential
    // array persisted at commit — random writes leave the critical
    // path, the sequential array persists fast.
    let optimized = {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        let array = PmAddr::new(0x80000);
        m.tx_begin();
        for (i, &a) in updates.iter().enumerate() {
            m.store_u64(a, i as u64, StoreKind::lazy_logged());
            // record = (addr, value), appended sequentially.
            m.store_u64(array.add(i as u64 * 16), a.raw(), StoreKind::log_free());
            m.store_u64(
                array.add(i as u64 * 16 + 8),
                i as u64,
                StoreKind::log_free(),
            );
        }
        m.tx_commit();
        (m.now(), m.device().traffic().media_bytes())
    };
    compare(
        "commit-path cycles",
        "random writes leave critical path",
        format!("{} eager vs {} optimised", conventional.0, optimized.0),
    );
    compare(
        "media bytes at commit",
        "sequential redo array instead of random lines",
        format!("{} vs {}", conventional.1, optimized.1),
    );

    header("Ablation 4", "WPQ drain banks (medium parallelism)");
    // Recreate the device-level experiment by scaling write latency
    // inversely — one bank at 500 ns equals the serial model; more
    // banks approach latency-bound behaviour. All 8 cells (FG + SLPMT
    // per bank count) simulate in parallel.
    let bank_cells: Vec<(usize, Scheme)> = [1usize, 2, 4, 8]
        .into_iter()
        .flat_map(|banks| [(banks, Scheme::Fg), (banks, Scheme::Slpmt)])
        .collect();
    let bank_runs = par_map(&bank_cells, |&(banks, scheme)| {
        let mut cfg = MachineConfig::for_scheme(scheme);
        // The WPQ uses DEFAULT_DRAIN_BANKS; emulate bank count by
        // scaling the per-line drain latency.
        let eff_ns = 500 * slpmt_pmem::wpq::DEFAULT_DRAIN_BANKS as u64 / banks as u64;
        cfg.pm = cfg.pm.with_write_latency_ns(eff_ns);
        run_inserts_with(
            cfg,
            IndexKind::Hashtable,
            &ops,
            256,
            AnnotationSource::Manual,
            false,
        )
    });
    for (cells, pair) in bank_cells.chunks_exact(2).zip(bank_runs.chunks_exact(2)) {
        let banks = cells[0].0;
        let (base, r) = (&pair[0], &pair[1]);
        println!(
            "{banks} bank(s) equivalent: SLPMT {:.2}x over FG (hashtable)",
            r.speedup_vs(base)
        );
    }
}
