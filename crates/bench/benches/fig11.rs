//! Figure 11 — write-traffic reduction sensitivity to the value size.
//!
//! Paper: with large values, storing and logging the value dominates,
//! so SLPMT's reduction grows roughly linearly with the value size;
//! from 16 to 32 bytes the reduction is mostly flat because pointer
//! and counter updates dominate small-value inserts.

use slpmt_bench::{compare, header, run, workload};
use slpmt_core::Scheme;
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::AnnotationSource;

const SIZES: [usize; 5] = [16, 32, 64, 128, 256];

fn main() {
    header("Figure 11", "SLPMT write-traffic reduction vs value size");
    print!("{:<10}", "kernel");
    for vs in SIZES {
        print!(" {vs:>6}B");
    }
    println!();
    let mut small_delta = Vec::new();
    let mut large_delta = Vec::new();
    for kind in IndexKind::KERNELS {
        print!("{:<10}", kind.to_string());
        let mut series = Vec::new();
        for vs in SIZES {
            let ops = workload(vs);
            let base = run(Scheme::Fg, kind, &ops, vs, AnnotationSource::Manual);
            let r = run(Scheme::Slpmt, kind, &ops, vs, AnnotationSource::Manual);
            let red = r.traffic_reduction_vs(&base);
            series.push(red);
            print!(" {:>6.1}%", red * 100.0);
        }
        println!();
        small_delta.push(series[1] - series[0]); // 16 → 32
        large_delta.push(series[4] - series[3]); // 128 → 256
    }
    println!();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    compare(
        "16→32 B change",
        "mostly constant",
        format!("{:+.1} pp avg", avg(&small_delta) * 100.0),
    );
    compare(
        "128→256 B change",
        "keeps growing (≈ linear in size)",
        format!("{:+.1} pp avg", avg(&large_delta) * 100.0),
    );
}
