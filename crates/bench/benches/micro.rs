//! Microbenchmarks of the core hardware structures: the tiered log
//! buffer's insert/coalesce path, the working-set signature, the WPQ
//! timing model, and the machine's store path.
//!
//! Plain `Instant`-based timing (criterion is unavailable offline):
//! each benchmark runs a warmup, then reports the mean per-iteration
//! wall time over a fixed batch.

use slpmt_core::{Machine, MachineConfig, Scheme, Signature, StoreKind};
use slpmt_logbuf::{LogRecord, TieredLogBuffer};
use slpmt_pmem::{PmAddr, WritePendingQueue};
use std::hint::black_box;
use std::time::Instant;

fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    for _ in 0..iters / 10 {
        f(); // warmup
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    println!(
        "{name:32} {:>12.1} ns/iter  ({iters} iters)",
        total.as_nanos() as f64 / iters as f64
    );
}

fn bench_logbuf() {
    bench("tiered_buffer_coalesce_line", 100_000, || {
        let mut buf = TieredLogBuffer::new();
        for w in 0..8u64 {
            let rec = LogRecord::new(1, PmAddr::new(w * 8), &[w as u8; 8]);
            black_box(buf.insert(rec));
        }
        black_box(buf.drain_all());
    });
}

fn bench_signature() {
    let mut sig = Signature::new();
    for i in 0..64u64 {
        sig.insert(PmAddr::new(i * 64));
    }
    let mut i = 0u64;
    bench("signature_lookup", 1_000_000, || {
        i = i.wrapping_add(64);
        black_box(sig.maybe_contains(PmAddr::new(i)));
    });
}

fn bench_wpq() {
    bench("wpq_push_burst", 100_000, || {
        let mut q = WritePendingQueue::new(8, 1000, 8);
        let mut t = 0;
        for _ in 0..64 {
            t = q.push(t).accepted_at;
        }
        black_box(t);
    });
}

fn bench_machine_store() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
    let mut i = 0u64;
    bench("machine_txn_8_stores", 50_000, || {
        i += 1;
        m.tx_begin();
        for w in 0..8u64 {
            m.store_u64(
                PmAddr::new(0x10000 + ((i * 8 + w) % 4096) * 8),
                i,
                StoreKind::Store,
            );
        }
        m.tx_commit();
        black_box(m.now());
    });
}

fn main() {
    bench_logbuf();
    bench_signature();
    bench_wpq();
    bench_machine_store();
}
