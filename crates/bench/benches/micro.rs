//! Criterion microbenchmarks of the core hardware structures: the
//! tiered log buffer's insert/coalesce path, the working-set
//! signature, the WPQ timing model, and the machine's store path.

use criterion::{criterion_group, criterion_main, Criterion};
use slpmt_core::{Machine, MachineConfig, Scheme, Signature, StoreKind};
use slpmt_logbuf::{LogRecord, TieredLogBuffer};
use slpmt_pmem::{PmAddr, WritePendingQueue};
use std::hint::black_box;

fn bench_logbuf(c: &mut Criterion) {
    c.bench_function("tiered_buffer_coalesce_line", |b| {
        b.iter(|| {
            let mut buf = TieredLogBuffer::new();
            for w in 0..8u64 {
                let rec = LogRecord::new(1, PmAddr::new(w * 8), vec![w as u8; 8]);
                black_box(buf.insert(rec));
            }
            black_box(buf.drain_all())
        })
    });
}

fn bench_signature(c: &mut Criterion) {
    let mut sig = Signature::new();
    for i in 0..64u64 {
        sig.insert(PmAddr::new(i * 64));
    }
    c.bench_function("signature_lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(64);
            black_box(sig.maybe_contains(PmAddr::new(i)))
        })
    });
}

fn bench_wpq(c: &mut Criterion) {
    c.bench_function("wpq_push_burst", |b| {
        b.iter(|| {
            let mut q = WritePendingQueue::new(8, 1000, 8);
            let mut t = 0;
            for _ in 0..64 {
                t = q.push(t).accepted_at;
            }
            black_box(t)
        })
    });
}

fn bench_machine_store(c: &mut Criterion) {
    c.bench_function("machine_txn_8_stores", |b| {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.tx_begin();
            for w in 0..8u64 {
                m.store_u64(
                    PmAddr::new(0x10000 + ((i * 8 + w) % 4096) * 8),
                    i,
                    StoreKind::Store,
                );
            }
            m.tx_commit();
            black_box(m.now())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_logbuf, bench_signature, bench_wpq, bench_machine_store
);
criterion_main!(benches);
