//! `sim_throughput` — self-benchmark of the **simulator itself**:
//! wall-clock simulated operations per second, not simulated cycles.
//!
//! Future performance work regresses against these numbers. Two
//! sections:
//!
//! 1. **Hot path**: single-cell insert throughput per scheme — the
//!    store → log-buffer → WPQ → log-region pipeline this PR made
//!    allocation-free.
//! 2. **Matrix fan-out**: the full Figure-8 scheme matrix, serial
//!    (1 worker) vs parallel (`threads()` workers), with a check that
//!    the merged results are identical.
//!
//! `SLPMT_OPS` scales the workload (default 1000).

use slpmt_bench::runner::{fig08_cells, par_map_with, run_matrix_with, threads};
use slpmt_bench::{compare, header, ops_count, workload};
use slpmt_core::{MachineConfig, Scheme};
use slpmt_workloads::runner::{run_inserts_with, IndexKind};
use slpmt_workloads::AnnotationSource;
use std::time::Instant;

fn main() {
    let ops = workload(256);

    header(
        "sim_throughput",
        "wall-clock simulator throughput (host ops/sec)",
    );

    println!("-- hot path: {} hashtable inserts per cell --", ops.len());
    for scheme in [Scheme::Fg, Scheme::Slpmt, Scheme::Atom, Scheme::Ede] {
        // Warm up once (page-directory materialization, code paths),
        // then time a fresh run.
        let cell = || {
            run_inserts_with(
                MachineConfig::for_scheme(scheme),
                IndexKind::Hashtable,
                &ops,
                256,
                AnnotationSource::Manual,
                false,
            )
        };
        cell();
        let start = Instant::now();
        let r = cell();
        let dt = start.elapsed().as_secs_f64();
        println!(
            "{:<8} {:>10.0} sim-ops/s  ({:>6.1} Msim-cycles/s, {:.3}s wall)",
            scheme.to_string(),
            ops.len() as f64 / dt,
            r.cycles as f64 / dt / 1e6,
            dt,
        );
    }

    println!();
    println!("-- matrix fan-out: full Figure-8 scheme matrix --");
    let cells = fig08_cells(&IndexKind::KERNELS);
    let run_with = |workers: usize| {
        let start = Instant::now();
        let results = run_matrix_with(&cells, workers, &ops, 256, AnnotationSource::Manual, None);
        (results, start.elapsed().as_secs_f64())
    };
    let (serial, t_serial) = run_with(1);
    let workers = threads();
    let (parallel, t_parallel) = run_with(workers);
    let identical = serial.len() == parallel.len()
        && serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.cycles == b.cycles && a.traffic == b.traffic);
    println!(
        "{} cells: serial {t_serial:.2}s, {workers} worker(s) {t_parallel:.2}s \
         ({:.2}x), merged results {}",
        cells.len(),
        t_serial / t_parallel,
        if identical { "identical" } else { "DIVERGED" },
    );
    assert!(identical, "parallel matrix must merge deterministically");
    compare(
        "matrix wall-clock speedup",
        ">=3x on >=4 cores",
        format!("{:.2}x with {workers} worker(s)", t_serial / t_parallel),
    );

    println!();
    println!("-- scaling: matrix wall-clock vs worker count --");
    let counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&n| n <= workers.max(1))
        .collect();
    for &n in &counts {
        // par_map_with re-runs the same matrix at a fixed worker count.
        let start = Instant::now();
        let _ = par_map_with(&cells, n, |c| {
            run_inserts_with(
                MachineConfig::for_kind(c.scheme),
                c.kind,
                &ops,
                256,
                AnnotationSource::Manual,
                false,
            )
        });
        let dt = start.elapsed().as_secs_f64();
        println!(
            "{n:>2} worker(s): {dt:.2}s  ({:.0} sim-ops/s aggregate)",
            cells.len() as f64 * ops_count() as f64 / dt
        );
    }
}
