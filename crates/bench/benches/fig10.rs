//! Figure 10 — SLPMT speedup sensitivity to the value size.
//!
//! Paper: SLPMT still accelerates the baseline by 1.22× on average at
//! 16-byte values, and every benchmark gains more as values grow
//! (more log-free variables per insert).

use slpmt_bench::{compare, geomean, header, run, workload};
use slpmt_core::Scheme;
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::AnnotationSource;

const SIZES: [usize; 5] = [16, 32, 64, 128, 256];

fn main() {
    header("Figure 10", "SLPMT speedup over FG vs value size");
    print!("{:<10}", "kernel");
    for vs in SIZES {
        print!(" {vs:>6}B");
    }
    println!();
    let mut at16 = Vec::new();
    for kind in IndexKind::KERNELS {
        print!("{:<10}", kind.to_string());
        let mut prev = 0.0;
        let mut monotone = true;
        for vs in SIZES {
            let ops = workload(vs);
            let base = run(Scheme::Fg, kind, &ops, vs, AnnotationSource::Manual);
            let r = run(Scheme::Slpmt, kind, &ops, vs, AnnotationSource::Manual);
            let sp = r.speedup_vs(&base);
            if vs == 16 {
                at16.push(sp);
            }
            monotone &= sp + 0.03 >= prev;
            prev = sp;
            print!(" {sp:>6.2}x");
        }
        println!(
            "{}",
            if monotone {
                "   (grows with value size)"
            } else {
                "   (non-monotone!)"
            }
        );
    }
    println!();
    compare(
        "speedup at 16 B values",
        "1.22x avg",
        format!("{:.2}x geomean", geomean(at16)),
    );
    compare(
        "trend",
        "gains grow with value size",
        "see rows above".into(),
    );
}
