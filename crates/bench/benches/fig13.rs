//! Figure 13 — effectiveness and cost of the compiler pass.
//!
//! Left: compiler-inserted annotations achieve speedups similar to the
//! manual ones; across the kernels the paper's pass identifies 16 of
//! the 26 manually annotated variables (it finds the allocation
//! pattern and a few lazy pointers such as the rbtree parent, but
//! misses deep-semantics variables like colours and counters).
//! Right: the analysis adds marginal compile time (≤ 1.23×, < 0.15 s
//! absolute).

use slpmt_bench::{compare, geomean, header, run, workload};
use slpmt_core::Scheme;
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::AnnotationSource;
use std::time::Instant;

fn kernel_ir(kind: IndexKind) -> slpmt_annotate::TxnIr {
    match kind {
        IndexKind::Hashtable => slpmt_workloads::hashtable::Hashtable::ir(),
        IndexKind::Rbtree => slpmt_workloads::rbtree::Rbtree::ir(),
        IndexKind::Heap => slpmt_workloads::heap::MaxHeap::ir(),
        IndexKind::Avl => slpmt_workloads::avl::AvlTree::ir(),
        _ => unreachable!("kernels only"),
    }
}

fn kernel_manual(kind: IndexKind) -> slpmt_annotate::AnnotationTable {
    match kind {
        IndexKind::Hashtable => slpmt_workloads::hashtable::Hashtable::manual_table(),
        IndexKind::Rbtree => slpmt_workloads::rbtree::Rbtree::manual_table(),
        IndexKind::Heap => slpmt_workloads::heap::MaxHeap::manual_table(),
        IndexKind::Avl => slpmt_workloads::avl::AvlTree::manual_table(),
        _ => unreachable!("kernels only"),
    }
}

fn main() {
    header(
        "Figure 13 (left)",
        "compiler vs manual annotation speedups over FG",
    );
    let ops = workload(256);
    println!("{:<10} {:>9} {:>9}", "kernel", "manual", "compiler");
    let mut manual_sp = Vec::new();
    let mut compiler_sp = Vec::new();
    let mut found = 0;
    let mut exact = 0;
    let mut total = 0;
    for kind in IndexKind::KERNELS {
        let base = run(Scheme::Fg, kind, &ops, 256, AnnotationSource::Manual);
        let m = run(Scheme::Slpmt, kind, &ops, 256, AnnotationSource::Manual);
        let c = run(Scheme::Slpmt, kind, &ops, 256, AnnotationSource::Compiler);
        manual_sp.push(m.speedup_vs(&base));
        compiler_sp.push(c.speedup_vs(&base));
        println!(
            "{:<10} {:>8.2}x {:>8.2}x",
            kind.to_string(),
            m.speedup_vs(&base),
            c.speedup_vs(&base)
        );
        let (table, _) = slpmt_annotate::analyze(&kernel_ir(kind));
        let report = table.compare_to_manual(&kernel_manual(kind));
        found += report.found;
        exact += report.exact;
        total += report.total_manual;
    }
    println!();
    compare(
        "compiler vs manual speedup",
        "similar",
        format!(
            "{:.2}x vs {:.2}x geomean",
            geomean(compiler_sp),
            geomean(manual_sp)
        ),
    );
    compare(
        "annotations identified",
        "16 of 26 variables",
        format!("{found} of {total} sites annotated ({exact} with the identical form)"),
    );

    header("Figure 13 (right)", "compile-time overhead of the analysis");
    const REPS: usize = 20_000;
    // Baseline compilation = front-end work (IR construction from the
    // source description + SSA validation); the optimised build runs
    // the Pattern 1/2 analyses on top.
    let t0 = Instant::now();
    for _ in 0..REPS {
        for &k in &IndexKind::KERNELS {
            let ir = kernel_ir(k);
            ir.validate().unwrap();
            std::hint::black_box(ir);
        }
    }
    let base_t = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..REPS {
        for &k in &IndexKind::KERNELS {
            let ir = kernel_ir(k);
            ir.validate().unwrap();
            std::hint::black_box(slpmt_annotate::analyze(&ir));
        }
    }
    let opt_t = t1.elapsed();
    let ratio = opt_t.as_secs_f64() / base_t.as_secs_f64().max(1e-9);
    let absolute = (opt_t - base_t).as_secs_f64() / REPS as f64;
    compare(
        "compile-time ratio",
        "≤1.23x (worst: btree)",
        format!("{ratio:.2}x over IR construction + validation"),
    );
    compare(
        "absolute added time",
        "<0.15 s",
        format!("{:.6} s per compilation of all four kernels", absolute),
    );
}
