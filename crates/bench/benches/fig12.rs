//! Figure 12 — SLPMT speedup sensitivity to the PM write latency
//! (500 ns Optane-class up to 2300 ns flash-backed CXL devices).
//!
//! Paper: the gain is largely stable with latency for most kernels
//! (it is dominated by the write-traffic reduction, which does not
//! change), while *hashtable* — the lazy-persistence-heavy benchmark —
//! grows more sensitive because deferral takes data persistence off
//! the commit critical path.

use slpmt_bench::{compare, header, run_with_latency, workload};
use slpmt_core::Scheme;
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::AnnotationSource;

const LATENCIES_NS: [u64; 4] = [500, 1100, 1700, 2300];

fn main() {
    header("Figure 12", "SLPMT speedup over FG vs PM write latency");
    let ops = workload(256);
    print!("{:<10}", "kernel");
    for ns in LATENCIES_NS {
        print!(" {ns:>6}ns");
    }
    println!();
    let mut spreads = Vec::new();
    let mut hashtable_spread = 0.0;
    for kind in IndexKind::KERNELS {
        print!("{:<10}", kind.to_string());
        let mut series = Vec::new();
        for ns in LATENCIES_NS {
            let base = run_with_latency(Scheme::Fg, kind, &ops, 256, AnnotationSource::Manual, ns);
            let r = run_with_latency(Scheme::Slpmt, kind, &ops, 256, AnnotationSource::Manual, ns);
            let sp = r.speedup_vs(&base);
            series.push(sp);
            print!(" {sp:>7.2}x");
        }
        println!();
        let spread = series.last().unwrap() - series.first().unwrap();
        if kind == IndexKind::Hashtable {
            hashtable_spread = spread;
        } else {
            spreads.push(spread.abs());
        }
    }
    println!();
    compare(
        "non-hashtable stability",
        "largely stable",
        format!(
            "max |500→2300ns change| {:.2}x",
            spreads.iter().cloned().fold(0.0, f64::max)
        ),
    );
    compare(
        "hashtable sensitivity",
        "grows with latency (lazy persistence)",
        format!("{:+.2}x from 500 to 2300 ns", hashtable_spread),
    );
}
