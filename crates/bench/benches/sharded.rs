//! `sharded` — self-benchmark of the share-nothing sharded mode:
//! simulated throughput scaling as the keyspace is partitioned across
//! 1 → 2 → 4 private machines.
//!
//! Shards run concurrently in *simulated* time, so the scaling metric
//! is total ops over the slowest shard's cycle count
//! (`ShardedResult::sim_ops_per_kcycle`); wall-clock speedup is also
//! printed but depends on the host's core count (`SLPMT_THREADS`).
//! The acceptance bar is >=2x simulated throughput going 1 -> 4 shards
//! on the hashtable YCSB-load stream.
//!
//! `SLPMT_OPS` scales the workload (default 1000).

use slpmt_bench::sharded::run_sharded;
use slpmt_bench::{compare, header, workload};
use slpmt_core::{MachineConfig, Scheme};
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::AnnotationSource;
use std::time::Instant;

fn main() {
    let ops = workload(256);

    header("sharded", "keyspace-sharded scaling (simulated ops/kcycle)");

    for (scheme, kind) in [
        (Scheme::Slpmt, IndexKind::Hashtable),
        (Scheme::Fg, IndexKind::Hashtable),
        (Scheme::Slpmt, IndexKind::Rbtree),
    ] {
        println!("-- {kind} / {scheme}: {} inserts --", ops.len());
        let mut base = None;
        for shards in [1usize, 2, 4] {
            let start = Instant::now();
            let res = run_sharded(
                MachineConfig::for_scheme(scheme),
                kind,
                &ops,
                256,
                AnnotationSource::Manual,
                shards,
                false,
            );
            let dt = start.elapsed().as_secs_f64();
            let tput = res.sim_ops_per_kcycle();
            let base_tput = *base.get_or_insert(tput);
            println!(
                "{shards} shard(s): {tput:>8.3} sim-ops/kcycle \
                 ({:.2}x vs 1 shard; makespan {:>9} cycles, {dt:.3}s wall)",
                tput / base_tput,
                res.sim_cycles(),
            );
        }
    }

    // The acceptance measurement: hashtable/SLPMT, 1 vs 4 shards.
    let one = run_sharded(
        MachineConfig::for_scheme(Scheme::Slpmt),
        IndexKind::Hashtable,
        &ops,
        256,
        AnnotationSource::Manual,
        1,
        false,
    );
    let four = run_sharded(
        MachineConfig::for_scheme(Scheme::Slpmt),
        IndexKind::Hashtable,
        &ops,
        256,
        AnnotationSource::Manual,
        4,
        false,
    );
    let scaling = four.sim_ops_per_kcycle() / one.sim_ops_per_kcycle();
    compare(
        "1->4 shard sim throughput",
        ">=2x",
        format!("{scaling:.2}x"),
    );
    assert!(
        scaling >= 2.0,
        "sharded scaling regressed: {scaling:.2}x < 2x going 1 -> 4 shards"
    );
}
