//! Parallel persist-event crash-sweep matrix.
//!
//! [`slpmt_workloads::crashsweep`] defines the per-point check: replay
//! a fixed seeded trace with the device armed to crash at persist
//! event `k`, recover, compare against the volatile oracle. This
//! module fans a scheme × workload matrix of those checks across the
//! [`runner`](crate::runner) worker pool:
//!
//! 1. One [`par_map`] pass runs every case crash-free to learn its
//!    event count `N` (and sanity-check the crash-free end state).
//! 2. The sweep domain — every `(case, k)` with `k ∈ 1..=N` — is
//!    flattened into one point list and a second [`par_map`] pass
//!    checks all points. Points are independent, so a slow case never
//!    idles workers assigned to cheap ones.
//!
//! Failures come back as reproducible `(scheme, workload, seed, k)`
//! tuples; `slpmt crashsweep` and the `tests/crash_sweep.rs` gate
//! print them verbatim.

use crate::runner::par_map;
use slpmt_core::Scheme;
use slpmt_workloads::crashsweep::{check_point, count_events, SweepCase, SweepFailure};
use slpmt_workloads::runner::IndexKind;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of a full sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Cases swept (scheme × workload pairs).
    pub cases: usize,
    /// Total crash points checked across all cases.
    pub points: usize,
    /// Every failing point, in deterministic (case, k) order.
    pub failures: Vec<SweepFailure>,
}

impl SweepReport {
    /// `true` when every crash point recovered correctly.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "crash sweep: {} points across {} cases, {} failure(s)",
            self.points,
            self.cases,
            self.failures.len()
        )?;
        for fail in &self.failures {
            writeln!(f, "  {fail}")?;
        }
        Ok(())
    }
}

/// The scheme × workload matrix of sweep cases, one per pair, all
/// sharing the trace parameters.
pub fn sweep_cases(
    schemes: &[Scheme],
    kinds: &[IndexKind],
    seed: u64,
    ops: usize,
) -> Vec<SweepCase> {
    let mut cases = Vec::with_capacity(schemes.len() * kinds.len());
    for &kind in kinds {
        for &scheme in schemes {
            cases.push(SweepCase::new(scheme, kind, seed, ops));
        }
    }
    cases
}

/// Sweeps every persist event of every case, in parallel, and returns
/// the aggregated report. A case whose crash-free run already fails
/// the oracle is reported as a single failure at `k = 0` and generates
/// no crash points.
pub fn run_sweep(cases: &[SweepCase]) -> SweepReport {
    // Pass 1: crash-free event counts (each also oracle-checks the
    // crash-free end state).
    let counts = par_map(cases, |case| {
        catch_unwind(AssertUnwindSafe(|| count_events(case))).map_err(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            SweepFailure {
                case: *case,
                k: 0,
                detail: format!("crash-free run failed: {msg}"),
            }
        })
    });
    let mut failures = Vec::new();
    let mut points = Vec::new();
    for (case, count) in cases.iter().zip(counts) {
        match count {
            Ok(n) => points.extend((1..=n).map(|k| (*case, k))),
            Err(fail) => failures.push(fail),
        }
    }
    // Pass 2: every crash point, flattened so workers never idle on a
    // finished case.
    let results = par_map(&points, |(case, k)| check_point(case, *k));
    failures.extend(results.into_iter().filter_map(Result::err));
    SweepReport {
        cases: cases.len(),
        points: points.len(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_kind_major_and_complete() {
        let cases = sweep_cases(
            &[Scheme::Fg, Scheme::Slpmt],
            &[IndexKind::Hashtable, IndexKind::Heap],
            7,
            10,
        );
        assert_eq!(cases.len(), 4);
        assert_eq!(cases[0].kind, IndexKind::Hashtable);
        assert_eq!(cases[1].scheme, Scheme::Slpmt);
        assert_eq!(cases[2].kind, IndexKind::Heap);
    }

    #[test]
    fn tiny_sweep_is_clean() {
        let cases = sweep_cases(&[Scheme::Fg], &[IndexKind::Heap], 3, 4);
        let report = run_sweep(&cases);
        assert!(report.points > 0);
        assert!(report.is_clean(), "{report}");
    }
}
