//! Parallel persist-event crash-sweep matrix.
//!
//! [`slpmt_workloads::crashsweep`] defines the per-point check: replay
//! a fixed seeded trace with the device armed to crash at persist
//! event `k`, recover, compare against the volatile oracle. This
//! module fans a scheme × workload matrix of those checks across the
//! [`runner`](crate::runner) worker pool:
//!
//! 1. One [`par_map`] pass runs every case crash-free to learn its
//!    event count `N` (and sanity-check the crash-free end state).
//! 2. The sweep domain — every `(case, k)` with `k ∈ 1..=N` — is
//!    flattened into one point list and a second [`par_map`] pass
//!    checks all points. Points are independent, so a slow case never
//!    idles workers assigned to cheap ones.
//!
//! Failures come back as reproducible `(scheme, workload, seed, k)`
//! tuples; `slpmt crashsweep` and the `tests/crash_sweep.rs` gate
//! print them verbatim.

use crate::runner::par_map;
use slpmt_core::SchemeKind;
use slpmt_workloads::crashsweep::{
    check_point_streaming, count_events, sample_points, trace_ops, StreamingOracle, SweepCase,
    SweepFailure,
};
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::ycsb::MixSpec;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of a full sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Cases swept (scheme × workload pairs).
    pub cases: usize,
    /// Total crash points checked across all cases.
    pub points: usize,
    /// Every failing point, in deterministic (case, k) order.
    pub failures: Vec<SweepFailure>,
}

impl SweepReport {
    /// `true` when every crash point recovered correctly.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "crash sweep: {} points across {} cases, {} failure(s)",
            self.points,
            self.cases,
            self.failures.len()
        )?;
        for fail in &self.failures {
            writeln!(f, "  {fail}")?;
        }
        Ok(())
    }
}

/// The scheme × workload matrix of sweep cases, one per pair, all
/// sharing the trace parameters.
pub fn sweep_cases<S: Into<SchemeKind> + Copy>(
    schemes: &[S],
    kinds: &[IndexKind],
    seed: u64,
    ops: usize,
) -> Vec<SweepCase> {
    let mut cases = Vec::with_capacity(schemes.len() * kinds.len());
    for &kind in kinds {
        for &scheme in schemes {
            cases.push(SweepCase::new(scheme, kind, seed, ops));
        }
    }
    cases
}

/// [`sweep_cases`] under a named mix with a load phase — the YCSB
/// adversarial-traffic matrix.
pub fn sweep_cases_mixed<S: Into<SchemeKind> + Copy>(
    schemes: &[S],
    kinds: &[IndexKind],
    seed: u64,
    load: usize,
    ops: usize,
    mix: MixSpec,
) -> Vec<SweepCase> {
    let mut cases = Vec::with_capacity(schemes.len() * kinds.len());
    for &kind in kinds {
        for &scheme in schemes {
            cases.push(SweepCase::with_mix(scheme, kind, seed, load, ops, mix));
        }
    }
    cases
}

/// Crash-free event counts for every case, in parallel; a case whose
/// crash-free run fails the oracle comes back as a `k = 0` failure.
fn event_counts(cases: &[SweepCase]) -> Vec<Result<u64, SweepFailure>> {
    par_map(cases, |case| {
        catch_unwind(AssertUnwindSafe(|| count_events(case))).map_err(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            SweepFailure {
                case: *case,
                k: 0,
                detail: format!("crash-free run failed: {msg}"),
            }
        })
    })
}

/// Work-unit size for the point pass: a function of the point count
/// only (never the worker count), so chunk boundaries — and therefore
/// the exact per-chunk oracle advances — are identical for any
/// `SLPMT_THREADS`.
fn chunk_len(points: usize) -> usize {
    (points / 64).max(16)
}

/// Runs one ascending chunk of a case's crash points against a single
/// streaming oracle: the trace is generated once and the oracle
/// advances monotonically — O(trace + chunk·replay), no per-point
/// model rebuild.
fn run_chunk(case: &SweepCase, ks: &[u64]) -> Vec<SweepFailure> {
    let ops = trace_ops(case);
    let mut oracle = StreamingOracle::new(&ops);
    ks.iter()
        .filter_map(|&k| check_point_streaming(case, &mut oracle, k).err())
        .collect()
}

/// Fans `(case, ascending points)` work units across the worker pool
/// and aggregates the report. Chunk results merge in submission order,
/// so the failure list is deterministic for any worker count.
fn run_point_chunks(
    cases: usize,
    work: Vec<(SweepCase, Vec<u64>)>,
    mut failures: Vec<SweepFailure>,
) -> SweepReport {
    let points = work.iter().map(|(_, ks)| ks.len()).sum();
    let results = par_map(&work, |(case, ks)| run_chunk(case, ks));
    failures.extend(results.into_iter().flatten());
    SweepReport {
        cases,
        points,
        failures,
    }
}

/// Sweeps every persist event of every case, in parallel, and returns
/// the aggregated report. A case whose crash-free run already fails
/// the oracle is reported as a single failure at `k = 0` and generates
/// no crash points. Points are split into ascending per-case chunks,
/// each served by one streaming oracle over one generated trace — a
/// slow case still spreads across workers chunk by chunk.
pub fn run_sweep(cases: &[SweepCase]) -> SweepReport {
    let counts = event_counts(cases);
    let mut failures = Vec::new();
    let mut work: Vec<(SweepCase, Vec<u64>)> = Vec::new();
    for (case, count) in cases.iter().zip(counts) {
        match count {
            Ok(n) => {
                let chunk = chunk_len(n as usize) as u64;
                let mut k = 1;
                while k <= n {
                    let end = (k + chunk - 1).min(n);
                    work.push((*case, (k..=end).collect()));
                    k = end + 1;
                }
            }
            Err(fail) => failures.push(fail),
        }
    }
    run_point_chunks(cases.len(), work, failures)
}

/// [`run_sweep`] over `points_per_case` seeded crash points per case
/// instead of the exhaustive `1..=N` domain — the sweep mode for the
/// big named-mix traces, whose event counts dwarf what an exhaustive
/// pass can visit. Samples match
/// [`sweep_points`](slpmt_workloads::crashsweep::sweep_points) for
/// every case.
pub fn run_sweep_sampled(cases: &[SweepCase], points_per_case: usize) -> SweepReport {
    let counts = event_counts(cases);
    let mut failures = Vec::new();
    let mut work: Vec<(SweepCase, Vec<u64>)> = Vec::new();
    for (case, count) in cases.iter().zip(counts) {
        match count {
            Ok(n) => {
                let ks = sample_points(case.seed, n, points_per_case);
                for chunk in ks.chunks(chunk_len(ks.len())) {
                    work.push((*case, chunk.to_vec()));
                }
            }
            Err(fail) => failures.push(fail),
        }
    }
    run_point_chunks(cases.len(), work, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;

    #[test]
    fn matrix_is_kind_major_and_complete() {
        let cases = sweep_cases(
            &[Scheme::Fg, Scheme::Slpmt],
            &[IndexKind::Hashtable, IndexKind::Heap],
            7,
            10,
        );
        assert_eq!(cases.len(), 4);
        assert_eq!(cases[0].kind, IndexKind::Hashtable);
        assert_eq!(cases[1].scheme, Scheme::Slpmt.into());
        assert_eq!(cases[2].kind, IndexKind::Heap);
    }

    #[test]
    fn tiny_sweep_is_clean() {
        let cases = sweep_cases(&[Scheme::Fg], &[IndexKind::Heap], 3, 4);
        let report = run_sweep(&cases);
        assert!(report.points > 0);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn sampled_mixed_sweep_is_clean_and_counts_points() {
        let cases = sweep_cases_mixed(
            &[Scheme::Slpmt],
            &[IndexKind::Hashtable],
            11,
            8,
            16,
            MixSpec::DELETE_HEAVY,
        );
        let report = run_sweep_sampled(&cases, 6);
        assert_eq!(report.cases, 1);
        assert_eq!(report.points, 6);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn chunked_sweep_matches_serial_sweep() {
        // The chunked parallel pass must find exactly what the serial
        // single-oracle sweep finds (here: nothing), over the same
        // point domain.
        let case =
            SweepCase::with_mix(Scheme::Fg, IndexKind::Heap, 5, 4, 10, MixSpec::DELETE_HEAVY);
        let report = run_sweep(&[case]);
        let serial = slpmt_workloads::crashsweep::sweep_serial(&case);
        assert_eq!(report.points as u64, count_events(&case));
        assert_eq!(report.failures.len(), serial.len());
    }
}
