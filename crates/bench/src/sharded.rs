//! Parallel sharded driver: real `std::thread` workers over the
//! share-nothing shards of `slpmt_workloads::sharded`.
//!
//! Each shard owns a private machine and a hash-partitioned slice of
//! the keyspace, so shards are embarrassingly parallel; this driver
//! fans them across the [`runner`](crate::runner) thread pool
//! (`SLPMT_THREADS` workers) and merges results *in shard order* —
//! the outcome is bit-identical to
//! [`run_sharded_serial`](slpmt_workloads::sharded::run_sharded_serial)
//! for any worker count, which `bench/tests/determinism.rs` asserts.

use crate::runner::{par_map, par_map_with};
use slpmt_core::{MachineConfig, TraceRecord};
use slpmt_workloads::runner::{IndexKind, RunResult};
use slpmt_workloads::sharded::{
    partition_mixed, partition_ops, run_shard, run_shard_mixed, run_shard_traced, ShardedResult,
};
use slpmt_workloads::{AnnotationSource, MixedOp, YcsbOp};

/// Partitions `ops` into `shards` keyspace shards and runs each on its
/// own simulated machine, shards fanned across `SLPMT_THREADS` host
/// workers. Per-shard results come back in shard order regardless of
/// completion order.
pub fn run_sharded(
    cfg: MachineConfig,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
    shards: usize,
    verify: bool,
) -> ShardedResult {
    let scheme = cfg.kind();
    let parts = partition_ops(ops, shards);
    let results: Vec<RunResult> = par_map(&parts, |part| {
        run_shard(cfg.clone(), kind, part, value_size, source, verify)
    });
    ShardedResult {
        scheme,
        kind,
        shards: results,
        total_ops: ops.len(),
    }
}

/// [`run_sharded`] at an explicit worker count, ignoring
/// `SLPMT_THREADS`. Scaling studies (`slpmt bench`, `scripts/bench.sh`)
/// use this to sweep 1/4/8/16 workers over a fixed shard count; the
/// merged result is bit-identical for every `workers` value.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_with(
    cfg: MachineConfig,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
    shards: usize,
    workers: usize,
    verify: bool,
) -> ShardedResult {
    let scheme = cfg.kind();
    let parts = partition_ops(ops, shards);
    let results: Vec<RunResult> = par_map_with(&parts, workers, |part| {
        run_shard(cfg.clone(), kind, part, value_size, source, verify)
    });
    ShardedResult {
        scheme,
        kind,
        shards: results,
        total_ops: ops.len(),
    }
}

/// Parallel sharded driver for mixed workloads: partitions the load
/// phase and the mixed trace by key ownership and fans the shards
/// across the worker pool. Bit-identical to
/// [`run_sharded_mixed_serial`](slpmt_workloads::sharded::run_sharded_mixed_serial)
/// for any worker count.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_mixed(
    cfg: MachineConfig,
    kind: IndexKind,
    load: &[YcsbOp],
    ops: &[MixedOp],
    value_size: usize,
    source: AnnotationSource,
    shards: usize,
    verify: bool,
) -> ShardedResult {
    let scheme = cfg.kind();
    let load_parts = partition_ops(load, shards);
    let parts = partition_mixed(ops, shards);
    let work: Vec<(Vec<YcsbOp>, Vec<MixedOp>)> = load_parts.into_iter().zip(parts).collect();
    let results: Vec<RunResult> = par_map(&work, |(lp, p)| {
        run_shard_mixed(cfg.clone(), kind, lp, p, value_size, source, verify)
    });
    ShardedResult {
        scheme,
        kind,
        shards: results,
        total_ops: ops.len(),
    }
}

/// [`run_sharded`] with event tracing enabled on every shard, at an
/// explicit worker count: each shard's measured phase comes back as a
/// record sequence, merged deterministically in shard order. For any
/// `workers` the per-shard sequences are identical to
/// [`run_sharded_serial_traced`](slpmt_workloads::sharded::run_sharded_serial_traced) —
/// the property `tests/trace_determinism.rs` pins down.
pub fn run_sharded_traced_with(
    cfg: MachineConfig,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    source: AnnotationSource,
    shards: usize,
    workers: usize,
) -> (ShardedResult, Vec<Vec<TraceRecord>>) {
    let scheme = cfg.kind();
    let parts = partition_ops(ops, shards);
    let pairs: Vec<(RunResult, Vec<TraceRecord>)> = par_map_with(&parts, workers, |part| {
        run_shard_traced(cfg.clone(), kind, part, value_size, source)
    });
    let mut results = Vec::with_capacity(shards);
    let mut traces = Vec::with_capacity(shards);
    for (r, t) in pairs {
        results.push(r);
        traces.push(t);
    }
    (
        ShardedResult {
            scheme,
            kind,
            shards: results,
            total_ops: ops.len(),
        },
        traces,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;
    use slpmt_workloads::sharded::run_sharded_serial;
    use slpmt_workloads::ycsb_load;

    #[test]
    fn parallel_matches_serial_driver() {
        let ops = ycsb_load(60, 8, 5);
        let cfg = MachineConfig::for_scheme(Scheme::Slpmt);
        let par = run_sharded(
            cfg.clone(),
            IndexKind::Hashtable,
            &ops,
            8,
            AnnotationSource::Manual,
            4,
            false,
        );
        let ser = run_sharded_serial(
            cfg,
            IndexKind::Hashtable,
            &ops,
            8,
            AnnotationSource::Manual,
            4,
            false,
        );
        assert_eq!(par.shards.len(), ser.shards.len());
        for (p, s) in par.shards.iter().zip(&ser.shards) {
            assert_eq!(p.cycles, s.cycles);
            assert_eq!(p.stats, s.stats);
            assert_eq!(p.traffic, s.traffic);
        }
        assert_eq!(par.sim_cycles(), ser.sim_cycles());
    }

    #[test]
    fn parallel_mixed_matches_serial_driver() {
        use slpmt_workloads::sharded::run_sharded_mixed_serial;
        use slpmt_workloads::ycsb::{ycsb_mix, MixSpec};
        let (load, ops) = ycsb_mix(40, 150, 16, 7, &MixSpec::DELETE_HEAVY_ZIPF);
        let cfg = MachineConfig::for_scheme(Scheme::Slpmt);
        let par = run_sharded_mixed(
            cfg.clone(),
            IndexKind::Hashtable,
            &load,
            &ops,
            16,
            AnnotationSource::Manual,
            4,
            true,
        );
        let ser = run_sharded_mixed_serial(
            cfg,
            IndexKind::Hashtable,
            &load,
            &ops,
            16,
            AnnotationSource::Manual,
            4,
            true,
        );
        assert_eq!(par.shards.len(), ser.shards.len());
        for (p, s) in par.shards.iter().zip(&ser.shards) {
            assert_eq!(p.cycles, s.cycles);
            assert_eq!(p.stats, s.stats);
            assert_eq!(p.traffic, s.traffic);
        }
        assert_eq!(par.sim_cycles(), ser.sim_cycles());
    }

    #[test]
    fn sixteen_shards_bit_identical_across_worker_counts() {
        let ops = ycsb_load(160, 8, 9);
        let cfg = MachineConfig::for_scheme(Scheme::Slpmt);
        let ser = run_sharded_serial(
            cfg.clone(),
            IndexKind::Hashtable,
            &ops,
            8,
            AnnotationSource::Manual,
            16,
            false,
        );
        for workers in [1usize, 4, 8, 16] {
            let par = run_sharded_with(
                cfg.clone(),
                IndexKind::Hashtable,
                &ops,
                8,
                AnnotationSource::Manual,
                16,
                workers,
                false,
            );
            assert_eq!(par.shards.len(), ser.shards.len());
            for (p, s) in par.shards.iter().zip(&ser.shards) {
                assert_eq!(p.cycles, s.cycles, "workers={workers}");
                assert_eq!(p.stats, s.stats, "workers={workers}");
                assert_eq!(p.traffic, s.traffic, "workers={workers}");
            }
            assert_eq!(par.sim_cycles(), ser.sim_cycles(), "workers={workers}");
        }
    }
}
