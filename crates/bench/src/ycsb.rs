//! YCSB mix matrix driver: named A–F / delete-heavy / zipfian mixes
//! across schemes and index kinds, with per-class simulated-latency
//! percentiles.
//!
//! Three consumers share this module: `slpmt ycsb` (perf matrix +
//! `--json`), `slpmt bench`'s `ycsb` section (regression-gated
//! sim-throughput), and the crash/fault gates in `tests/`, which turn
//! the same cells into [`SweepCase`]s and drive the sampled
//! streaming-oracle sweeps of [`crate::crashsweep`] /
//! [`crate::faultsweep`]. Everything reported is simulated cycles, so
//! output is bit-identical across reruns and worker counts.

use crate::runner::par_map;
use slpmt_core::{MachineConfig, SchemeKind};
use slpmt_workloads::crashsweep::SweepCase;
use slpmt_workloads::runner::{run_mixed_latencies, IndexKind, MixLatencies, RunResult};
use slpmt_workloads::ycsb::{ycsb_mix, MixSpec};
use slpmt_workloads::AnnotationSource;

/// One cell of the YCSB matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YcsbCell {
    /// The operation mix.
    pub mix: MixSpec,
    /// Design to simulate (hardware scheme or software PTM flavour).
    pub scheme: SchemeKind,
    /// Index workload to drive.
    pub kind: IndexKind,
}

/// Trace parameters shared by every cell of one matrix run.
#[derive(Debug, Clone, Copy)]
pub struct YcsbConfig {
    /// Keys inserted by the untimed load phase.
    pub load: usize,
    /// Measured mixed operations.
    pub ops: usize,
    /// Value payload size in bytes (whole words, ≥ 16 for mixes with
    /// update or read-modify-write shares).
    pub value_size: usize,
    /// Trace seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            load: 500,
            ops: 1000,
            value_size: 32,
            seed: 42,
        }
    }
}

/// One finished cell: the measured run plus its latency breakdown.
#[derive(Debug, Clone)]
pub struct YcsbRow {
    /// The cell that ran.
    pub cell: YcsbCell,
    /// Measured-phase cycles, traffic and machine counters.
    pub result: RunResult,
    /// Per-class p50/p99 simulated-cycle latencies.
    pub lat: MixLatencies,
}

/// The mix × scheme × kind cross product, mix-major so one mix's
/// schemes print together. Accepts plain [`slpmt_core::Scheme`]s or
/// [`SchemeKind`]s.
pub fn ycsb_cells<S: Into<SchemeKind> + Copy>(
    mixes: &[MixSpec],
    schemes: &[S],
    kinds: &[IndexKind],
) -> Vec<YcsbCell> {
    let mut cells = Vec::with_capacity(mixes.len() * schemes.len() * kinds.len());
    for &mix in mixes {
        for &kind in kinds {
            for &scheme in schemes {
                cells.push(YcsbCell {
                    mix,
                    scheme: scheme.into(),
                    kind,
                });
            }
        }
    }
    cells
}

/// Runs every cell in parallel (each generates its own trace from the
/// shared config) and returns rows in cell order. `verify` turns on
/// post-run invariant checks; per-op assertions (live keys readable,
/// scans returning exactly the expected key set on ordered indexes)
/// are always on.
pub fn run_ycsb_matrix(cells: &[YcsbCell], cfg: &YcsbConfig, verify: bool) -> Vec<YcsbRow> {
    par_map(cells, |cell| {
        let (load, ops) = ycsb_mix(cfg.load, cfg.ops, cfg.value_size, cfg.seed, &cell.mix);
        let (result, lat) = run_mixed_latencies(
            MachineConfig::for_kind(cell.scheme),
            cell.kind,
            &load,
            &ops,
            cfg.value_size,
            AnnotationSource::Manual,
            verify,
        );
        YcsbRow {
            cell: *cell,
            result,
            lat,
        }
    })
}

/// The crash-sweep case of one cell under a config — feed these to
/// [`crate::crashsweep::run_sweep_sampled`] or
/// [`crate::faultsweep::fault_cases_mixed`].
pub fn sweep_case_of(cell: &YcsbCell, cfg: &YcsbConfig) -> SweepCase {
    let mut case = SweepCase::with_mix(
        cell.scheme,
        cell.kind,
        cfg.seed,
        cfg.load,
        cfg.ops,
        cell.mix,
    );
    case.value_size = cfg.value_size;
    case
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;

    #[test]
    fn matrix_runs_and_reports_latencies() {
        let cells = ycsb_cells(
            &[MixSpec::YCSB_A, MixSpec::DELETE_HEAVY],
            &[Scheme::Slpmt],
            &[IndexKind::Hashtable],
        );
        let cfg = YcsbConfig {
            load: 50,
            ops: 200,
            value_size: 16,
            seed: 7,
        };
        let rows = run_ycsb_matrix(&cells, &cfg, true);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.result.cycles > 0);
            let classes: Vec<&str> = row.lat.present().map(|(n, _)| n).collect();
            assert!(classes.contains(&"read"), "{classes:?}");
            for (_, s) in row.lat.present() {
                assert!(s.p50 > 0 && s.p99 >= s.p50 && s.max >= s.p99);
            }
        }
        // Delete-heavy must actually exercise removes.
        assert!(rows[1].lat.present().any(|(n, _)| n == "remove"));
    }

    #[test]
    fn matrix_is_deterministic_for_a_seed() {
        let cells = ycsb_cells(&[MixSpec::YCSB_F], &[Scheme::Fg], &[IndexKind::Rbtree]);
        let cfg = YcsbConfig {
            load: 40,
            ops: 100,
            value_size: 16,
            seed: 3,
        };
        let a = run_ycsb_matrix(&cells, &cfg, false);
        let b = run_ycsb_matrix(&cells, &cfg, false);
        assert_eq!(a[0].result.cycles, b[0].result.cycles);
        assert_eq!(a[0].lat.classes, b[0].lat.classes);
    }

    #[test]
    fn scan_mix_runs_on_ordered_and_hash_indexes() {
        // E-mix scans go through scan_range on ordered indexes and
        // degrade to gets on the hashtable; both must complete with
        // the per-op assertions on.
        let cells = ycsb_cells(
            &[MixSpec::YCSB_E],
            &[Scheme::Slpmt],
            &[IndexKind::Hashtable, IndexKind::KvBtree],
        );
        let cfg = YcsbConfig {
            load: 60,
            ops: 150,
            value_size: 16,
            seed: 9,
        };
        let rows = run_ycsb_matrix(&cells, &cfg, true);
        assert!(rows
            .iter()
            .all(|r| r.lat.present().any(|(n, _)| n == "scan")));
    }
}
