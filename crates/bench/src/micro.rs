//! Per-operation microbenchmarks of the simulator hot path.
//!
//! Each probe isolates one primitive — `storeT`, `tx_commit`, a
//! batched WPQ drain, crash recovery — and reports both the
//! *simulated* cycle cost per operation (a semantic property: it must
//! not move when the host is slow) and the *host* nanosecond cost per
//! operation (the quantity the raw-speed work optimises). `slpmt
//! bench` embeds these rows in `BENCH_<n>.json`; the `micro` figure
//! bench prints them for eyeballing.
//!
//! Host numbers are best-of-`reps` wall times over a fixed iteration
//! count, mirroring `scripts/trace_overhead.sh`'s best-of-N discipline
//! so one noisy run cannot fake a regression.

use std::time::Instant;

use slpmt_core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt_pmem::{LogFlushEntry, PayloadBuf, PmAddr, PmConfig, PmDevice};

/// One measured primitive.
#[derive(Debug, Clone)]
pub struct MicroRow {
    /// Primitive name (`store`, `commit`, `drain`, `recover`).
    pub name: &'static str,
    /// Operations timed per repetition.
    pub iters: u64,
    /// Simulated cycles consumed per operation (deterministic).
    pub sim_cycles_per_op: f64,
    /// Best-of-reps host nanoseconds per operation.
    pub host_ns_per_op: f64,
}

/// Stores per transaction in the store/commit probes — small enough
/// that the undo log never overflows under any scheme, large enough
/// that per-transaction setup does not dominate the store probe.
const STORES_PER_TXN: usize = 32;

fn base_addr(txn: usize, word: usize) -> PmAddr {
    // Spread transactions across lines but reuse a bounded region so
    // the probe measures steady-state cache behaviour, not cold
    // compulsory misses over an ever-growing footprint.
    let txn = (txn % 64) as u64;
    PmAddr::new(0x1_0000 + txn * 4096 + (word as u64) * 8)
}

/// Times the `storeT` fast path: transactional stores under the SLPMT
/// scheme, commit excluded from the timed region.
fn probe_store(iters: u64, reps: u32) -> MicroRow {
    let txns = (iters as usize).div_ceil(STORES_PER_TXN);
    let mut best_ns = f64::INFINITY;
    let mut sim_cycles = 0u64;
    let mut timed_ops = 0u64;
    for _ in 0..reps {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        let mut host_ns = 0f64;
        sim_cycles = 0;
        timed_ops = 0;
        for t in 0..txns {
            m.tx_begin();
            let sim0 = m.now();
            let t0 = Instant::now();
            for w in 0..STORES_PER_TXN {
                m.store_u64(
                    base_addr(t, w),
                    (t * STORES_PER_TXN + w) as u64,
                    StoreKind::StoreT {
                        lazy: false,
                        log_free: false,
                    },
                );
            }
            host_ns += t0.elapsed().as_nanos() as f64;
            sim_cycles += m.now() - sim0;
            timed_ops += STORES_PER_TXN as u64;
            m.tx_commit();
        }
        best_ns = best_ns.min(host_ns);
    }
    MicroRow {
        name: "store",
        iters: timed_ops,
        sim_cycles_per_op: sim_cycles as f64 / timed_ops as f64,
        host_ns_per_op: best_ns / timed_ops as f64,
    }
}

/// Times `tx_commit` alone: the stores happen outside the timed
/// region, so this isolates the write-set partition + log flush +
/// marker cost per committed transaction.
fn probe_commit(iters: u64, reps: u32) -> MicroRow {
    let txns = (iters as usize).div_ceil(STORES_PER_TXN).max(1);
    let mut best_ns = f64::INFINITY;
    let mut sim_cycles = 0u64;
    for _ in 0..reps {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        let mut host_ns = 0f64;
        sim_cycles = 0;
        for t in 0..txns {
            m.tx_begin();
            for w in 0..STORES_PER_TXN {
                m.store_u64(base_addr(t, w), t as u64, StoreKind::Store);
            }
            let sim0 = m.now();
            let t0 = Instant::now();
            m.tx_commit();
            host_ns += t0.elapsed().as_nanos() as f64;
            sim_cycles += m.now() - sim0;
        }
        best_ns = best_ns.min(host_ns);
    }
    MicroRow {
        name: "commit",
        iters: txns as u64,
        sim_cycles_per_op: sim_cycles as f64 / txns as f64,
        host_ns_per_op: best_ns / txns as f64,
    }
}

/// Times the batched WPQ drain directly at the device layer: packed
/// log flushes of four records, the shape `tx_commit` emits. The
/// simulated column reports WPQ acceptance cycles per record.
fn probe_drain(iters: u64, reps: u32) -> MicroRow {
    const PACK: usize = 4;
    let packs = (iters as usize).div_ceil(PACK).max(1);
    let entries: Vec<LogFlushEntry> = (0..PACK)
        .map(|i| LogFlushEntry {
            txn: 1,
            addr: PmAddr::new(0x2_0000 + i as u64 * 64),
            payload: PayloadBuf::from_slice(&[i as u8 + 1; 32]),
        })
        .collect();
    let mut best_ns = f64::INFINITY;
    let mut sim_cycles = 0u64;
    for _ in 0..reps {
        let mut d = PmDevice::new(PmConfig::default());
        let mut now = 0u64;
        let t0 = Instant::now();
        for _ in 0..packs {
            now = d.persist_log_pack(now, &entries);
        }
        best_ns = best_ns.min(t0.elapsed().as_nanos() as f64);
        sim_cycles = now;
    }
    let records = (packs * PACK) as u64;
    MicroRow {
        name: "drain",
        iters: records,
        sim_cycles_per_op: sim_cycles as f64 / records as f64,
        host_ns_per_op: best_ns / records as f64,
    }
}

/// Times crash recovery: a tiny-cache FG machine is crashed with a
/// large transaction in flight, so dirty lines overflowed to PM under
/// cache pressure and their undo records are durable in the log. The
/// per-op unit is one applied undo record. Recovery runs *off* the
/// simulated clock (it happens at boot, before timed execution), so
/// the simulated column is always `0` for this row; the host column
/// is the measured quantity.
fn probe_recover(iters: u64, reps: u32) -> MicroRow {
    // Line-stride stores far past the tiny caches' ~168-line capacity:
    // overflows force undo records durable before the crash.
    const LINES_IN_FLIGHT: u64 = 256;
    let runs = (iters / 64).clamp(1, 64);
    let mut best_ns = f64::INFINITY;
    let mut records = 0u64;
    for _ in 0..reps {
        let mut host_ns = 0f64;
        records = 0;
        for r in 0..runs {
            let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Fg).with_tiny_caches());
            m.tx_begin();
            for w in 0..LINES_IN_FLIGHT {
                m.store_u64(PmAddr::new(0x1_0000 + w * 64), 0xdead ^ r, StoreKind::Store);
            }
            m.crash();
            let t0 = Instant::now();
            let report = m.recover();
            host_ns += t0.elapsed().as_nanos() as f64;
            records += (report.undo_applied + report.redo_applied) as u64;
        }
        best_ns = best_ns.min(host_ns);
    }
    MicroRow {
        name: "recover",
        iters: records,
        sim_cycles_per_op: 0.0,
        host_ns_per_op: best_ns / records.max(1) as f64,
    }
}

/// Runs every probe at `iters` timed operations each, best of `reps`
/// repetitions for the host column.
pub fn run_all(iters: u64, reps: u32) -> Vec<MicroRow> {
    vec![
        probe_store(iters, reps),
        probe_commit(iters, reps),
        probe_drain(iters, reps),
        probe_recover(iters, reps),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_report_positive_costs() {
        let rows = run_all(256, 1);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.iters > 0, "{}", row.name);
            assert!(row.host_ns_per_op > 0.0, "{}", row.name);
        }
        // Store, commit, and drain consume simulated time; recovery
        // runs off the simulated clock but must have applied records
        // (its cache-pressure setup guarantees live undo records).
        for row in rows.iter().take(3) {
            assert!(row.sim_cycles_per_op > 0.0, "{}", row.name);
        }
        assert!(rows[3].iters >= 64, "recovery applied undo records");
    }

    #[test]
    fn sim_columns_are_deterministic() {
        let a = run_all(256, 1);
        let b = run_all(256, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sim_cycles_per_op, y.sim_cycles_per_op, "{}", x.name);
            assert_eq!(x.iters, y.iters, "{}", x.name);
        }
    }
}
