//! Parallel crash-during-serve chaos sweep.
//!
//! [`slpmt_kv::chaos`] defines the per-point check: serve a pipelined
//! session stream until an armed crash (optionally with a media
//! [`FaultPlan`]) trips mid-dispatch, recover, pin the zero-lost-acks
//! contract, then restart the clients and drive the seeded
//! retry/backoff tail through the degraded window to oracle-checked
//! convergence. This module fans a mix × scheme × plan matrix of those
//! points across the [`runner`](crate::runner) worker pool, mirroring
//! [`faultsweep`](crate::faultsweep):
//!
//! 1. One [`par_map`] pass counts each case's persist events (the
//!    crash-free run is itself oracle-checked).
//! 2. The flattened `(case, plan, k)` point list is checked by a
//!    second [`par_map`] pass; points are independent, so a slow cell
//!    never idles workers assigned to cheap ones.
//! 3. One poisoned point per case proves the battery's teeth: a
//!    deliberately corrupted recovered state **must** fail the check.
//!
//! Every number in the report derives from the simulated cycle clock
//! and the deterministic point outcomes, so `slpmt chaos --json` is
//! byte-identical for a given matrix at any `SLPMT_THREADS`.

use crate::runner::{par_map_with, threads};
use slpmt_core::SchemeKind;
use slpmt_kv::chaos::{
    chaos_points, check_chaos_point, count_chaos_events, ChaosCase, ChaosOutcome, ChaosReport,
};
use slpmt_kv::service::digest64;
use slpmt_pmem::FaultPlan;
use slpmt_workloads::faultsweep::default_plans;
use slpmt_workloads::{IndexKind, MixSpec};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One scheduled chaos point: a case, an optional armed media-fault
/// plan, and the persist event the crash trips at.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPoint {
    /// The serve configuration.
    pub case: ChaosCase,
    /// Media faults armed alongside the crash (`None` = clean crash).
    pub plan: Option<FaultPlan>,
    /// Persist event the crash is armed at.
    pub k: u64,
}

/// Aggregated outcome of a chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosSweepReport {
    /// Cases swept (mix × scheme cells).
    pub cases: usize,
    /// Chaos points checked (crash points × plan variants).
    pub points: usize,
    /// Points that recovered loss-free with the full contract held.
    pub strict: usize,
    /// Points whose injected faults cost lines, reported honestly.
    pub lossy: usize,
    /// Total lines lost across lossy points.
    pub lost_lines: u64,
    /// Sums of the strict points' [`ChaosReport`] counters.
    pub totals: ChaosReport,
    /// Poisoned (non-vacuity) probes run, one per case.
    pub poison_checked: usize,
    /// Poisoned probes the checker correctly rejected.
    pub poison_caught: usize,
    /// Order-sensitive digest of every point's outcome — the
    /// byte-identity fingerprint CI diffs across worker counts.
    pub digest: u64,
    /// Every failing point, in deterministic point order.
    pub failures: Vec<String>,
}

impl ChaosSweepReport {
    /// `true` when every point held the contract and every poisoned
    /// probe was caught.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.poison_caught == self.poison_checked
    }
}

impl fmt::Display for ChaosSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos sweep: {} points across {} cases — {} strict, {} lossy ({} lines), \
             {} failure(s); poison probes {}/{} caught",
            self.points,
            self.cases,
            self.strict,
            self.lossy,
            self.lost_lines,
            self.failures.len(),
            self.poison_caught,
            self.poison_checked,
        )?;
        writeln!(
            f,
            "  acked={} durable={} retried={} suppressed={} refused_writes={} scrubbed={}",
            self.totals.acked,
            self.totals.durable,
            self.totals.retried,
            self.totals.suppressed,
            self.totals.refused_writes,
            self.totals.scrubbed,
        )?;
        for fail in &self.failures {
            writeln!(f, "  {fail}")?;
        }
        Ok(())
    }
}

/// The mix × scheme chaos matrix (mix-major, matching the repo's
/// kind-major matrix convention), all on the same backend.
pub fn chaos_cases<S: Into<SchemeKind> + Copy>(
    schemes: &[S],
    kind: IndexKind,
    seed: u64,
    requests: usize,
    mixes: &[MixSpec],
) -> Vec<ChaosCase> {
    let mut cases = Vec::with_capacity(schemes.len() * mixes.len());
    for &mix in mixes {
        for &scheme in schemes {
            cases.push(ChaosCase::new(scheme.into(), kind, seed, requests).with_mix(mix));
        }
    }
    cases
}

/// Runs `points_per_plan` seeded crash points of every case under
/// every plan variant (a clean crash plus each entry of `plans`, or
/// [`default_plans`] when `plans` is empty), plus one poisoned
/// non-vacuity probe per case, across [`threads`] workers.
pub fn run_chaos_sweep(
    cases: &[ChaosCase],
    plans: &[FaultPlan],
    points_per_plan: usize,
) -> ChaosSweepReport {
    run_chaos_sweep_with(cases, plans, points_per_plan, threads())
}

/// [`run_chaos_sweep`] with an explicit worker count (the determinism
/// gates diff reports across counts).
pub fn run_chaos_sweep_with(
    cases: &[ChaosCase],
    plans: &[FaultPlan],
    points_per_plan: usize,
    workers: usize,
) -> ChaosSweepReport {
    // Panics inside a point are caught and reported as failure tuples;
    // the default hook's backtraces are pure noise during the sweep.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_chaos_sweep_inner(cases, plans, points_per_plan, workers);
    std::panic::set_hook(hook);
    report
}

fn run_chaos_sweep_inner(
    cases: &[ChaosCase],
    plans: &[FaultPlan],
    points_per_plan: usize,
    workers: usize,
) -> ChaosSweepReport {
    let defaults;
    let plans = if plans.is_empty() {
        defaults = default_plans(cases.first().map_or(0, |c| c.seed));
        &defaults
    } else {
        plans
    };
    // Pass 1: persist-event count per case (each derivation also
    // oracle-checks the case's crash-free pipelined run).
    let ns = par_map_with(cases, workers, |case| {
        catch_unwind(AssertUnwindSafe(|| count_chaos_events(case)))
            .map_err(|_| format!("{case}: crash-free chaos run failed"))
    });
    let mut failures = Vec::new();
    let mut points: Vec<ChaosPoint> = Vec::new();
    let mut poison: Vec<ChaosPoint> = Vec::new();
    for (case, n) in cases.iter().zip(ns) {
        let n = match n {
            Ok(n) => n,
            Err(fail) => {
                failures.push(fail);
                continue;
            }
        };
        let ks = chaos_points(case, n, points_per_plan);
        for k in &ks {
            points.push(ChaosPoint {
                case: *case,
                plan: None,
                k: *k,
            });
        }
        for plan in plans {
            for k in &ks {
                points.push(ChaosPoint {
                    case: *case,
                    plan: Some(*plan),
                    k: *k,
                });
            }
        }
        // One poisoned probe per case at the median crash point.
        if let Some(&k) = ks.get(ks.len() / 2) {
            poison.push(ChaosPoint {
                case: *case,
                plan: None,
                k,
            });
        }
    }
    // Pass 2: every point, flattened so workers never idle on a
    // finished cell.
    let results = par_map_with(&points, workers, |p| {
        check_chaos_point(&p.case, p.plan.as_ref(), p.k, false)
    });
    let (mut strict, mut lossy, mut lost_lines) = (0usize, 0usize, 0u64);
    let mut totals = ChaosReport::default();
    let mut digest_stream = Vec::with_capacity(results.len() * 8);
    for r in &results {
        match r {
            Ok(ChaosOutcome::Strict(rep)) => {
                strict += 1;
                totals.acked += rep.acked;
                totals.durable += rep.durable;
                totals.retried += rep.retried;
                totals.suppressed += rep.suppressed;
                totals.refused_writes += rep.refused_writes;
                totals.scrubbed += rep.scrubbed;
                digest_stream.push(1u8);
                for v in [
                    rep.acked,
                    rep.durable,
                    rep.retried,
                    rep.suppressed,
                    rep.refused_writes,
                    rep.scrubbed,
                ] {
                    digest_stream.extend_from_slice(&v.to_le_bytes());
                }
            }
            Ok(ChaosOutcome::Lossy { lost }) => {
                lossy += 1;
                lost_lines += *lost as u64;
                digest_stream.push(2u8);
                digest_stream.extend_from_slice(&(*lost as u64).to_le_bytes());
            }
            Err(e) => {
                digest_stream.push(0u8);
                failures.push(e.clone());
            }
        }
    }
    // Pass 3: the poisoned probes MUST fail — a checker that cannot
    // reject a corrupted image proves nothing.
    let caught = par_map_with(&poison, workers, |p| {
        check_chaos_point(&p.case, None, p.k, true).is_err()
    });
    let poison_caught = caught.iter().filter(|&&c| c).count();
    for (p, ok) in poison.iter().zip(&caught) {
        if !ok {
            failures.push(format!(
                "{} @k={}: poisoned state passed the oracle check (vacuous battery)",
                p.case, p.k
            ));
        }
    }
    ChaosSweepReport {
        cases: cases.len(),
        points: points.len(),
        strict,
        lossy,
        lost_lines,
        totals,
        poison_checked: poison.len(),
        poison_caught,
        digest: digest64(&digest_stream),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;

    fn tiny_cases() -> Vec<ChaosCase> {
        chaos_cases(
            &[Scheme::Slpmt],
            IndexKind::KvBtree,
            13,
            24,
            &[MixSpec::YCSB_B],
        )
    }

    #[test]
    fn matrix_is_mix_major() {
        let cases = chaos_cases(
            &[Scheme::Slpmt, Scheme::SlpmtRedo],
            IndexKind::KvBtree,
            7,
            10,
            &[MixSpec::YCSB_A, MixSpec::YCSB_B],
        );
        assert_eq!(cases.len(), 4);
        assert_eq!(cases[0].mix, MixSpec::YCSB_A);
        assert_eq!(cases[0].scheme, Scheme::Slpmt.into());
        assert_eq!(cases[1].scheme, Scheme::SlpmtRedo.into());
        assert_eq!(cases[2].mix, MixSpec::YCSB_B);
    }

    #[test]
    fn tiny_chaos_sweep_is_clean_and_worker_invariant() {
        let cases = tiny_cases();
        let plans = [FaultPlan::NONE];
        let r1 = run_chaos_sweep_with(&cases, &plans, 2, 1);
        assert!(r1.is_clean(), "{r1}");
        assert_eq!(r1.points, 4, "2 points × (clean + 1 plan)");
        assert_eq!(r1.poison_checked, 1);
        let r2 = run_chaos_sweep_with(&cases, &plans, 2, 4);
        assert_eq!(r1.digest, r2.digest);
        assert_eq!(r1.totals, r2.totals);
        assert_eq!(r1.strict, r2.strict);
    }
}
