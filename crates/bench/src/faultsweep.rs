//! Parallel media-fault sweep matrix.
//!
//! [`slpmt_workloads::faultsweep`] defines the per-point check: replay
//! a seeded trace with a [`FaultPlan`](slpmt_pmem::FaultPlan) armed —
//! torn crash-boundary event, poisoned lines, flipped log bits, drain
//! jitter — crash at persist event `k`, recover, and verify the
//! degradation rules. This module fans a scheme × workload × plan
//! matrix of those checks across the [`runner`](crate::runner) worker
//! pool, mirroring [`crashsweep`](crate::crashsweep):
//!
//! 1. One [`par_map`] pass derives each cell's crash points (the clean
//!    event count plus seeded draws from it).
//! 2. The flattened `(cell, k)` point list is checked by a second
//!    [`par_map`] pass; points are independent, so a slow case never
//!    idles workers assigned to cheap ones.
//!
//! Failures come back as reproducible `(scheme, workload, seed, k,
//! plan)` tuples; `slpmt faults` and the `tests/fault_properties.rs`
//! gate print them verbatim, and `slpmt faults --plan … --at …`
//! replays a single one.

use crate::runner::par_map;
use slpmt_core::SchemeKind;
use slpmt_pmem::FaultPlan;
use slpmt_workloads::crashsweep::SweepCase;
use slpmt_workloads::faultsweep::{
    check_fault_point, default_plans, fault_points, FaultCase, FaultFailure,
};
use slpmt_workloads::runner::IndexKind;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of a full fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepReport {
    /// Cells swept (scheme × workload × plan triples).
    pub cases: usize,
    /// Total fault points checked across all cells.
    pub points: usize,
    /// Every failing point, in deterministic (cell, k) order.
    pub failures: Vec<FaultFailure>,
}

impl FaultSweepReport {
    /// `true` when every fault point satisfied the degradation rules.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for FaultSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault sweep: {} points across {} cells, {} failure(s)",
            self.points,
            self.cases,
            self.failures.len()
        )?;
        for fail in &self.failures {
            writeln!(f, "  {fail}")?;
        }
        Ok(())
    }
}

/// The scheme × workload × plan matrix: every base pair crossed with
/// the given plans (or [`default_plans`] when `plans` is empty).
pub fn fault_cases<S: Into<SchemeKind> + Copy>(
    schemes: &[S],
    kinds: &[IndexKind],
    seed: u64,
    ops: usize,
    plans: &[FaultPlan],
) -> Vec<FaultCase> {
    let defaults;
    let plans = if plans.is_empty() {
        defaults = default_plans(seed);
        &defaults
    } else {
        plans
    };
    let mut cases = Vec::with_capacity(schemes.len() * kinds.len() * plans.len());
    for &kind in kinds {
        for &scheme in schemes {
            for &plan in plans {
                cases.push(FaultCase {
                    base: SweepCase::new(scheme, kind, seed, ops),
                    plan,
                });
            }
        }
    }
    cases
}

/// [`fault_cases`] over mixed-workload bases — every base case crossed
/// with the plans (or [`default_plans`] when `plans` is empty). The
/// YCSB gates use this to run the media-fault battery under
/// delete-heavy and zipfian traffic.
pub fn fault_cases_mixed(bases: &[SweepCase], plans: &[FaultPlan]) -> Vec<FaultCase> {
    let defaults;
    let plans = if plans.is_empty() {
        defaults = default_plans(bases.first().map_or(0, |b| b.seed));
        &defaults
    } else {
        plans
    };
    let mut cases = Vec::with_capacity(bases.len() * plans.len());
    for &base in bases {
        for &plan in plans {
            cases.push(FaultCase { base, plan });
        }
    }
    cases
}

/// Sweeps `points_per_case` seeded crash points of every cell, in
/// parallel, and returns the aggregated report. A cell whose
/// crash-free run already fails the oracle is reported as a single
/// failure at `k = 0` and generates no fault points.
pub fn run_fault_sweep(cases: &[FaultCase], points_per_case: usize) -> FaultSweepReport {
    // Every panic below is caught and either admissible (degraded
    // structure recovery on a damaged image) or reported as a failure
    // tuple, so the default hook's backtraces are pure noise — silence
    // it for the duration of the sweep.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_fault_sweep_inner(cases, points_per_case);
    std::panic::set_hook(hook);
    report
}

fn run_fault_sweep_inner(cases: &[FaultCase], points_per_case: usize) -> FaultSweepReport {
    // Pass 1: seeded crash points per cell (each derivation also
    // oracle-checks the cell's crash-free run).
    let ks = par_map(cases, |case| {
        catch_unwind(AssertUnwindSafe(|| fault_points(case, points_per_case))).map_err(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            FaultFailure {
                case: *case,
                k: 0,
                detail: format!("crash-free run failed: {msg}"),
            }
        })
    });
    let mut failures = Vec::new();
    let mut points = Vec::new();
    for (case, drawn) in cases.iter().zip(ks) {
        match drawn {
            Ok(ks) => points.extend(ks.into_iter().map(|k| (*case, k))),
            Err(fail) => failures.push(fail),
        }
    }
    // Pass 2: every fault point, flattened so workers never idle on a
    // finished cell.
    let results = par_map(&points, |(case, k)| check_fault_point(case, *k));
    failures.extend(results.into_iter().filter_map(Result::err));
    FaultSweepReport {
        cases: cases.len(),
        points: points.len(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;

    #[test]
    fn matrix_crosses_plans_and_defaults_apply() {
        let cases = fault_cases(&[Scheme::Fg, Scheme::Slpmt], &[IndexKind::Heap], 7, 10, &[]);
        assert_eq!(cases.len(), 2 * default_plans(7).len());
        let one = [FaultPlan {
            tear: true,
            ..FaultPlan::NONE
        }];
        assert_eq!(
            fault_cases(&[Scheme::Fg], &[IndexKind::Heap], 7, 10, &one).len(),
            1
        );
    }

    #[test]
    fn tiny_fault_sweep_is_clean() {
        let cases = fault_cases(&[Scheme::Fg], &[IndexKind::Heap], 3, 4, &[]);
        let report = run_fault_sweep(&cases, 2);
        assert!(report.points > 0);
        assert!(report.is_clean(), "{report}");
    }
}
