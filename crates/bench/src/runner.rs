//! Parallel scheme-matrix runner.
//!
//! Every figure harness evaluates a matrix of independent simulation
//! cells — (scheme, index, configuration) triples that share nothing
//! but read-only inputs. Each cell builds its own [`Machine`], so the
//! cells are embarrassingly parallel; this module fans them across
//! `std::thread::scope` workers (no external dependencies) and merges
//! the results back **in cell order**, making a parallel run's output
//! byte-identical to a serial one.
//!
//! Worker count comes from [`threads`]: the `SLPMT_THREADS` environment
//! variable when set (a value of `1` forces the serial path — no
//! threads are spawned at all), otherwise
//! `std::thread::available_parallelism`.
//!
//! [`Machine`]: slpmt_core::Machine

use crate::ops_count;
use slpmt_core::{MachineConfig, Scheme, SchemeKind};
use slpmt_workloads::runner::{run_inserts_with, IndexKind, RunResult};
use slpmt_workloads::{ycsb_load, AnnotationSource, YcsbOp};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: `SLPMT_THREADS` when set, else the machine's
/// available parallelism (1 if that cannot be determined).
pub fn threads() -> usize {
    std::env::var("SLPMT_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Applies `f` to every item, fanning the work across [`threads`]
/// workers, and returns the results **in item order**.
///
/// Workers claim items through a shared atomic cursor, so a slow cell
/// never idles the other workers; each finished result is deposited
/// with its original index and the merge sorts by that index, making
/// the output independent of scheduling. With one worker (or one
/// item) no threads are spawned and the items run serially in place.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, threads(), f)
}

/// [`par_map`] with an explicit worker count (used by the
/// `sim_throughput` self-benchmark to compare serial vs parallel
/// wall-clock on the same process).
pub fn par_map_with<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                done.lock().expect("worker panicked").push((i, r));
            });
        }
    });
    let mut slots = done.into_inner().expect("worker panicked");
    slots.sort_by_key(|&(i, _)| i);
    slots.into_iter().map(|(_, r)| r).collect()
}

/// One independent simulation cell of a scheme × index matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Design to simulate (hardware scheme or software PTM flavour).
    pub scheme: SchemeKind,
    /// Index workload to drive.
    pub kind: IndexKind,
}

/// Cartesian product of `schemes` × `kinds` in row-major (kind-major)
/// order — the iteration order every figure harness uses. Accepts
/// plain [`Scheme`]s or [`SchemeKind`]s.
pub fn matrix<S: Into<SchemeKind> + Copy>(schemes: &[S], kinds: &[IndexKind]) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(schemes.len() * kinds.len());
    for &kind in kinds {
        for &scheme in schemes {
            cells.push(Cell {
                scheme: scheme.into(),
                kind,
            });
        }
    }
    cells
}

/// Runs every cell (in parallel, results in cell order) on the same
/// read-only workload.
pub fn run_matrix(
    cells: &[Cell],
    ops: &[YcsbOp],
    value_size: usize,
    src: AnnotationSource,
    latency_ns: Option<u64>,
) -> Vec<RunResult> {
    run_matrix_with(cells, threads(), ops, value_size, src, latency_ns)
}

/// [`run_matrix`] with an explicit worker count.
pub fn run_matrix_with(
    cells: &[Cell],
    workers: usize,
    ops: &[YcsbOp],
    value_size: usize,
    src: AnnotationSource,
    latency_ns: Option<u64>,
) -> Vec<RunResult> {
    par_map_with(cells, workers, |c| {
        let mut cfg = MachineConfig::for_kind(c.scheme);
        if let Some(ns) = latency_ns {
            cfg.pm = cfg.pm.with_write_latency_ns(ns);
        }
        run_inserts_with(cfg, c.kind, ops, value_size, src, false)
    })
}

/// Convenience for the CLI and self-benchmark: the full Figure-8-style
/// matrix (FG baseline plus every scheme) over the given kinds.
pub fn fig08_cells(kinds: &[IndexKind]) -> Vec<Cell> {
    matrix(
        &[
            Scheme::Fg,
            Scheme::FgLg,
            Scheme::FgLz,
            Scheme::Slpmt,
            Scheme::Atom,
            Scheme::Ede,
        ],
        kinds,
    )
}

/// Standard workload for the matrix entry points (`SLPMT_OPS`
/// respected, seed 42).
pub fn matrix_workload(value_size: usize) -> Vec<YcsbOp> {
    ycsb_load(ops_count(), value_size, crate::SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        for workers in [1, 2, 7] {
            let out = par_map_with(&items, workers, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn matrix_is_kind_major() {
        let cells = matrix(
            &[Scheme::Fg, Scheme::Slpmt],
            &[IndexKind::Hashtable, IndexKind::Rbtree],
        );
        assert_eq!(cells.len(), 4);
        assert_eq!(
            cells[0],
            Cell {
                scheme: Scheme::Fg.into(),
                kind: IndexKind::Hashtable
            }
        );
        assert_eq!(
            cells[1],
            Cell {
                scheme: Scheme::Slpmt.into(),
                kind: IndexKind::Hashtable
            }
        );
        assert_eq!(
            cells[2],
            Cell {
                scheme: Scheme::Fg.into(),
                kind: IndexKind::Rbtree
            }
        );
    }

    #[test]
    fn zero_workers_degrades_to_serial() {
        let out = par_map_with(&[1, 2, 3], 0, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
