//! Shared harness support for the figure-regeneration benches.
//!
//! Every table and figure of the paper's evaluation (§VI) has a
//! `harness = false` bench target in this crate that re-runs the
//! corresponding experiment on the simulator and prints measured
//! numbers next to the paper's reported values:
//!
//! | target   | reproduces |
//! |----------|------------|
//! | `table1` | Table I semantics, Figure 4 ordering, §III-D overhead |
//! | `fig08`  | kernel speedups + write-traffic reduction |
//! | `fig09`  | cache-line-granularity variants |
//! | `fig10`  | speedup vs value size |
//! | `fig11`  | traffic reduction vs value size |
//! | `fig12`  | speedup vs PM write latency |
//! | `fig13`  | compiler vs manual annotations + analysis time |
//! | `fig14`  | PMKV backends at 256 B and 16 B values |
//! | `ablation` | design-choice ablations (§V-A demo, speculative logging, buffer) |
//! | `micro`  | microbenches of the core structures |
//! | `sim_throughput` | wall-clock simulator throughput (self-benchmark) |
//!
//! The operation count defaults to the paper's 1,000 inserts; set
//! `SLPMT_OPS` to shrink runs (e.g. in CI). Set `SLPMT_CSV=<path>` to
//! append every comparison row as CSV for plotting. Matrix-style
//! harnesses run their cells in parallel through [`runner`]
//! (`SLPMT_THREADS` overrides the worker count; results are merged
//! deterministically, so any worker count prints identical output).

use slpmt_core::{MachineConfig, Scheme};
use slpmt_workloads::runner::{run_inserts_with, IndexKind, RunResult};
use slpmt_workloads::{ycsb_load, AnnotationSource, YcsbOp};

pub mod chaos;
pub mod crashsweep;
pub mod faultsweep;
pub mod micro;
pub mod runner;
pub mod serve;
pub mod sharded;
pub mod ycsb;

/// Default operation count (the paper's YCSB-load size).
pub const DEFAULT_OPS: usize = 1000;
/// Seed used by every figure run.
pub const SEED: u64 = 42;

/// Operation count, overridable via `SLPMT_OPS`.
pub fn ops_count() -> usize {
    std::env::var("SLPMT_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_OPS)
}

/// Generates the standard workload for a value size.
pub fn workload(value_size: usize) -> Vec<YcsbOp> {
    ycsb_load(ops_count(), value_size, SEED)
}

/// Runs one scheme on one index with default Table III timing.
pub fn run(
    scheme: Scheme,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    src: AnnotationSource,
) -> RunResult {
    run_inserts_with(
        MachineConfig::for_scheme(scheme),
        kind,
        ops,
        value_size,
        src,
        false,
    )
}

/// Runs with a specific PM write latency in nanoseconds.
pub fn run_with_latency(
    scheme: Scheme,
    kind: IndexKind,
    ops: &[YcsbOp],
    value_size: usize,
    src: AnnotationSource,
    latency_ns: u64,
) -> RunResult {
    let mut cfg = MachineConfig::for_scheme(scheme);
    cfg.pm = cfg.pm.with_write_latency_ns(latency_ns);
    run_inserts_with(cfg, kind, ops, value_size, src, false)
}

/// Geometric mean of an iterator of ratios.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Prints the standard bench header.
pub fn header(figure: &str, what: &str) {
    println!();
    println!("================================================================");
    println!("{figure} — {what}");
    println!("({} inserts, seed {}, Table III timing)", ops_count(), SEED);
    println!("================================================================");
}

/// Prints a paper-vs-measured comparison line, and appends it to the
/// CSV file named by `SLPMT_CSV` when set.
pub fn compare(label: &str, paper: &str, measured: String) {
    println!("{label:<28} paper: {paper:<26} measured: {measured}");
    if let Ok(path) = std::env::var("SLPMT_CSV") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let esc = |s: &str| s.replace('"', "'");
            let _ = writeln!(
                f,
                "\"{}\",\"{}\",\"{}\"",
                esc(label),
                esc(paper),
                esc(&measured)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_math() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty::<f64>()), 1.0);
    }

    #[test]
    fn workload_respects_env_default() {
        // Without SLPMT_OPS the default applies (test env may set it).
        let n = ops_count();
        assert!(n > 0);
        assert_eq!(workload(16).len(), n);
    }
}
