//! Parallel serve fan-out + request-latency aggregation.
//!
//! One serve run fans a [`ServeConfig`]'s shards across host workers
//! with [`par_map_with`](crate::runner::par_map_with) — each shard is
//! an independent single-threaded simulation, so the merged reports
//! are byte-identical to the serial run at any worker count — and
//! folds the per-shard latency samples into p50/p99/p999 percentiles
//! of simulated cycles. Wall time appears only as host throughput
//! colour, never in any simulated figure.

use crate::runner::{par_map_with, threads};
use slpmt_kv::service::{
    digest64, run_shard_service, shard_streams, ServeConfig, ShardServeReport, VERB_CLASSES,
};

/// Simulated-cycle latency percentiles for one request class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeLatency {
    /// Samples aggregated.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observed.
    pub max: u64,
}

impl ServeLatency {
    /// Nearest-rank percentiles over the samples (sorted in place).
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return ServeLatency::default();
        }
        samples.sort_unstable();
        let pick = |num: usize, den: usize| samples[(samples.len() - 1) * num / den];
        ServeLatency {
            count: samples.len() as u64,
            p50: pick(50, 100),
            p99: pick(99, 100),
            p999: pick(999, 1000),
            max: *samples.last().unwrap(),
        }
    }
}

/// One aggregated serve run.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// The configuration that ran.
    pub cfg: ServeConfig,
    /// Requests across all shards (scan splitting may push this above
    /// `cfg.requests`).
    pub requests: u64,
    /// Requests dispatched.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests that queued before admission.
    pub queued: u64,
    /// Total cycles spent queueing.
    pub queued_cycles: u64,
    /// Sum of per-shard service-phase cycles.
    pub total_sim_cycles: u64,
    /// Slowest shard's service-phase cycles (the sharded makespan).
    pub makespan_cycles: u64,
    /// Total WPQ stall cycles across shards.
    pub wpq_stall_cycles: u64,
    /// Response bytes across shards.
    pub response_bytes: u64,
    /// Order-sensitive digest of every shard's response digest — the
    /// byte-identity fingerprint CI diffs across worker counts.
    pub digest: u64,
    /// All-verb latency percentiles.
    pub overall: ServeLatency,
    /// Per-verb percentiles, `VERB_CLASSES` order, absent classes
    /// zeroed.
    pub per_verb: Vec<ServeLatency>,
    /// Host wall-clock seconds (colour only).
    pub wall_s: f64,
    /// Simulated requests per simulated second, from the makespan
    /// (cycles at 2 GHz), for quick cross-run comparison.
    pub sim_req_per_s: f64,
}

/// Runs every shard of `cfg` across [`threads`] workers.
pub fn run_serve(cfg: &ServeConfig) -> ServeRow {
    run_serve_with(cfg, threads()).0
}

/// [`run_serve`] with an explicit worker count; also returns the raw
/// per-shard reports (determinism tests diff their response bytes).
pub fn run_serve_with(cfg: &ServeConfig, workers: usize) -> (ServeRow, Vec<ShardServeReport>) {
    let start = std::time::Instant::now();
    let (loads, reqs) = shard_streams(cfg);
    let shards: Vec<usize> = (0..cfg.shards.max(1)).collect();
    let reports = par_map_with(&shards, workers, |&s| {
        run_shard_service(cfg, s, &loads[s], &reqs[s])
    });
    let wall_s = start.elapsed().as_secs_f64();
    (aggregate(cfg, &reports, wall_s), reports)
}

/// Folds per-shard reports into one [`ServeRow`].
pub fn aggregate(cfg: &ServeConfig, reports: &[ShardServeReport], wall_s: f64) -> ServeRow {
    let mut overall = Vec::new();
    let mut per_class: Vec<Vec<u64>> = vec![Vec::new(); VERB_CLASSES.len()];
    let mut digest_stream = Vec::with_capacity(reports.len() * 8);
    let (mut requests, mut served, mut shed, mut queued, mut queued_cycles) = (0, 0, 0, 0, 0);
    let (mut total_sim_cycles, mut makespan_cycles, mut wpq_stall_cycles) = (0, 0u64, 0);
    let mut response_bytes = 0;
    for r in reports {
        requests += r.requests;
        served += r.served;
        shed += r.admission.shed;
        queued += r.admission.queued;
        queued_cycles += r.admission.queued_cycles;
        total_sim_cycles += r.sim_cycles;
        makespan_cycles = makespan_cycles.max(r.sim_cycles);
        wpq_stall_cycles += r.wpq_stall_cycles;
        response_bytes += r.responses.len() as u64;
        digest_stream.extend_from_slice(&r.response_digest.to_le_bytes());
        for (class, samples) in r.samples.iter().enumerate() {
            per_class[class].extend_from_slice(samples);
            overall.extend_from_slice(samples);
        }
    }
    let sim_req_per_s = if makespan_cycles > 0 {
        served as f64 / (makespan_cycles as f64 / 2.0e9)
    } else {
        0.0
    };
    ServeRow {
        cfg: cfg.clone(),
        requests,
        served,
        shed,
        queued,
        queued_cycles,
        total_sim_cycles,
        makespan_cycles,
        wpq_stall_cycles,
        response_bytes,
        digest: digest64(&digest_stream),
        overall: ServeLatency::from_samples(&mut overall),
        per_verb: per_class
            .iter_mut()
            .map(|v| ServeLatency::from_samples(v))
            .collect(),
        wall_s,
        sim_req_per_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpmt_core::Scheme;
    use slpmt_workloads::{IndexKind, MixSpec};

    fn cfg(shards: usize) -> ServeConfig {
        let mut c = ServeConfig::new(Scheme::Slpmt, IndexKind::KvBtree, MixSpec::YCSB_B);
        c.load = 80;
        c.requests = 300;
        c.value_size = 16;
        c.seed = 5;
        c.shards = shards;
        c
    }

    #[test]
    fn worker_count_is_invisible() {
        let c = cfg(4);
        let (row1, rep1) = run_serve_with(&c, 1);
        let (row4, rep4) = run_serve_with(&c, 4);
        assert_eq!(row1.digest, row4.digest);
        assert_eq!(row1.overall, row4.overall);
        assert_eq!(row1.total_sim_cycles, row4.total_sim_cycles);
        assert_eq!(row1.makespan_cycles, row4.makespan_cycles);
        for (a, b) in rep1.iter().zip(&rep4) {
            assert_eq!(a.responses, b.responses);
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let row = run_serve(&cfg(2));
        assert_eq!(row.served, row.requests);
        let l = row.overall;
        assert!(l.count > 0);
        assert!(l.p50 <= l.p99 && l.p99 <= l.p999 && l.p999 <= l.max);
        assert!(l.p50 > 0, "request latency cannot be free");
        let sampled: u64 = row.per_verb.iter().map(|v| v.count).sum();
        assert_eq!(sampled, row.served);
    }

    #[test]
    fn latency_math() {
        let mut s = vec![5, 1, 9, 3, 7];
        let l = ServeLatency::from_samples(&mut s);
        assert_eq!((l.count, l.p50, l.max), (5, 5, 9));
        // Nearest-rank on 5 samples: index 4*99/100 = 3.
        assert_eq!(l.p99, 7);
        assert_eq!(l.p999, 7);
        let mut empty = Vec::new();
        assert_eq!(
            ServeLatency::from_samples(&mut empty),
            ServeLatency::default()
        );
    }
}
