//! The parallel matrix runner must be a pure performance optimisation:
//! for any worker count the merged results are identical — same order,
//! same cycles, same traffic, same machine-event counters — to a
//! serial run.

use slpmt_bench::runner::{fig08_cells, run_matrix_with};
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::{ycsb_load, AnnotationSource};

#[test]
fn parallel_matrix_matches_serial_exactly() {
    let ops = ycsb_load(60, 64, 42);
    let cells = fig08_cells(&[IndexKind::Hashtable, IndexKind::Rbtree]);
    let serial = run_matrix_with(&cells, 1, &ops, 64, AnnotationSource::Manual, None);
    for workers in [2, 3, 8] {
        let parallel = run_matrix_with(&cells, workers, &ops, 64, AnnotationSource::Manual, None);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.scheme, b.scheme, "cell {i} order ({workers} workers)");
            assert_eq!(a.kind, b.kind, "cell {i} order ({workers} workers)");
            assert_eq!(a.cycles, b.cycles, "cell {i} cycles ({workers} workers)");
            assert_eq!(a.traffic, b.traffic, "cell {i} traffic ({workers} workers)");
            assert_eq!(
                format!("{:?}", a.stats),
                format!("{:?}", b.stats),
                "cell {i} stats ({workers} workers)"
            );
        }
    }
}

#[test]
fn latency_override_reaches_every_cell() {
    let ops = ycsb_load(30, 64, 42);
    let cells = fig08_cells(&[IndexKind::Hashtable]);
    let fast = run_matrix_with(&cells, 2, &ops, 64, AnnotationSource::Manual, Some(100));
    let slow = run_matrix_with(&cells, 2, &ops, 64, AnnotationSource::Manual, Some(2000));
    for (f, s) in fast.iter().zip(&slow) {
        assert!(
            f.cycles < s.cycles,
            "{}/{}: higher PM write latency must cost cycles",
            f.kind,
            f.scheme
        );
    }
}
