//! Trace determinism across execution strategies: the parallel
//! sharded driver must capture *identical* per-shard event sequences
//! to the serial reference driver, for any worker count, and the
//! deterministic shard-order merge must therefore be byte-identical
//! too (same Chrome-trace export).

#![cfg(not(feature = "no-trace"))]

use slpmt_bench::sharded::run_sharded_traced_with;
use slpmt_core::{MachineConfig, Scheme};
use slpmt_workloads::runner::IndexKind;
use slpmt_workloads::{run_sharded_serial_traced, ycsb_load, AnnotationSource};

#[test]
fn sharded_trace_matches_serial_for_any_worker_count() {
    let ops = ycsb_load(48, 32, 11);
    let cfg = MachineConfig::for_scheme(Scheme::Slpmt);
    let (ser_res, ser_traces) = run_sharded_serial_traced(
        cfg.clone(),
        IndexKind::Hashtable,
        &ops,
        32,
        AnnotationSource::Manual,
        3,
    );
    assert_eq!(ser_traces.len(), 3);
    assert!(ser_traces.iter().all(|t| !t.is_empty()));
    for workers in [1, 2, 8] {
        let (par_res, par_traces) = run_sharded_traced_with(
            cfg.clone(),
            IndexKind::Hashtable,
            &ops,
            32,
            AnnotationSource::Manual,
            3,
            workers,
        );
        assert_eq!(par_res.sim_cycles(), ser_res.sim_cycles());
        assert_eq!(
            par_traces, ser_traces,
            "{workers} worker(s): per-shard event sequences diverged"
        );
    }
}

#[test]
fn merged_shard_trace_exports_byte_identically() {
    let ops = ycsb_load(30, 16, 5);
    let cfg = MachineConfig::for_scheme(Scheme::Slpmt);
    let export = |workers: usize| {
        let (_, traces) = run_sharded_traced_with(
            cfg.clone(),
            IndexKind::Heap,
            &ops,
            16,
            AnnotationSource::Manual,
            4,
            workers,
        );
        // The deterministic merge: shard order, then each shard's own
        // record order (already totally ordered per machine).
        let merged: Vec<_> = traces.into_iter().flatten().collect();
        slpmt_trace::export_chrome_trace(&merged)
    };
    let a = export(1);
    let b = export(4);
    assert!(!a.is_empty());
    assert_eq!(a, b, "merged export must be byte-identical");
}
