//! Transaction abort (§V-B) across every scheme, including aborts
//! after mid-transaction steals.

use slpmt_core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt_pmem::PmAddr;

const WORDS: u64 = 10;

fn word(i: u64) -> PmAddr {
    PmAddr::new(0x10000 + i * 64)
}

fn abort_case(scheme: Scheme, tiny: bool, thrash: bool) {
    let mut cfg = MachineConfig::for_scheme(scheme);
    if tiny {
        cfg = cfg.with_tiny_caches();
    }
    let mut m = Machine::new(cfg);
    // Committed base state.
    m.tx_begin();
    for i in 0..WORDS {
        m.store_u64(word(i), 7, StoreKind::Store);
    }
    m.tx_commit();
    // Aborted transaction, optionally with mid-transaction overflow.
    m.tx_begin();
    for i in 0..WORDS {
        m.store_u64(word(i), 999, StoreKind::Store);
    }
    if thrash {
        for i in 0..512u64 {
            m.load_u64(PmAddr::new(0x80000 + i * 64));
        }
    }
    m.tx_abort();
    for i in 0..WORDS {
        assert_eq!(
            m.peek_u64(word(i)),
            7,
            "{scheme} tiny={tiny} thrash={thrash}: word {i} logical"
        );
        assert_eq!(
            m.device().image().read_u64(word(i)),
            7,
            "{scheme} tiny={tiny} thrash={thrash}: word {i} durable"
        );
    }
    // The machine keeps working after the abort.
    m.tx_begin();
    m.store_u64(word(0), 42, StoreKind::Store);
    m.tx_commit();
    assert_eq!(m.device().image().read_u64(word(0)), 42);
}

#[test]
fn abort_restores_state_under_every_scheme() {
    for scheme in Scheme::ALL.into_iter().chain(Scheme::REDO) {
        abort_case(scheme, false, false);
        abort_case(scheme, true, true);
    }
}

#[test]
fn abort_with_selective_stores() {
    // Log-free updates are revoked by the caller's own recovery; the
    // hardware guarantees logged data. Aborting a mixed transaction
    // must restore every logged word; log-free words are left to the
    // application (here: still cached, so invalidation restores them
    // too when they never left the cache).
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
    m.setup_write(word(0), &1u64.to_le_bytes());
    m.setup_write(word(1), &2u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(word(0), 10, StoreKind::Store);
    m.store_u64(word(1), 20, StoreKind::log_free());
    m.tx_abort();
    assert_eq!(m.peek_u64(word(0)), 1, "logged word revoked");
    assert_eq!(
        m.peek_u64(word(1)),
        2,
        "cache-resident log-free word dropped"
    );
}

#[test]
fn abort_does_not_disturb_outstanding_lazy_data() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
    m.tx_begin();
    m.store_u64(word(5), 55, StoreKind::lazy_log_free());
    m.tx_commit();
    m.tx_begin();
    m.store_u64(word(6), 66, StoreKind::Store);
    m.tx_abort();
    assert_eq!(m.outstanding_lazy_txns(), 1, "lazy txn unaffected");
    assert_eq!(m.peek_u64(word(5)), 55);
    m.drain_lazy();
    assert_eq!(m.device().image().read_u64(word(5)), 55);
}

#[test]
#[should_panic(expected = "mutually exclusive")]
fn battery_plus_redo_rejected() {
    let _ = Machine::new(MachineConfig::for_scheme(Scheme::FgRedo).with_battery_backed_cache());
}

#[test]
fn crash_after_abort_does_not_replay_stale_records() {
    // Regression: the aborted transaction's persisted undo records
    // must not survive into the next recovery, or they would roll a
    // later committed value back to the aborted transaction's
    // pre-image.
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Fg).with_tiny_caches());
    m.setup_write(word(0), &7u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(word(0), 999, StoreKind::Store);
    // Overflow so the record persists (steal).
    for i in 0..512u64 {
        m.store_u64(PmAddr::new(0x80000 + i * 64), i, StoreKind::Store);
    }
    m.tx_abort();
    // A later transaction commits a new value at the same word.
    m.tx_begin();
    m.store_u64(word(0), 42, StoreKind::Store);
    m.tx_commit();
    m.crash();
    let report = m.recover();
    assert_eq!(
        m.device().image().read_u64(word(0)),
        42,
        "stale abort record replayed: {report:?}"
    );
}
