//! Systematic crash matrix: every scheme × every commit phase.
//!
//! Atomic durability means a transaction interrupted at *any* commit
//! phase is either entirely rolled back (no durable marker) or
//! entirely durable (marker persisted) after recovery — the property
//! Figure 4's orderings exist to guarantee. The matrix crashes one
//! victim transaction at each phase under each scheme and checks both
//! the victim and its committed predecessors.

use slpmt_core::{CommitPhase, Machine, MachineConfig, Scheme, StoreKind};
use slpmt_pmem::PmAddr;

const WORDS: u64 = 12;

fn word(i: u64) -> PmAddr {
    PmAddr::new(0x10000 + i * 64)
}

/// Runs three committed transactions, then a victim transaction
/// crashed at `phase`; returns the recovered machine.
fn run_matrix_case(scheme: Scheme, phase: CommitPhase, tiny: bool) -> Machine {
    let mut cfg = MachineConfig::for_scheme(scheme);
    if tiny {
        cfg = cfg.with_tiny_caches();
    }
    let mut m = Machine::new(cfg);
    // Predecessors: words i get value 100 + t.
    for t in 0..3u64 {
        m.tx_begin();
        for i in 0..WORDS {
            m.store_u64(word(i), 100 + t, StoreKind::Store);
        }
        m.tx_commit();
    }
    // Victim.
    m.tx_begin();
    for i in 0..WORDS {
        m.store_u64(word(i), 999, StoreKind::Store);
    }
    m.set_commit_crash_point(Some(phase));
    m.tx_commit();
    m.recover();
    m
}

fn check_all(m: &Machine, expected: u64, label: &str) {
    for i in 0..WORDS {
        assert_eq!(
            m.device().image().read_u64(word(i)),
            expected,
            "{label}: word {i}"
        );
    }
}

#[test]
fn undo_schemes_roll_back_before_marker_and_keep_after() {
    for scheme in [
        Scheme::Fg,
        Scheme::Slpmt,
        Scheme::FgCl,
        Scheme::Atom,
        Scheme::Ede,
    ] {
        for tiny in [false, true] {
            let m = run_matrix_case(scheme, CommitPhase::AfterRecords, tiny);
            check_all(&m, 102, &format!("{scheme} tiny={tiny} after-records"));
            let m = run_matrix_case(scheme, CommitPhase::AfterData, tiny);
            check_all(&m, 102, &format!("{scheme} tiny={tiny} after-data"));
            let m = run_matrix_case(scheme, CommitPhase::AfterMarker, tiny);
            check_all(&m, 999, &format!("{scheme} tiny={tiny} after-marker"));
        }
    }
}

#[test]
fn redo_schemes_discard_before_marker_and_replay_after() {
    for scheme in Scheme::REDO {
        for tiny in [false, true] {
            let m = run_matrix_case(scheme, CommitPhase::AfterLogFree, tiny);
            check_all(&m, 102, &format!("{scheme} tiny={tiny} after-log-free"));
            let m = run_matrix_case(scheme, CommitPhase::AfterRecords, tiny);
            check_all(&m, 102, &format!("{scheme} tiny={tiny} after-records"));
            let m = run_matrix_case(scheme, CommitPhase::AfterMarker, tiny);
            check_all(&m, 999, &format!("{scheme} tiny={tiny} after-marker"));
        }
    }
}

#[test]
fn selective_stores_stay_atomic_at_every_phase() {
    // Mixed-flavour victim transaction under the full design: logged,
    // log-free and lazy words. After a pre-marker crash the logged
    // word must roll back; after the marker it must be durable. The
    // log-free word may land either way pre-marker (its recovery is
    // application-specific) but must be durable post-marker.
    for phase in [
        CommitPhase::AfterRecords,
        CommitPhase::AfterData,
        CommitPhase::AfterMarker,
    ] {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        m.tx_begin();
        m.store_u64(word(0), 7, StoreKind::Store);
        m.store_u64(word(1), 8, StoreKind::log_free());
        m.store_u64(word(2), 9, StoreKind::lazy_log_free());
        m.tx_commit();
        m.drain_lazy();
        m.tx_begin();
        m.store_u64(word(0), 70, StoreKind::Store);
        m.store_u64(word(1), 80, StoreKind::log_free());
        m.store_u64(word(2), 90, StoreKind::lazy_log_free());
        m.set_commit_crash_point(Some(phase));
        m.tx_commit();
        m.recover();
        let logged = m.device().image().read_u64(word(0));
        let log_free = m.device().image().read_u64(word(1));
        let lazy = m.device().image().read_u64(word(2));
        if phase == CommitPhase::AfterMarker {
            assert_eq!(logged, 70, "{phase:?}");
            assert_eq!(log_free, 80, "{phase:?}");
            // Lazy data may still be deferred at the crash.
            assert!(lazy == 9 || lazy == 90, "{phase:?}: lazy {lazy}");
        } else {
            assert_eq!(logged, 7, "{phase:?}: logged word rolled back");
            assert!(
                log_free == 8 || log_free == 80,
                "{phase:?}: log-free {log_free}"
            );
            assert!(lazy == 9 || lazy == 90, "{phase:?}: lazy {lazy}");
        }
    }
}

#[test]
fn battery_machine_is_atomic_at_every_phase() {
    for phase in [CommitPhase::AfterRecords, CommitPhase::AfterMarker] {
        let mut m =
            Machine::new(MachineConfig::for_scheme(Scheme::Slpmt).with_battery_backed_cache());
        m.tx_begin();
        for i in 0..WORDS {
            m.store_u64(word(i), 1, StoreKind::Store);
        }
        m.tx_commit();
        m.tx_begin();
        for i in 0..WORDS {
            m.store_u64(word(i), 999, StoreKind::Store);
        }
        m.set_commit_crash_point(Some(phase));
        m.tx_commit();
        m.recover();
        let expect = if phase == CommitPhase::AfterMarker {
            999
        } else {
            1
        };
        check_all(&m, expect, &format!("battery {phase:?}"));
    }
}
