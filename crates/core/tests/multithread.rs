//! §V-C multi-threading: transactions of switched-out threads coexist
//! with the running thread's transaction via the per-line 2-bit IDs,
//! conflicts abort the switched-out victim, and crash recovery treats
//! suspended transactions as unfinished.

use slpmt_core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt_pmem::PmAddr;

const A: PmAddr = PmAddr::new(0x10000);
const B: PmAddr = PmAddr::new(0x20000);

fn machine() -> Machine {
    Machine::new(MachineConfig::for_scheme(Scheme::Slpmt))
}

#[test]
fn two_threads_interleave_disjoint_transactions() {
    let mut m = machine();
    // Thread 1 starts a transaction, is switched out mid-way.
    m.tx_begin();
    m.store_u64(A, 1, StoreKind::Store);
    let t1 = m.suspend_txn();
    // Thread 2 runs a full transaction on disjoint data.
    m.tx_begin();
    m.store_u64(B, 2, StoreKind::Store);
    m.tx_commit();
    assert_eq!(m.device().image().read_u64(B), 2);
    // Thread 1 resumes and completes.
    m.resume_txn(t1);
    m.store_u64(A.add(8), 11, StoreKind::Store);
    m.tx_commit();
    assert_eq!(m.device().image().read_u64(A), 1);
    assert_eq!(m.device().image().read_u64(A.add(8)), 11);
    assert_eq!(m.stats().tx_commits, 2);
    assert_eq!(m.stats().suspended_aborts, 0);
}

#[test]
fn conflicting_access_aborts_the_suspended_transaction() {
    let mut m = machine();
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    let _t1 = m.suspend_txn();
    // Thread 2 touches the same line: requester wins, thread 1 aborts.
    m.tx_begin();
    let v = m.load_u64(A);
    assert_eq!(v, 5, "the aborted transaction's update is revoked");
    m.store_u64(A, 7, StoreKind::Store);
    m.tx_commit();
    assert_eq!(m.stats().suspended_aborts, 1);
    assert_eq!(m.device().image().read_u64(A), 7);
}

#[test]
fn conflict_after_steal_repairs_the_image() {
    // The suspended transaction's dirty line overflowed to PM before
    // the conflict: the abort must apply the persisted undo records.
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt).with_tiny_caches());
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    for i in 0..512u64 {
        m.load_u64(PmAddr::new(0x80000 + i * 64));
    }
    assert_eq!(m.device().image().read_u64(A), 99, "stolen");
    let _t1 = m.suspend_txn();
    m.tx_begin();
    let v = m.load_u64(A);
    assert_eq!(v, 5, "undo applied on conflict abort");
    m.tx_commit();
    assert_eq!(m.device().image().read_u64(A), 5);
}

#[test]
fn crash_with_suspended_transaction_rolls_it_back() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt).with_tiny_caches());
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    for i in 0..512u64 {
        m.store_u64(PmAddr::new(0x80000 + i * 64), i, StoreKind::Store);
    }
    let _t1 = m.suspend_txn();
    m.tx_begin();
    m.store_u64(B, 2, StoreKind::Store);
    m.tx_commit();
    m.crash();
    m.recover();
    assert_eq!(
        m.device().image().read_u64(A),
        5,
        "suspended txn rolled back"
    );
    assert_eq!(m.device().image().read_u64(B), 2, "committed txn durable");
}

#[test]
fn several_suspensions_round_robin() {
    let mut m = machine();
    let mut seqs = Vec::new();
    for i in 0..3u64 {
        m.tx_begin();
        m.store_u64(PmAddr::new(0x10000 + i * 0x1000), i + 1, StoreKind::Store);
        seqs.push(m.suspend_txn());
    }
    // Resume and commit in a scrambled order.
    for &seq in [seqs[1], seqs[2], seqs[0]].iter() {
        m.resume_txn(seq);
        m.tx_commit();
    }
    for i in 0..3u64 {
        assert_eq!(
            m.device()
                .image()
                .read_u64(PmAddr::new(0x10000 + i * 0x1000)),
            i + 1
        );
    }
    assert_eq!(m.stats().tx_commits, 3);
}

#[test]
#[should_panic(expected = "no suspended transaction")]
fn resume_of_unknown_txn_rejected() {
    let mut m = machine();
    m.resume_txn(42);
}

#[test]
#[should_panic(expected = "undo discipline")]
fn redo_suspension_rejected() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::FgRedo));
    m.tx_begin();
    m.store_u64(A, 1, StoreKind::Store);
    m.suspend_txn();
}

#[test]
fn four_contexts_is_the_hardware_limit() {
    // 2-bit IDs: three suspended threads plus the running one exhaust
    // the contexts.
    let mut m = machine();
    for i in 0..3u64 {
        m.tx_begin();
        m.store_u64(PmAddr::new(0x10000 + i * 0x1000), i, StoreKind::Store);
        m.suspend_txn();
    }
    m.tx_begin(); // fourth context: OK
    m.tx_commit();
    // With the fourth committed clean, a new transaction fits again.
    m.tx_begin();
    m.tx_commit();
}

#[test]
#[should_panic(expected = "transaction contexts are in use")]
fn fifth_context_rejected() {
    let mut m = machine();
    for i in 0..4u64 {
        m.tx_begin();
        m.store_u64(PmAddr::new(0x10000 + i * 0x1000), i, StoreKind::Store);
        m.suspend_txn();
    }
    m.tx_begin();
}

#[test]
#[should_panic(expected = "battery-backed caches is unsupported")]
fn battery_suspension_rejected() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt).with_battery_backed_cache());
    m.tx_begin();
    m.store_u64(A, 1, StoreKind::Store);
    m.suspend_txn();
}
