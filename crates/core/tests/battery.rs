//! §V-E battery-backed-cache semantics.

use slpmt_core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt_pmem::PmAddr;

const A: PmAddr = PmAddr::new(0x10000);

fn battery() -> Machine {
    Machine::new(MachineConfig::for_scheme(Scheme::Slpmt).with_battery_backed_cache())
}

fn battery_tiny() -> Machine {
    Machine::new(
        MachineConfig::for_scheme(Scheme::Slpmt)
            .with_tiny_caches()
            .with_battery_backed_cache(),
    )
}

#[test]
fn commit_persists_no_data_lines() {
    let mut m = battery();
    m.tx_begin();
    for i in 0..16u64 {
        m.store_u64(A.add(i * 64), i, StoreKind::Store);
    }
    m.tx_commit();
    let t = m.device().traffic();
    assert_eq!(t.data_lines, 0, "battery: nothing persists at commit");
    assert_eq!(m.stats().log_records_created, 0, "no store-time logging");
    // But the data is logically there and crash-durable:
    m.crash();
    assert_eq!(m.device().image().read_u64(A), 0);
    assert_eq!(m.device().image().read_u64(A.add(64)), 1);
}

#[test]
fn in_flight_updates_vanish_at_crash() {
    let mut m = battery();
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    m.crash();
    let report = m.recover();
    assert_eq!(
        report.undo_applied, 0,
        "cache-resident update just vanished"
    );
    assert_eq!(m.device().image().read_u64(A), 5);
}

#[test]
fn committed_then_uncommitted_crash_keeps_committed_only() {
    let mut m = battery();
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 7, StoreKind::Store);
    m.tx_commit();
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    m.crash();
    m.recover();
    assert_eq!(
        m.device().image().read_u64(A),
        7,
        "committed survives, in-flight vanishes"
    );
}

#[test]
fn overflowing_uncommitted_lines_are_logged_and_rolled_back() {
    // §V-E: "log is still needed to ensure the atomicity if any data
    // is evicted into memory."
    let mut m = battery_tiny();
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    // Thrash the private caches so line A overflows to PM mid-txn.
    for i in 0..512u64 {
        m.store_u64(PmAddr::new(0x40000 + i * 64), i, StoreKind::Store);
    }
    assert!(m.stats().log_records_created > 0, "overflow logged");
    m.crash();
    let report = m.recover();
    assert!(report.undo_applied > 0);
    assert_eq!(m.device().image().read_u64(A), 5, "stolen update revoked");
}

#[test]
fn battery_commit_is_much_cheaper() {
    let run = |battery: bool| {
        let mut cfg = MachineConfig::for_scheme(Scheme::Slpmt);
        if battery {
            cfg = cfg.with_battery_backed_cache();
        }
        let mut m = Machine::new(cfg);
        for t in 0..32u64 {
            m.tx_begin();
            for i in 0..8u64 {
                m.store_u64(PmAddr::new(0x10000 + (t * 8 + i) * 64), i, StoreKind::Store);
            }
            m.tx_commit();
        }
        m.now()
    };
    let adr = run(false);
    let bat = run(true);
    assert!(
        bat * 3 < adr * 2,
        "battery commits should be substantially cheaper ({bat} vs {adr})"
    );
}

#[test]
fn repeated_commits_and_crashes_stay_consistent() {
    let mut m = battery_tiny();
    let mut expect = std::collections::BTreeMap::new();
    for round in 0..6u64 {
        for t in 0..8u64 {
            m.tx_begin();
            let a = PmAddr::new(0x10000 + ((round * 8 + t) % 64) * 64);
            m.store_u64(a, round * 100 + t, StoreKind::Store);
            m.tx_commit();
            expect.insert(a.raw(), round * 100 + t);
        }
        m.crash();
        m.recover();
        for (&a, &v) in &expect {
            assert_eq!(
                m.device().image().read_u64(PmAddr::new(a)),
                v,
                "round {round}"
            );
        }
    }
}
