//! Exhaustive (scheme × `StoreKind` × line-state) golden snapshot for
//! the `storeT` metadata path.
//!
//! The per-store hot path (`store_word_bytes` → log-bit / defer-bit /
//! scheme dispatch) was rewritten to be table-driven; this test pins
//! its observable behaviour to the pre-refactor branchy implementation.
//! Every case runs a small deterministic program that first drives one
//! cache line into a chosen *prestate* (resident / dirty / logged /
//! deferred / lazy-tagged / evicted …), then executes the store flavour
//! under test, commits, drains lazy persistence, and digests the
//! machine: cycle count, persist-event numbering, the stats counters
//! the store path feeds, device write traffic, and the durable image.
//!
//! The digest of every case is one line in
//! `tests/golden/store_matrix.txt`. Regenerate with
//! `SLPMT_BLESS=1 cargo test -p slpmt-core --test store_matrix` —
//! but only when a *semantic* change is intended; a pure-performance
//! refactor must leave the file untouched.

use slpmt_core::{Machine, MachineConfig, Scheme, StoreKind};
use slpmt_pmem::PmAddr;

/// Line under test: line-aligned, maps to L1 set 0 of the tiny config.
const BASE: u64 = 0x4000;
/// Same-set neighbours (tiny L1 has 4 sets of 2 ways; stride 256).
const SET_STRIDE: u64 = 256;

/// The five store flavours of Table I.
fn kinds() -> [(&'static str, StoreKind); 5] {
    [
        ("store", StoreKind::Store),
        (
            "storeT00",
            StoreKind::StoreT {
                lazy: false,
                log_free: false,
            },
        ),
        ("storeT01", StoreKind::log_free()),
        ("storeT11", StoreKind::lazy_log_free()),
        ("storeT10", StoreKind::lazy_logged()),
    ]
}

/// Line-state prestates the store under test executes against. Each
/// prep runs with a transaction already open unless noted.
const PRESTATES: [&str; 9] = [
    "fresh",       // line not resident anywhere
    "clean",       // resident clean (loaded before the txn)
    "dirty-plain", // dirtied by a non-transactional store
    "eager-sib",   // sibling word stored eagerly in this txn
    "logged-word", // same word already logged in this txn
    "defer-sib",   // sibling word deferred (lazy log-free) in this txn
    "defer-word",  // same word deferred in this txn
    "lazy-prev",   // line lazy-tagged by a previous committed txn
    "evicted",     // written in-txn, then evicted to L2 by set pressure
];

fn run_case(scheme: Scheme, battery: bool, kind: StoreKind, prestate: &str) -> String {
    let mut cfg = MachineConfig::for_scheme(scheme).with_tiny_caches();
    if battery {
        cfg = cfg.with_battery_backed_cache();
    }
    let mut m = Machine::new(cfg);
    let a = PmAddr::new(BASE);
    let sib = a.add(8);

    // Deterministic initial image for the line under test.
    let mut init = [0u8; 64];
    for (i, b) in init.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(3).wrapping_add(1);
    }
    m.setup_write(a, &init);

    match prestate {
        "fresh" => m.tx_begin(),
        "clean" => {
            let _ = m.load_u64(sib);
            m.tx_begin();
        }
        "dirty-plain" => {
            m.store_u64(sib, 0x1111, StoreKind::Store);
            m.tx_begin();
        }
        "eager-sib" => {
            m.tx_begin();
            m.store_u64(sib, 0x2222, StoreKind::Store);
        }
        "logged-word" => {
            m.tx_begin();
            m.store_u64(a, 0x3333, StoreKind::Store);
        }
        "defer-sib" => {
            m.tx_begin();
            m.store_u64(sib, 0x4444, StoreKind::lazy_log_free());
        }
        "defer-word" => {
            m.tx_begin();
            m.store_u64(a, 0x5555, StoreKind::lazy_log_free());
        }
        "lazy-prev" => {
            m.tx_begin();
            m.store_u64(a, 0x6666, StoreKind::lazy_logged());
            m.tx_commit();
            m.tx_begin();
        }
        "evicted" => {
            m.tx_begin();
            m.store_u64(a, 0x7777, StoreKind::Store);
            // Two same-set lines push BASE out of the 2-way L1 set.
            m.store_u64(PmAddr::new(BASE + SET_STRIDE), 0x8888, StoreKind::Store);
            m.store_u64(PmAddr::new(BASE + 2 * SET_STRIDE), 0x9999, StoreKind::Store);
        }
        other => panic!("unknown prestate {other}"),
    }

    // The store under test.
    m.store_u64(a, 0xDEAD_BEEF_0000_0001, kind);
    m.tx_commit();
    m.drain_lazy();

    let s = m.stats();
    let t = m.device().traffic();
    format!(
        "now={} ev={} st={} stT={} rec={} disc={} per={} lzd={} lzf={} lzo={} sig={} \
         stall={} tx={}/{} dl={} db={} lr={} lb={} wl={} wstall={} w0={:#x} w8={:#x}",
        m.now(),
        m.persist_event_count(),
        s.stores,
        s.store_ts,
        s.log_records_created,
        s.log_records_discarded,
        s.commit_line_persists,
        s.lazy_lines_deferred,
        s.lazy_lines_forced,
        s.lazy_lines_overflowed,
        s.signature_hits,
        s.commit_stall_cycles,
        s.tx_begins,
        s.tx_commits,
        t.data_lines,
        t.data_bytes,
        t.log_records,
        t.log_bytes,
        t.wpq_lines,
        m.device().wpq_stall_cycles(),
        m.device().image().read_u64(a),
        m.device().image().read_u64(sib),
    )
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("store_matrix.txt")
}

#[test]
fn store_path_matches_golden_snapshot() {
    let mut lines = Vec::new();
    for &scheme in Scheme::ALL.iter().chain(Scheme::REDO.iter()) {
        for battery in [false, true] {
            // Battery-backed caches are an undo-only configuration.
            if battery && Scheme::REDO.contains(&scheme) {
                continue;
            }
            for (kname, kind) in kinds() {
                for prestate in PRESTATES {
                    let digest = run_case(scheme, battery, kind, prestate);
                    lines.push(format!(
                        "{scheme} bat={} {kname} {prestate}: {digest}",
                        battery as u8
                    ));
                }
            }
        }
    }
    let got = lines.join("\n") + "\n";

    let path = golden_path();
    if std::env::var("SLPMT_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with SLPMT_BLESS=1",
            path.display()
        )
    });
    if got != want {
        let mismatches: Vec<String> = want
            .lines()
            .zip(got.lines())
            .filter(|(w, g)| w != g)
            .take(10)
            .map(|(w, g)| format!("- {w}\n+ {g}"))
            .collect();
        panic!(
            "store-path digest drifted from golden snapshot \
             ({} of {} lines differ; first {} shown):\n{}",
            want.lines()
                .zip(got.lines())
                .filter(|(w, g)| w != g)
                .count(),
            want.lines().count().max(got.lines().count()),
            mismatches.len(),
            mismatches.join("\n")
        );
    }
}
