//! Event-tracing integration: coverage, determinism and zero-cost of
//! the disabled path at the `Machine` level.

#![cfg(not(feature = "no-trace"))]

use slpmt_core::multi::{gen_programs, run_programs, ProgramSpec, Schedule, TraceOp};
use slpmt_core::{
    Machine, MachineConfig, MultiMachine, Scheme, StoreKind, TraceEvent, TraceMetrics, TraceRecord,
};
use slpmt_pmem::PmAddr;

const A: PmAddr = PmAddr::new(0x10000);

fn traced_run(scheme: Scheme) -> Vec<TraceRecord> {
    let mut m = Machine::new(MachineConfig::for_scheme(scheme));
    m.enable_tracing(1 << 16);
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 7, StoreKind::Store);
    m.store_u64(A.add(64), 8, StoreKind::lazy_logged());
    m.store_u64(A.add(128), 9, StoreKind::log_free());
    m.tx_commit();
    m.drain_lazy();
    m.take_trace()
}

#[test]
fn trace_covers_the_pipeline() {
    let recs = traced_run(Scheme::Slpmt);
    assert!(!recs.is_empty());
    let has = |name: &str| recs.iter().any(|r| r.event.name() == name);
    for name in [
        "store_issue",
        "log_bit",
        "tier_append",
        "tier_drain",
        "tier_occupancy",
        "wpq_enqueue",
        "persist",
        "commit_begin",
        "commit_stage",
        "commit_end",
        "txn_id_alloc",
        "cache_fetch",
    ] {
        assert!(has(name), "expected a {name} event in the trace");
    }
    // Commit spans are well-formed: begin before stages before end.
    let pos = |name: &str| recs.iter().position(|r| r.event.name() == name).unwrap();
    assert!(pos("commit_begin") < pos("commit_stage"));
    assert!(pos("commit_stage") < pos("commit_end"));
}

#[test]
fn same_seeded_run_traces_identically() {
    let a = traced_run(Scheme::Slpmt);
    let b = traced_run(Scheme::Slpmt);
    assert_eq!(a, b, "a trace must replay bit-identically");
}

#[test]
fn disabled_tracing_returns_empty_and_changes_nothing() {
    let run = |trace: bool| {
        let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
        if trace {
            m.enable_tracing(1 << 16);
        }
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::Store);
        m.tx_commit();
        (m.now(), *m.stats(), m.take_trace())
    };
    let (now_on, stats_on, trace_on) = run(true);
    let (now_off, stats_off, trace_off) = run(false);
    assert!(!trace_on.is_empty());
    assert!(trace_off.is_empty());
    assert_eq!(now_on, now_off, "tracing must not change timing");
    assert_eq!(stats_on, stats_off, "tracing must not change behaviour");
}

#[test]
fn multi_core_events_carry_core_attribution() {
    let spec = ProgramSpec::small(3, 21);
    let programs = gen_programs(&spec);
    let mut mm = MultiMachine::new(MachineConfig::for_scheme(Scheme::Slpmt), 3);
    mm.enable_tracing(1 << 16);
    for step in 0..programs.iter().map(Vec::len).max().unwrap() {
        for (core, prog) in programs.iter().enumerate() {
            if let Some(op) = prog.get(step) {
                if mm.in_txn(core) || matches!(op, TraceOp::Begin) {
                    match *op {
                        TraceOp::Begin => {
                            mm.tx_begin(core);
                        }
                        TraceOp::Load { addr } => {
                            mm.load_u64(core, PmAddr::new(addr));
                        }
                        TraceOp::Store { addr, value, kind } => {
                            mm.store_u64(core, PmAddr::new(addr), value, kind);
                        }
                        TraceOp::Commit => {
                            mm.tx_commit(core);
                        }
                    }
                }
            }
        }
    }
    let recs = mm.take_trace();
    let cores: std::collections::BTreeSet<u8> = recs.iter().map(|r| r.core).collect();
    assert!(cores.len() >= 2, "events from several cores: {cores:?}");
    // Per-core sequence numbers are dense from 0.
    for &c in &cores {
        let mut seqs: Vec<u64> = recs.iter().filter(|r| r.core == c).map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());
    }
}

#[test]
fn metrics_fold_a_real_trace() {
    let recs = traced_run(Scheme::Slpmt);
    let m = TraceMetrics::from_records(&recs);
    assert_eq!(m.records, recs.len());
    assert_eq!(m.commits, 1);
    assert!(m.persists.iter().sum::<u64>() > 0);
    assert!(m.tier_appends > 0);
    // The lazy store deferred its line, so a signature was inserted
    // and the trace's ground-truth false-positive accounting holds.
    assert!(m.sig_inserts <= 1);
}

#[test]
fn tracing_survives_run_programs_when_disabled() {
    // run_programs builds its machine internally (no tracing): the
    // trace drain must stay empty rather than capturing stale state.
    let spec = ProgramSpec::small(2, 9);
    let programs = gen_programs(&spec);
    let (mut mm, outcome) = run_programs(
        MachineConfig::for_scheme(Scheme::Slpmt),
        &programs,
        Schedule::round_robin(4),
    );
    assert!(!outcome.crashed);
    assert!(mm.take_trace().is_empty());
}

#[test]
fn recovery_emits_stage_events() {
    let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Fg).with_tiny_caches());
    m.enable_tracing(1 << 16);
    m.setup_write(A, &5u64.to_le_bytes());
    m.tx_begin();
    m.store_u64(A, 99, StoreKind::Store);
    for i in 0..512u64 {
        m.store_u64(PmAddr::new(0x40000 + i * 64), i, StoreKind::Store);
    }
    m.crash();
    let report = m.recover();
    assert!(report.undo_applied > 0);
    let recs = m.take_trace();
    let stages: Vec<String> = recs
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::Recovery { stage, .. } => Some(stage.label().to_string()),
            _ => None,
        })
        .collect();
    for want in ["validate", "truncate", "skip", "replay", "salvage", "scrub"] {
        assert!(stages.iter().any(|s| s == want), "missing stage {want}");
    }
    // The one-line report formatter carries the same counts.
    let line = report.to_string();
    assert!(line.contains(&format!("undo {}", report.undo_applied)));
}
