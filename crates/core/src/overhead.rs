//! Hardware overhead arithmetic (§III-D).
//!
//! SLPMT's on-chip additions total ~6.1 KB per core: metadata fields on
//! L1 and L2 lines, the 1,216-byte log buffer, and four 2048-bit
//! signatures. This module derives those numbers from the configured
//! geometry so the Table III / §III-D claims are checkable, and so
//! alternative geometries (e.g. uniform word-granularity L2 bits) can
//! be compared — the "mixed granularities reduce 75 % of the space
//! overhead" observation of §III-B1.

use crate::signature::SIGNATURE_BITS;
use slpmt_cache::CacheConfig;
use slpmt_logbuf::tiered::BUFFER_BYTES;

/// Per-core storage overhead breakdown, in bits unless noted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareOverhead {
    /// Bits added to every L1 line: 8 log + 1 persist + 2 txn-ID.
    pub l1_bits_per_line: usize,
    /// Bits added to every L2 line: 2 log + 1 persist + 2 txn-ID.
    pub l2_bits_per_line: usize,
    /// Total cache metadata bytes (L1 + L2 lines × field widths).
    pub cache_meta_bytes: usize,
    /// Log buffer bytes.
    pub log_buffer_bytes: usize,
    /// Signature bytes (4 × 2048 bits).
    pub signature_bytes: usize,
}

impl HardwareOverhead {
    /// Computes the overhead for a hierarchy.
    pub fn for_config(caches: &CacheConfig) -> Self {
        let l1_bits_per_line = 8 + 1 + 2;
        let l2_bits_per_line = 2 + 1 + 2;
        let cache_meta_bits =
            caches.l1.lines() * l1_bits_per_line + caches.l2.lines() * l2_bits_per_line;
        HardwareOverhead {
            l1_bits_per_line,
            l2_bits_per_line,
            cache_meta_bytes: cache_meta_bits / 8,
            log_buffer_bytes: BUFFER_BYTES,
            signature_bytes: 4 * SIGNATURE_BITS / 8,
        }
    }

    /// Total bytes of new on-chip state.
    pub fn total_bytes(&self) -> usize {
        self.cache_meta_bytes + self.log_buffer_bytes + self.signature_bytes
    }

    /// Cache metadata bytes if L2 kept *word-granularity* log bits —
    /// the naive design §III-B1 rejects.
    pub fn naive_uniform_l2_bytes(caches: &CacheConfig) -> usize {
        let per_line = 8 + 1 + 2;
        (caches.l1.lines() + caches.l2.lines()) * per_line / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_section_iii_d_budget() {
        let oh = HardwareOverhead::for_config(&CacheConfig::default());
        // 512 L1 lines × 11 bits + 4096 L2 lines × 5 bits = 3264 B ≈ 3.2 KB
        // (the paper rounds its field accounting to 3.9 KB with tag/ECC
        // padding; we assert the same order of magnitude).
        assert!(oh.cache_meta_bytes > 3000 && oh.cache_meta_bytes < 4200);
        assert_eq!(oh.log_buffer_bytes, 1216);
        assert_eq!(oh.signature_bytes, 1024);
        // Total ≈ 6.1 KB (§III-D says 6.1 KB).
        let total = oh.total_bytes();
        assert!(total > 5000 && total < 6600, "total {total} B");
    }

    #[test]
    fn mixed_granularity_saves_l2_space() {
        let caches = CacheConfig::default();
        let mixed = HardwareOverhead::for_config(&caches).cache_meta_bytes;
        let naive = HardwareOverhead::naive_uniform_l2_bytes(&caches);
        assert!(mixed < naive);
        // §III-B1: the mixed design saves ~75 % of the *L2 log-bit*
        // overhead (6 of 8 bits per line gone: 8→2).
        let l2_mixed = caches.l2.lines() * 2 / 8;
        let l2_naive = caches.l2.lines() * 8 / 8;
        assert_eq!(l2_naive - l2_mixed, l2_naive * 3 / 4);
    }
}
