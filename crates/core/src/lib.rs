//! SLPMT — the selective-logging persistent-memory transaction engine.
//!
//! This crate is the paper's primary contribution: a hardware
//! persistent-memory transaction engine with the `storeT` ISA
//! extension, fine-grain (word) logging through the four-tier log
//! buffer, and lazy persistency via working-set signatures and
//! circular 2-bit transaction IDs.
//!
//! Modules:
//!
//! * [`instr`] — `store` / `storeT` semantics (Table I).
//! * [`scheme`] — the evaluated designs: **FG** (fine-grain baseline),
//!   **FG+LG**, **FG+LZ**, **SLPMT**, **ATOM**, **EDE** and the
//!   cache-line-granularity variants of Figure 9.
//! * [`signature`] — 2048-bit working-set signatures (§III-C3).
//! * [`txreg`] — the circular transaction-ID register (§III-C2).
//! * [`machine`] — the simulated core: cache hierarchy + log buffer +
//!   device, executing loads, stores, transactions, aborts, crashes.
//! * [`multi`] — N cores sharing one persistence domain under a
//!   seeded deterministic scheduler, plus the interleaving and
//!   multi-core crash-sweep oracles.
//! * [`recovery`] — post-crash undo/redo replay.
//! * [`stats`] — cycle and event accounting.
//! * [`overhead`] — the §III-D hardware budget arithmetic.
//!
//! # Quick example
//!
//! ```
//! use slpmt_core::{Machine, MachineConfig, Scheme, StoreKind};
//! use slpmt_pmem::PmAddr;
//!
//! let mut m = Machine::new(MachineConfig::for_scheme(Scheme::Slpmt));
//! let a = PmAddr::new(0x1000);
//! m.tx_begin();
//! m.store_u64(a, 42, StoreKind::Store);               // logged + persisted
//! m.store_u64(a.add(8), 7, StoreKind::log_free());    // selective logging
//! m.tx_commit();
//! assert_eq!(m.peek_u64(a), 42);
//! // The logged word is durable at commit:
//! assert_eq!(m.device().image().read_u64(a), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instr;
pub mod machine;
pub mod multi;
pub mod overhead;
pub mod recovery;
pub mod scheme;
pub mod signature;
pub mod stats;
pub mod txreg;

pub use instr::{BitEffects, StoreKind};
pub use machine::{CommitPhase, Machine, MachineConfig};
pub use multi::{
    McEvent, McOutcome, McSweepCase, MultiMachine, ProgramSpec, SchedPolicy, Schedule, TraceOp,
};
pub use overhead::HardwareOverhead;
pub use recovery::RecoveryReport;
pub use scheme::{Discipline, Granularity, PtmFlavor, Scheme, SchemeFeatures, SchemeKind};
pub use signature::{Signature, SIGNATURE_BITS};
pub use slpmt_trace::{Event as TraceEvent, Metrics as TraceMetrics, TraceHandle, TraceRecord};
pub use stats::MachineStats;
pub use txreg::TxnIdRegister;
