//! `store` / `storeT` instruction semantics (Figure 2, Table I).
//!
//! `storeT` carries two 1-bit operands. *log-free* asks the hardware
//! not to create a log record for the stored data; *lazy* asks it not
//! to persist the line at transaction commit. Table I maps the operand
//! combinations to the per-line persist and log bits:
//!
//! | instruction      | lazy | log-free | persist bit | log bit |
//! |------------------|------|----------|-------------|---------|
//! | `store`          |  —   |    —     |      1      |    1    |
//! | `storeT`         |  0   |    0     |      1      |    1    |
//! | `storeT`         |  0   |    1     |      1      |    0    |
//! | `storeT`         |  1   |    1     |      0      |    0    |
//! | `storeT`         |  1   |    0     |      0      |    1    |

use std::fmt;

/// The store flavour executed by the simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// A conventional store: always logged, always persisted at commit.
    Store,
    /// The new `storeT` instruction with its two operand bits.
    StoreT {
        /// Defer persistence past commit (§III-C).
        lazy: bool,
        /// Skip undo-log creation (§II).
        log_free: bool,
    },
}

impl StoreKind {
    /// Every store flavour, in [`StoreKind::index`] order.
    pub const ALL: [StoreKind; 5] = [
        StoreKind::Store,
        StoreKind::StoreT {
            lazy: false,
            log_free: false,
        },
        StoreKind::StoreT {
            lazy: false,
            log_free: true,
        },
        StoreKind::StoreT {
            lazy: true,
            log_free: false,
        },
        StoreKind::StoreT {
            lazy: true,
            log_free: true,
        },
    ];

    /// Dense index of this flavour in `0..5`, used to key precomputed
    /// per-scheme action tables: `store` is 0, the four `storeT`
    /// operand combinations follow as `1 + lazy*2 + log_free`.
    pub fn index(self) -> usize {
        match self {
            StoreKind::Store => 0,
            StoreKind::StoreT { lazy, log_free } => 1 + (lazy as usize) * 2 + log_free as usize,
        }
    }

    /// `storeT lazy=0 log-free=1`: selective logging, eager persistence.
    pub fn log_free() -> Self {
        StoreKind::StoreT {
            lazy: false,
            log_free: true,
        }
    }

    /// `storeT lazy=1 log-free=1`: no log, deferred persistence.
    pub fn lazy_log_free() -> Self {
        StoreKind::StoreT {
            lazy: true,
            log_free: true,
        }
    }

    /// `storeT lazy=1 log-free=0`: logged but lazily persisted — the
    /// "interesting combination" of §III-A whose log record can be
    /// discarded if the line is still cached at commit.
    pub fn lazy_logged() -> Self {
        StoreKind::StoreT {
            lazy: true,
            log_free: false,
        }
    }

    /// The Table I bit effects of executing this store, given whether
    /// the hardware's selective features are enabled. Disabling a
    /// feature degrades the corresponding operand to its `store`
    /// behaviour (the FG / FG+LG / FG+LZ configurations of §VI-C).
    pub fn effects(self, log_free_enabled: bool, lazy_enabled: bool) -> BitEffects {
        match self {
            StoreKind::Store => BitEffects {
                set_persist: true,
                set_log: true,
            },
            StoreKind::StoreT { lazy, log_free } => {
                let lazy_honoured = lazy && lazy_enabled;
                // `lazy=1 log-free=1` degrades to a full `store` (not
                // to eager log-free) when the lazy feature is missing:
                // the deferral is what makes the missing log record
                // safe for stores into regions freed by the open
                // transaction (Pattern 1, free case). Persisting such
                // a store in place before the commit marker would
                // survive a rollback with no record to repair it.
                let log_free_honoured = log_free && log_free_enabled && (lazy_honoured || !lazy);
                BitEffects {
                    set_persist: !lazy_honoured,
                    set_log: !log_free_honoured,
                }
            }
        }
    }
}

impl fmt::Display for StoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreKind::Store => write!(f, "store"),
            StoreKind::StoreT { lazy, log_free } => {
                write!(
                    f,
                    "storeT(lazy={}, log-free={})",
                    *lazy as u8, *log_free as u8
                )
            }
        }
    }
}

/// The per-line metadata updates a store performs (Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitEffects {
    /// Whether the persist bit is set (persist-at-commit).
    pub set_persist: bool,
    /// Whether the log bit is set (an undo record must exist).
    pub set_log: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I, row by row, with both features enabled.
    #[test]
    fn table_i_semantics() {
        let rows = [
            (StoreKind::Store, true, true),
            (
                StoreKind::StoreT {
                    lazy: false,
                    log_free: false,
                },
                true,
                true,
            ),
            (StoreKind::log_free(), true, false),
            (StoreKind::lazy_log_free(), false, false),
            (StoreKind::lazy_logged(), false, true),
        ];
        for (kind, persist, log) in rows {
            let e = kind.effects(true, true);
            assert_eq!(e.set_persist, persist, "{kind}: persist bit");
            assert_eq!(e.set_log, log, "{kind}: log bit");
        }
    }

    /// Disabling log-free degrades the operand (FG+LZ configuration).
    #[test]
    fn log_free_disabled_degrades_to_logged() {
        let e = StoreKind::log_free().effects(false, true);
        assert!(e.set_persist);
        assert!(e.set_log);
    }

    /// Disabling lazy degrades the operand (FG+LG configuration).
    /// `lazy=1 log-free=1` must fall all the way back to a plain
    /// `store`: honouring only the log-free half would let stores into
    /// regions freed by the open transaction persist in place with no
    /// record to undo them on rollback.
    #[test]
    fn lazy_disabled_degrades_to_eager() {
        let e = StoreKind::lazy_logged().effects(true, false);
        assert!(e.set_persist);
        assert!(e.set_log);
        let e = StoreKind::lazy_log_free().effects(true, false);
        assert!(e.set_persist);
        assert!(e.set_log, "unhonoured deferral revokes log-free-ness");
    }

    /// With both features off every flavour behaves like `store` (FG).
    #[test]
    fn all_disabled_is_plain_store() {
        for kind in [
            StoreKind::Store,
            StoreKind::log_free(),
            StoreKind::lazy_log_free(),
            StoreKind::lazy_logged(),
        ] {
            let e = kind.effects(false, false);
            assert!(e.set_persist, "{kind}");
            assert!(e.set_log, "{kind}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(StoreKind::Store.to_string(), "store");
        assert_eq!(
            StoreKind::lazy_logged().to_string(),
            "storeT(lazy=1, log-free=0)"
        );
    }
}
