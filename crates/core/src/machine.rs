//! The simulated core executing SLPMT transactions.
//!
//! [`Machine`] wires together the cache hierarchy (`slpmt-cache`), the
//! log path (`slpmt-logbuf`), the persistent-memory device
//! (`slpmt-pmem`) and the lazy-persistency machinery (signatures and
//! the transaction-ID register) into a single-core cost simulator.
//!
//! ### Execution model
//!
//! The hierarchy is *exclusive*: a line lives in exactly one of L1, L2
//! or L3 (or only in the persistent image). Loads and stores pull the
//! line into L1, cascading evictions downward. Eviction applies the
//! Figure 5 metadata transforms; an L2→L3 eviction first flushes the
//! line's buffered log records and persists the line's data if dirty —
//! the natural-overflow path by which lazily-persistent data
//! eventually becomes durable.
//!
//! ### Timing
//!
//! `now` advances by cache hit latencies, PM read latency on LLC
//! misses, a per-instruction issue cost, and persist time. Background
//! persists (log-buffer drains, overflow write-backs) charge only the
//! *backpressure* component — the cycles the write pending queue made
//! the requester wait — while commit-path persists are synchronous, as
//! the paper's ordering rules require (Figure 4).

use crate::instr::StoreKind;
use crate::scheme::{
    BufferKind, Discipline, Granularity, PtmFlavor, Scheme, SchemeFeatures, SchemeKind,
};
use crate::signature::Signature;
use crate::stats::MachineStats;
use crate::txreg::TxnIdRegister;
use slpmt_cache::{
    l1_logbits_to_l2, l2_logbits_to_l1, speculative_fill_words, CacheConfig, Entry, LineMeta,
    SetAssocCache, TxnId,
};
use slpmt_logbuf::{AtomLineBuffer, EdeCombiner, FlushEvent, LogRecord, TieredLogBuffer};
use slpmt_pmem::addr::{PmAddr, LINE_BYTES, WORD_BYTES};
use slpmt_pmem::{PayloadBuf, PmConfig, PmDevice};
use slpmt_trace::{CommitStage, Event as TraceEvent, TraceHandle, TraceRecord, Tracer};
use std::collections::{BTreeMap, BTreeSet};

/// Commit-sequence phases at which a test may inject a power failure
/// (see [`Machine::set_commit_crash_point`]). The phases correspond to
/// the Figure 4 persist ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitPhase {
    /// Redo only: after the log-free lines persisted, before any
    /// record (the Figure 4 right-hand precondition).
    AfterLogFree,
    /// After the log records drained (undo: before any data line;
    /// redo: before the marker).
    AfterRecords,
    /// Undo only: after the data lines persisted, before the marker —
    /// the roll-back window.
    AfterData,
    /// After the commit marker (undo: everything durable; redo: the
    /// write-back has not happened — the redo-replay window).
    AfterMarker,
}

/// Configuration of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// The hardware design being simulated.
    pub scheme: Scheme,
    /// Feature bundle (derived from `scheme`, overridable for
    /// ablations).
    pub features: SchemeFeatures,
    /// Cache hierarchy geometry and latencies.
    pub caches: CacheConfig,
    /// Persistent-memory timing.
    pub pm: PmConfig,
    /// Fixed issue cost per store instruction, cycles.
    pub store_issue_cycles: u64,
    /// Fixed issue cost per load instruction, cycles.
    pub load_issue_cycles: u64,
    /// Fixed cost of `tx_begin` bookkeeping, cycles.
    pub tx_begin_cycles: u64,
    /// §V-E battery-backed caches: the on-chip caches belong to the
    /// persistence domain. Commit then persists no data lines (the
    /// marker suffices) and logging happens only when an uncommitted
    /// line overflows to PM — its pre-image is still the line's image
    /// content. On power failure the battery flushes every dirty line
    /// *except* those of the in-flight transaction, which simply
    /// vanish (automatic roll-back of cache-resident updates).
    pub battery_backed: bool,
    /// When set, the machine models the substrate for a *software* PTM
    /// baseline: the workload layer runs the flavor's explicit
    /// store/flush/fence protocol and never opens hardware
    /// transactions, so none of the hardware logging features fire.
    pub software: Option<PtmFlavor>,
}

impl MachineConfig {
    /// Default configuration (Table III) for the given scheme.
    pub fn for_scheme(scheme: Scheme) -> Self {
        MachineConfig {
            scheme,
            features: scheme.features(),
            caches: CacheConfig::default(),
            pm: PmConfig::default(),
            store_issue_cycles: 1,
            load_issue_cycles: 1,
            tx_begin_cycles: 20,
            battery_backed: false,
            software: None,
        }
    }

    /// Default configuration for any scheme column — hardware schemes
    /// map to [`for_scheme`](Self::for_scheme); software flavors run
    /// over the baseline cache/WPQ substrate (scheme features unused:
    /// the flavor's protocol never opens hardware transactions).
    pub fn for_kind(kind: impl Into<SchemeKind>) -> Self {
        match kind.into() {
            SchemeKind::Hardware(s) => Self::for_scheme(s),
            SchemeKind::Software(f) => MachineConfig {
                software: Some(f),
                ..Self::for_scheme(Scheme::Fg)
            },
        }
    }

    /// The scheme column this configuration simulates.
    pub fn kind(&self) -> SchemeKind {
        match self.software {
            Some(f) => SchemeKind::Software(f),
            None => SchemeKind::Hardware(self.scheme),
        }
    }

    /// Enables §V-E battery-backed-cache semantics.
    #[must_use]
    pub fn with_battery_backed_cache(mut self) -> Self {
        self.battery_backed = true;
        self
    }

    /// Shrinks the caches so tests can exercise eviction and overflow
    /// paths cheaply.
    #[must_use]
    pub fn with_tiny_caches(mut self) -> Self {
        self.caches = CacheConfig::tiny();
        self
    }

    /// Replaces the PM timing configuration.
    #[must_use]
    pub fn with_pm(mut self, pm: PmConfig) -> Self {
        self.pm = pm;
        self
    }
}

/// The log path actually instantiated for a scheme.
#[derive(Debug, Clone)]
enum LogPath {
    Tiered(TieredLogBuffer),
    Atom(AtomLineBuffer),
    Ede(EdeCombiner),
}

/// State of the transaction currently executing.
#[derive(Debug, Clone)]
struct CurTxn {
    /// Global sequence number (log-region key).
    seq: u64,
    /// Core-local 2-bit ID.
    id: TxnId,
    /// Lines read (for the working-set signature).
    read_set: BTreeSet<u64>,
    /// Lines written.
    write_set: BTreeSet<u64>,
}

/// Precomputed per-store-flavour action for one scheme configuration:
/// everything `store_word_bytes` needs that depends only on
/// `(SchemeFeatures, StoreKind)`, resolved once at machine
/// construction so the per-store hot path is a table lookup plus
/// straight-line metadata writes instead of re-deriving the Table I
/// degrade rules on every store. Indexed by [`StoreKind::index`].
#[derive(Debug, Clone, Copy, Default)]
struct StoreAction {
    /// Table I persist-bit column after the degrade rules.
    set_persist: bool,
    /// Table I log-bit column after the degrade rules.
    set_log: bool,
    /// Whether this flavour counts toward `stats.store_ts` (a `storeT`
    /// under a scheme with at least one selective feature).
    count_store_t: bool,
    /// Trace-only: the operands survived the degrade rules.
    honoured: bool,
    /// In-transaction stores of this flavour track per-word deferral
    /// (`!set_persist && !set_log`): a lazy log-free word has neither a
    /// record nor permission to persist before its commit marker.
    defer_word: bool,
}

/// An outstanding committed transaction with deferred lazy data.
#[derive(Debug, Clone)]
struct LazyTxn {
    seq: u64,
    id: TxnId,
    sig: Signature,
    /// The lines the transaction deferred, recorded at commit so a
    /// forced persist walks them directly instead of sweeping every
    /// cache entry. A recorded line may have persisted (overflow,
    /// takeover) since commit; the force re-checks each line's
    /// metadata, so the list is a superset, never ground truth.
    lines: Vec<PmAddr>,
}

/// One core's private state: its L1, its log buffer, its open
/// transaction and its redo spill area. The active core's context is
/// [`Machine::core`]; the others wait in [`Machine::parked`]. Both
/// sides are boxed, so switching cores exchanges two pointers — no
/// cache or shadow-map copies on the activation path. Everything else
/// — L2, L3, the device (WPQ + image + log), the transaction-ID
/// register and the dependency signatures — is shared by all cores,
/// exactly the split the paper's §III-D per-core budget implies.
#[derive(Debug, Clone)]
pub(crate) struct CoreCtx {
    l1: SetAssocCache,
    log_path: LogPath,
    cur: Option<CurTxn>,
    /// Redo discipline only: volatile holding area for logged lines
    /// evicted from the private cache before commit — in-place updates
    /// must not reach the persistence domain until the commit marker
    /// is durable (Figure 4, right). Each entry keeps the line's
    /// `log_bits` and `defer_bits` alongside its data: a spilled line
    /// may mix logged words with log-free and deferred ones, and
    /// commit must still tell them apart.
    redo_shadow: BTreeMap<u64, ([u8; LINE_BYTES], u8, u8)>,
}

/// The simulated SLPMT core. See the [crate docs](crate) for an
/// example.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    now: u64,
    /// The active core's private state — its L1, log buffer, open
    /// transaction and redo spill area — boxed so a core switch swaps
    /// one pointer with a parked slot instead of copying the structs.
    core: Box<CoreCtx>,
    l2: SetAssocCache,
    l3: SetAssocCache,
    dev: PmDevice,
    /// Outstanding lazy transactions, oldest first (parallel to the
    /// transaction-ID register's outstanding queue).
    lazy_txns: Vec<LazyTxn>,
    txreg: TxnIdRegister,
    /// Transactions of switched-out threads (§V-C): their cache-line
    /// metadata stays tagged with their 2-bit IDs while another
    /// thread's transaction runs.
    suspended: Vec<CurTxn>,
    txn_seq: u64,
    stats: MachineStats,
    /// Multi-core mode (`crate::multi`): the private contexts of the
    /// cores that are not currently executing. Empty — and `multi`
    /// false — on single-core machines, so none of the multi-core
    /// paths below change single-core behaviour. Boxed on purpose:
    /// `switch_core` swaps the active `Box<CoreCtx>` with a parked one
    /// by pointer, never moving the multi-KB context itself.
    #[allow(clippy::vec_box)]
    parked: Vec<Box<CoreCtx>>,
    /// `true` once [`enable_multi`](Self::enable_multi) ran: L2 is
    /// then shared between cores, which moves the private-domain
    /// duties (record flush, redo spill, deferred-word pre-image
    /// capture) from the L2→L3 boundary up to L1→L2.
    multi: bool,
    /// Test hook: inject a crash at a commit phase.
    commit_crash_point: Option<CommitPhase>,
    /// Reusable commit-path scratch: the per-commit line partition
    /// reuses these across transactions, so a steady-state commit
    /// allocates nothing. (Taken with `mem::take` for the duration of
    /// a commit; a crash-point early return drops one, which is fine —
    /// crashes rebuild the whole machine anyway.)
    scratch_lazy: Vec<PmAddr>,
    scratch_logged: Vec<PmAddr>,
    scratch_free: Vec<PmAddr>,
    /// Event tracing (`slpmt-trace`): `None` — the default — keeps
    /// every hook down to a single branch; `enable_tracing` installs a
    /// shared handle here, in the device and in every log buffer.
    tracer: Option<TraceHandle>,
    /// Per-flavour store actions precomputed from the scheme features
    /// (see [`StoreAction`]), indexed by [`StoreKind::index`].
    store_actions: [StoreAction; 5],
}

impl Machine {
    /// Builds a machine for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if battery-backed caches are combined with the redo
    /// discipline: with the caches inside the persistence domain there
    /// is no deferred write-back for redo to govern.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(
            !(cfg.battery_backed && cfg.features.discipline == Discipline::Redo),
            "battery-backed caches and the redo discipline are mutually exclusive"
        );
        let log_path = match cfg.features.buffer {
            BufferKind::Tiered => LogPath::Tiered(TieredLogBuffer::new()),
            BufferKind::AtomLines => LogPath::Atom(AtomLineBuffer::new()),
            BufferKind::EdeDirect => LogPath::Ede(EdeCombiner::new()),
        };
        let f = &cfg.features;
        let mut store_actions = [StoreAction::default(); 5];
        for kind in StoreKind::ALL {
            let eff = kind.effects(f.log_free, f.lazy);
            store_actions[kind.index()] = StoreAction {
                set_persist: eff.set_persist,
                set_log: eff.set_log,
                count_store_t: matches!(kind, StoreKind::StoreT { .. }) && (f.log_free || f.lazy),
                honoured: match kind {
                    StoreKind::Store => true,
                    StoreKind::StoreT { lazy, log_free } => {
                        eff.set_persist != lazy && eff.set_log != log_free
                    }
                },
                defer_word: !eff.set_persist && !eff.set_log,
            };
        }
        Machine {
            l2: SetAssocCache::new(cfg.caches.l2),
            l3: SetAssocCache::new(cfg.caches.l3),
            dev: PmDevice::new(cfg.pm.clone()),
            core: Box::new(CoreCtx {
                l1: SetAssocCache::new(cfg.caches.l1),
                log_path,
                cur: None,
                redo_shadow: BTreeMap::new(),
            }),
            lazy_txns: Vec::new(),
            txreg: TxnIdRegister::new(),
            suspended: Vec::new(),
            txn_seq: 0,
            stats: MachineStats::new(),
            now: 0,
            parked: Vec::new(),
            multi: false,
            commit_crash_point: None,
            scratch_lazy: Vec::new(),
            scratch_logged: Vec::new(),
            scratch_free: Vec::new(),
            tracer: None,
            store_actions,
            cfg,
        }
    }

    /// Installs a fresh bounded tracer (at most `capacity_per_core`
    /// buffered records per core, oldest dropped first) into the
    /// machine, its device and every log buffer, and returns the
    /// shared handle. All timestamps are simulated (the durable-event
    /// counter, per-core sequence numbers and the cycle clock), so a
    /// trace replays bit-identically from the same seeded run.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_per_core` is zero.
    pub fn enable_tracing(&mut self, capacity_per_core: usize) -> TraceHandle {
        let h = slpmt_trace::tracer(capacity_per_core);
        self.tracer = Some(h.clone());
        self.dev.set_tracer(Some(h.clone()));
        if let LogPath::Tiered(buf) = &mut self.core.log_path {
            buf.set_tracer(Some(h.clone()));
        }
        for ctx in &mut self.parked {
            if let LogPath::Tiered(buf) = &mut ctx.log_path {
                buf.set_tracer(Some(h.clone()));
            }
        }
        h
    }

    /// Whether event tracing is enabled (and compiled in).
    pub fn trace_enabled(&self) -> bool {
        !cfg!(feature = "no-trace") && self.tracer.is_some()
    }

    /// Drains and returns the records captured so far, in deterministic
    /// emission order. Empty when tracing was never enabled.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        match &self.tracer {
            Some(t) => t.borrow_mut().take(),
            None => Vec::new(),
        }
    }

    /// Attributes subsequent events to `core` (multi-core wrapper).
    pub(crate) fn trace_set_core(&self, core: u8) {
        if cfg!(feature = "no-trace") {
            return;
        }
        if let Some(t) = &self.tracer {
            t.borrow_mut().set_core(core);
        }
    }

    /// Runs `f` against the tracer with the clock stamped to `now` —
    /// a single branch (plus a constant-false feature check the
    /// compiler deletes) when tracing is off.
    pub(crate) fn trace(&self, f: impl FnOnce(&mut Tracer)) {
        if cfg!(feature = "no-trace") {
            return;
        }
        if let Some(t) = &self.tracer {
            let mut t = t.borrow_mut();
            t.set_clock(self.now);
            f(&mut t);
        }
    }

    /// Arms a one-shot crash injection at the given commit phase: the
    /// next `tx_commit` performs a power failure at that point and
    /// returns. Used by the Figure 4 ordering tests.
    ///
    /// # Panics
    ///
    /// Panics if the active commit sequence never visits `phase`: the
    /// injection would be silently skipped and the commit would finish
    /// normally with the crash point still armed — a test arming it
    /// would pass vacuously. `AfterLogFree` exists only under the redo
    /// discipline, `AfterData` only under undo, and battery-backed
    /// commit (§V-E) persists no data lines, so it visits only
    /// `AfterRecords` and `AfterMarker`.
    pub fn set_commit_crash_point(&mut self, phase: Option<CommitPhase>) {
        if let Some(p) = phase {
            let supported = if self.cfg.battery_backed {
                matches!(p, CommitPhase::AfterRecords | CommitPhase::AfterMarker)
            } else {
                match self.cfg.features.discipline {
                    Discipline::Redo => p != CommitPhase::AfterData,
                    Discipline::Undo => p != CommitPhase::AfterLogFree,
                }
            };
            assert!(
                supported,
                "commit phase {p:?} is never visited by {} \
                 (discipline {:?}, battery_backed {}): the crash point \
                 would be silently ignored",
                self.cfg.scheme, self.cfg.features.discipline, self.cfg.battery_backed
            );
        }
        self.commit_crash_point = phase;
    }

    /// Arms the device's persist-event crash scheduler: once `k` total
    /// persist events have been accepted, every later durable mutation
    /// is dropped (see `PmDevice::arm_crash_at_event`). Unlike
    /// [`set_commit_crash_point`](Self::set_commit_crash_point) this
    /// covers *every* durable-state mutation — background drains,
    /// forced lazy persists, log truncation — not just the four
    /// commit-sequence phases.
    pub fn arm_crash_at_event(&mut self, k: u64) {
        self.dev.arm_crash_at_event(k);
    }

    /// Installs a deterministic media-fault plan on the device (tear
    /// the crash-boundary persist, poison/flip durable state after the
    /// crash, jitter WPQ drains). An empty plan — the default — leaves
    /// behaviour bit-identical; see `slpmt_pmem::FaultPlan`.
    pub fn set_fault_plan(&mut self, plan: slpmt_pmem::FaultPlan) {
        self.dev.set_fault_plan(plan);
    }

    /// `true` once an armed persist-event crash has tripped (the
    /// durable state is frozen; call [`crash`](Self::crash) to also
    /// discard volatile state and recover).
    pub fn crash_tripped(&self) -> bool {
        self.dev.crash_tripped()
    }

    /// Clears residual media poison from `addr`'s line without
    /// rewriting it — the online-recovery background scrub re-reading
    /// a degraded line and re-establishing its ECC. Returns whether
    /// the line was poisoned.
    pub fn scrub_line(&mut self, addr: PmAddr) -> bool {
        self.dev.clear_poison(addr)
    }

    /// Total persist events the device has accepted (1-based indices).
    pub fn persist_event_count(&self) -> u64 {
        self.dev.event_count()
    }

    // ------------------------------------------------------------------
    // Accessors

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Event counters.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// The persistent-memory device (image, log region, traffic).
    pub fn device(&self) -> &PmDevice {
        &self.dev
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The simulated scheme.
    pub fn scheme(&self) -> Scheme {
        self.cfg.scheme
    }

    /// `true` while a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.core.cur.is_some()
    }

    /// Sequence number of the most recently begun transaction.
    pub fn txn_seq(&self) -> u64 {
        self.txn_seq
    }

    /// Number of committed transactions whose lazy data is still
    /// volatile.
    pub fn outstanding_lazy_txns(&self) -> usize {
        self.lazy_txns.len()
    }

    /// WPQ occupancy at the current machine clock — entries accepted
    /// but not yet drained to the medium. Service front ends key
    /// admission/backpressure decisions off this depth.
    pub fn wpq_depth(&self) -> usize {
        self.dev.wpq_occupancy(self.now)
    }

    /// Configured WPQ capacity in 64-byte entries.
    pub fn wpq_entries(&self) -> usize {
        self.dev.wpq_entries()
    }

    /// Enables deterministic WPQ drain-completion jitter within
    /// `window` cycles (0 disables it) without arming any media
    /// fault — the knob backpressure studies sweep.
    pub fn set_wpq_drain_jitter(&mut self, window: u64, seed: u64) {
        self.dev.set_wpq_drain_jitter(window, seed);
    }

    /// Charges `cycles` of pure compute (workload algorithmic work).
    pub fn compute(&mut self, cycles: u64) {
        self.now += cycles;
        self.stats.compute_cycles += cycles;
    }

    /// Updates the PM write latency (Figure 12 sensitivity sweep).
    pub fn set_write_latency_ns(&mut self, ns: u64) {
        let cycles = self.cfg.pm.ns_to_cycles(ns);
        self.cfg.pm.pm_write_cycles = cycles;
        self.dev.set_write_latency_cycles(cycles);
    }

    // ------------------------------------------------------------------
    // Untimed inspection (no stats, no LRU, no timing)

    /// Reads the current *logical* value of a word: the newest copy in
    /// any cache level, falling back to the persistent image. Untimed.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn peek_u64(&self, addr: PmAddr) -> u64 {
        assert!(addr.is_word_aligned(), "unaligned peek at {addr}");
        let line = addr.line();
        let off = addr.offset_in_line();
        let from_entry = |e: &Entry| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&e.data[off..off + 8]);
            u64::from_le_bytes(b)
        };
        if let Some(e) = self.core.l1.peek(line) {
            return from_entry(e);
        }
        if let Some(e) = self.l2.peek(line) {
            return from_entry(e);
        }
        if let Some(e) = self.l3.peek(line) {
            return from_entry(e);
        }
        if let Some((data, _, _)) = self.core.redo_shadow.get(&line.raw()) {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[off..off + 8]);
            return u64::from_le_bytes(b);
        }
        for ctx in &self.parked {
            if let Some(e) = ctx.l1.peek(line) {
                return from_entry(e);
            }
            if let Some((data, _, _)) = ctx.redo_shadow.get(&line.raw()) {
                let mut b = [0u8; 8];
                b.copy_from_slice(&data[off..off + 8]);
                return u64::from_le_bytes(b);
            }
        }
        self.dev.image().read_u64(addr)
    }

    /// Reads `buf.len()` logical bytes starting at `addr`. Untimed.
    pub fn peek_bytes(&self, addr: PmAddr, buf: &mut [u8]) {
        // Start from the durable image, then overlay cached lines.
        self.dev.image().read(addr, buf);
        let first = addr.line().raw();
        let last = (addr.raw() + buf.len() as u64 - 1) & !(LINE_BYTES as u64 - 1);
        let mut line = first;
        while line <= last {
            let la = PmAddr::new(line);
            let shadow = self.core.redo_shadow.get(&line).map(|(d, _, _)| d);
            let cached = self
                .core
                .l1
                .peek(la)
                .or_else(|| self.l2.peek(la))
                .or_else(|| self.l3.peek(la))
                .map(|e| &e.data)
                .or(shadow)
                .or_else(|| {
                    self.parked.iter().find_map(|c| {
                        c.l1.peek(la)
                            .map(|e| &e.data)
                            .or_else(|| c.redo_shadow.get(&line).map(|(d, _, _)| d))
                    })
                });
            if let Some(e) = cached {
                // Intersect [line, line+64) with [addr, addr+len).
                let lo = line.max(addr.raw());
                let hi = (line + LINE_BYTES as u64).min(addr.raw() + buf.len() as u64);
                let src = (lo - line) as usize;
                let dst = (lo - addr.raw()) as usize;
                let n = (hi - lo) as usize;
                buf[dst..dst + n].copy_from_slice(&e[src..src + n]);
            }
            line += LINE_BYTES as u64;
        }
    }

    /// Out-of-band initialisation: writes directly to the persistent
    /// image, untimed and uncounted. Must not be used while any line of
    /// the range is cached.
    ///
    /// # Panics
    ///
    /// Panics if a cached copy of an affected line exists (it would go
    /// stale).
    pub fn setup_write(&mut self, addr: PmAddr, data: &[u8]) {
        let mut line = addr.line().raw();
        let end = addr.raw() + data.len() as u64;
        while line < end {
            let la = PmAddr::new(line);
            assert!(
                self.core.l1.peek(la).is_none()
                    && self.l2.peek(la).is_none()
                    && self.l3.peek(la).is_none()
                    && !self.core.redo_shadow.contains_key(&la.raw())
                    && self
                        .parked
                        .iter()
                        .all(|c| c.l1.peek(la).is_none() && !c.redo_shadow.contains_key(&la.raw())),
                "setup_write would bypass a cached copy of line {la}"
            );
            line += LINE_BYTES as u64;
        }
        self.dev.image_mut().write(addr, data);
    }

    /// Pre-faults the durable image's backing pages for
    /// `[addr, addr + bytes)` (see [`slpmt_pmem::PmSpace::prefault`]).
    /// A host-side arena warm-up for benchmark drivers: no simulated
    /// cycles, no change to any simulated state.
    pub fn prefault_image(&mut self, addr: PmAddr, bytes: u64) {
        self.dev.image_mut().prefault(addr.raw(), bytes);
    }

    // ------------------------------------------------------------------
    // Persist helpers

    /// Background persist: the requester pays only WPQ backpressure.
    fn persist_line_async(&mut self, addr: PmAddr, data: &[u8; LINE_BYTES]) {
        let accepted = self.dev.persist_line(self.now, addr, data);
        let stall = accepted.saturating_sub(self.now + self.cfg.pm.wpq_accept_cycles);
        self.now += stall;
    }

    /// Commit-path persist: the core waits for WPQ acceptance (ADR
    /// durability point).
    fn persist_line_sync(&mut self, addr: PmAddr, data: &[u8; LINE_BYTES]) {
        self.now = self.dev.persist_line(self.now, addr, data);
    }

    // ------------------------------------------------------------------
    // Explicit persistence instructions (software PTM protocols)

    /// `clwb`: writes back the cached copy of `addr`'s line to the
    /// device without invalidating it. The requester waits for WPQ
    /// acceptance — under ADR that is the durability point, so a
    /// `clwb`'d line is durable in program order even before the next
    /// `sfence` (the fence only orders *later* persists behind the
    /// drain). Clean or uncached lines cost the issue cycle and
    /// nothing else. Returns whether a dirty copy was written back.
    pub fn clwb(&mut self, addr: PmAddr) -> bool {
        let line = addr.line();
        self.now += self.cfg.store_issue_cycles;
        self.stats.flushes += 1;
        let found = [&mut self.core.l1, &mut self.l2, &mut self.l3]
            .into_iter()
            .find_map(|c| {
                c.peek_mut(line).and_then(|e| {
                    if e.meta.dirty {
                        e.meta.dirty = false;
                        e.meta.txn_id = None;
                        Some((e.addr, e.data))
                    } else {
                        None
                    }
                })
            });
        match found {
            Some((la, data)) => {
                self.persist_line_sync(la, &data);
                true
            }
            None => false,
        }
    }

    /// `sfence`: stalls the core until every persist accepted so far
    /// has drained from the WPQ to the medium — the ordering point the
    /// software commit protocols fence on.
    pub fn sfence(&mut self) {
        self.stats.fences += 1;
        let drained = self.dev.drained_by(self.now);
        self.stats.fence_stall_cycles += drained.saturating_sub(self.now);
        self.now = self.now.max(drained);
    }

    /// Mutable event counters (software PTM protocols account their
    /// log traffic here).
    pub fn stats_mut(&mut self) -> &mut MachineStats {
        &mut self.stats
    }

    /// Synchronous, timed line persist straight to the device for
    /// recovery repairs: the caller provides the full line image. The
    /// line must not be cached (recovery runs on a cold machine).
    pub fn persist_line_direct(&mut self, addr: PmAddr, data: &[u8; LINE_BYTES]) {
        debug_assert!(
            self.core.l1.peek(addr).is_none()
                && self.l2.peek(addr).is_none()
                && self.l3.peek(addr).is_none(),
            "persist_line_direct would bypass a cached copy of {addr}"
        );
        self.persist_line_sync(addr.line(), data);
    }

    fn persist_flush(&mut self, ev: FlushEvent, sync: bool) {
        let budget = self.cfg.pm.wpq_accept_cycles * ev.lines;
        let accepted = self.dev.persist_log_pack(self.now, &ev.entries);
        if sync {
            self.now = accepted;
        } else {
            let stall = accepted.saturating_sub(self.now + budget);
            self.now += stall;
        }
    }

    // ------------------------------------------------------------------
    // Cache movement

    /// Brings the line containing `addr` into L1, charging access
    /// latency and performing eviction cascades with their metadata
    /// transforms.
    fn ensure_l1(&mut self, addr: PmAddr) {
        let line = addr.line();
        self.now += self.cfg.caches.l1.hit_cycles;
        if self.core.l1.lookup(line).is_some() {
            return;
        }
        if self.multi {
            // Coherence probe: the line may live in another core's
            // private L1. Migrate it here with its metadata intact —
            // lazy tags keep their meaning across cores (the signature
            // set and ID register are shared), and open-transaction
            // lines of other cores never reach this point: the
            // cross-core conflict check aborts the owner first.
            let hit = self.parked.iter_mut().find_map(|c| c.l1.migrate_out(line));
            if let Some(e) = hit {
                self.now += self.cfg.caches.l2.hit_cycles; // c2c transfer
                self.trace(|t| {
                    t.emit(TraceEvent::CacheFetch {
                        level: 1,
                        addr: line.raw(),
                        replicated: false,
                    });
                });
                self.insert_l1(e);
                return;
            }
        }
        self.now += self.cfg.caches.l2.hit_cycles;
        if self.l2.lookup(line).is_some() {
            let mut e = self.l2.remove(line).expect("looked up");
            // Figure 5: replicate each L2 group bit into four L1 bits.
            let replicated = e.meta.log_bits != 0;
            e.meta.log_bits = l2_logbits_to_l1(e.meta.log_bits);
            self.trace(|t| {
                t.emit(TraceEvent::CacheFetch {
                    level: 2,
                    addr: line.raw(),
                    replicated,
                });
            });
            self.insert_l1(e);
            return;
        }
        self.now += self.cfg.caches.l3.hit_cycles;
        if self.l3.lookup(line).is_some() {
            let mut e = self.l3.remove(line).expect("looked up");
            // L3 keeps no SLPMT metadata: bits re-initialise to zero.
            e.meta = LineMeta::clean();
            self.trace(|t| {
                t.emit(TraceEvent::CacheFetch {
                    level: 3,
                    addr: line.raw(),
                    replicated: false,
                });
            });
            self.insert_l1(e);
            return;
        }
        // Redo shadow: a logged line spilled mid-transaction returns
        // dirty and re-owned by the current transaction, keeping its
        // log and defer bits — without them the commit partition would
        // treat the line as log-free and persist its logged or
        // deferred words in place before the marker.
        if let Some((data, log_bits, defer_bits)) = self.core.redo_shadow.remove(&line.raw()) {
            let mut meta = LineMeta::clean();
            meta.dirty = true;
            meta.persist = true;
            meta.log_bits = log_bits;
            meta.defer_bits = defer_bits;
            meta.txn_id = self.core.cur.as_ref().map(|c| c.id);
            self.insert_l1(Entry::new(line, data, meta));
            return;
        }
        // LLC miss: fetch from the persistent medium.
        self.now += self.dev.read_cycles();
        let data = self.dev.image().read_line(line);
        self.trace(|t| {
            t.emit(TraceEvent::CacheFetch {
                level: 4,
                addr: line.raw(),
                replicated: false,
            });
        });
        self.insert_l1(Entry::new(line, data, LineMeta::clean()));
    }

    fn insert_l1(&mut self, entry: Entry) {
        if let Some(victim) = self.core.l1.insert(entry) {
            self.evict_l1_to_l2(victim);
        }
    }

    fn evict_l1_to_l2(&mut self, mut victim: Entry) {
        // Speculative logging (§III-B1): complete partially-logged
        // groups so the L2 conjunction keeps them marked.
        if self.cfg.features.speculative_logging
            && self.cfg.features.granularity == Granularity::Word
        {
            if let (Some(cur), LogPath::Tiered(_)) = (&self.core.cur, &self.core.log_path) {
                if victim.meta.txn_id == Some(cur.id) && victim.meta.log_bits != 0 {
                    let seq = cur.seq;
                    let fills = speculative_fill_words(victim.meta.log_bits);
                    let mut events = Vec::new();
                    // Deferred words' durable pre-state lives in the
                    // image, not the cache (see `log_store`).
                    let image = self.dev.image().read_line(victim.addr);
                    if let LogPath::Tiered(buf) = &mut self.core.log_path {
                        for w in fills {
                            let src = if victim.meta.word_deferred(w) {
                                &image
                            } else {
                                &victim.data
                            };
                            let mut pre = [0u8; WORD_BYTES];
                            pre.copy_from_slice(&src[w * 8..w * 8 + 8]);
                            let rec = LogRecord::new(seq, victim.addr.add((w * 8) as u64), &pre);
                            self.stats.log_records_created += 1;
                            events.extend(buf.insert(rec));
                            victim.meta.set_word_logged(w);
                        }
                    }
                    for ev in events {
                        self.persist_flush(ev, false);
                    }
                }
            }
        }
        if self.multi {
            // L2 is shared between cores, so this is the private-domain
            // boundary: the duties the single-core hierarchy performs at
            // L2→L3 — record flush (§III-A), redo spill, deferred-word
            // pre-image capture — happen here, before other cores can
            // see (or evict) the line.
            let ev = match &mut self.core.log_path {
                LogPath::Tiered(buf) => buf.flush_line(victim.addr),
                LogPath::Atom(buf) => buf.flush_line(victim.addr),
                LogPath::Ede(e) => e.flush_line(victim.addr),
            };
            if let Some(ev) = ev {
                self.persist_flush(ev, false);
            }
            if self.cfg.features.discipline == Discipline::Redo
                && self.core.cur.is_some()
                && (victim.meta.log_bits != 0 || victim.meta.defer_bits != 0)
                && victim.meta.dirty
            {
                // A logged open-transaction line must not become visible
                // to the shared hierarchy before the marker. Spilled with
                // L1-format bits — `ensure_l1` restores them into L1.
                self.core.redo_shadow.insert(
                    victim.addr.raw(),
                    (victim.data, victim.meta.log_bits, victim.meta.defer_bits),
                );
                return;
            }
            if victim.meta.dirty && victim.meta.defer_bits != 0 && self.core.cur.is_some() {
                // Deferred (lazy log-free) words: log their durable
                // pre-images so a later steal out of the shared levels
                // stays repairable (same rule as the L2→L3 path).
                let seq = self.core.cur.as_ref().expect("checked").seq;
                let image = self.dev.image().read_line(victim.addr);
                let mut events = Vec::new();
                if let LogPath::Tiered(buf) = &mut self.core.log_path {
                    for w in 0..LINE_BYTES / WORD_BYTES {
                        if victim.meta.word_deferred(w) {
                            let mut pre = [0u8; WORD_BYTES];
                            pre.copy_from_slice(&image[w * 8..w * 8 + 8]);
                            let rec = LogRecord::new(seq, victim.addr.add((w * 8) as u64), &pre);
                            self.stats.log_records_created += 1;
                            events.extend(buf.insert(rec));
                        }
                    }
                    events.extend(buf.drain_all());
                }
                for ev in events {
                    self.persist_flush(ev, true);
                }
                victim.meta.defer_bits = 0;
            }
        }
        // Figure 5: conjunction of each group of four L1 bits.
        let l1_bits = victim.meta.log_bits;
        victim.meta.log_bits = l1_logbits_to_l2(l1_bits);
        self.trace(|t| {
            t.emit(TraceEvent::CacheEvict {
                level: 1,
                addr: victim.addr.raw(),
                dirty: victim.meta.dirty,
                logged: l1_bits != 0,
            });
            if l1_bits != 0 {
                t.emit(TraceEvent::LogBitConj {
                    addr: victim.addr.raw(),
                    l1_bits,
                    l2_bits: victim.meta.log_bits,
                });
            }
        });
        if let Some(victim2) = self.l2.insert(victim) {
            self.evict_l2_to_l3(victim2);
        }
    }

    fn evict_l2_to_l3(&mut self, mut victim: Entry) {
        self.trace(|t| {
            t.emit(TraceEvent::CacheEvict {
                level: 2,
                addr: victim.addr.raw(),
                dirty: victim.meta.dirty,
                logged: victim.meta.log_bits != 0,
            });
        });
        // Before a line's data leaves the private cache, its buffered
        // log records must persist (§III-A).
        let ev = match &mut self.core.log_path {
            LogPath::Tiered(buf) => buf.flush_line(victim.addr),
            LogPath::Atom(buf) => buf.flush_line(victim.addr),
            LogPath::Ede(e) => e.flush_line(victim.addr),
        };
        if let Some(ev) = ev {
            self.persist_flush(ev, false);
        }
        // Battery-backed caches: an uncommitted line overflowing to PM
        // is the only case that needs an undo record (§V-E) — the
        // pre-image is the line's current image content, which the
        // transaction never overwrote in place.
        if self.cfg.battery_backed
            && victim.meta.dirty
            && self
                .core
                .cur
                .as_ref()
                .is_some_and(|c| Some(c.id) == victim.meta.txn_id)
        {
            let seq = self.core.cur.as_ref().expect("checked").seq;
            let pre = self.dev.image().read_line(victim.addr);
            let rec = LogRecord::new(seq, victim.addr, &pre);
            self.stats.log_records_created += 1;
            let events = match &mut self.core.log_path {
                LogPath::Tiered(buf) => buf.insert(rec),
                _ => vec![slpmt_logbuf::record::flush_event(vec![rec])],
            };
            for ev in events {
                self.persist_flush(ev, false);
            }
        }
        // Redo discipline: a logged line of the open transaction must
        // not reach the persistence domain before the commit marker —
        // spill it to the volatile shadow instead (the DudeTM-style
        // redirection redo hardware performs).
        if self.cfg.features.discipline == Discipline::Redo
            && self.core.cur.is_some()
            && (victim.meta.log_bits != 0 || victim.meta.defer_bits != 0)
            && victim.meta.dirty
        {
            self.core.redo_shadow.insert(
                victim.addr.raw(),
                (victim.data, victim.meta.log_bits, victim.meta.defer_bits),
            );
            return;
        }
        // An overflowing line may carry deferred (lazy log-free) words
        // of the open transaction: they have no record and must not be
        // stolen into PM before the commit marker. Log their *durable*
        // pre-images first (the image still holds them — the deferral
        // kept every earlier persist away), so a rollback can repair
        // the steal below.
        if victim.meta.dirty && victim.meta.defer_bits != 0 && self.core.cur.is_some() {
            let seq = self.core.cur.as_ref().expect("checked").seq;
            let image = self.dev.image().read_line(victim.addr);
            let mut events = Vec::new();
            if let LogPath::Tiered(buf) = &mut self.core.log_path {
                for w in 0..LINE_BYTES / WORD_BYTES {
                    if victim.meta.word_deferred(w) {
                        let mut pre = [0u8; WORD_BYTES];
                        pre.copy_from_slice(&image[w * 8..w * 8 + 8]);
                        let rec = LogRecord::new(seq, victim.addr.add((w * 8) as u64), &pre);
                        self.stats.log_records_created += 1;
                        events.extend(buf.insert(rec));
                    }
                }
                // The records must be durable before the steal below:
                // abort and recovery repair from the device log only.
                events.extend(buf.drain_all());
            }
            for ev in events {
                self.persist_flush(ev, true);
            }
            victim.meta.defer_bits = 0;
        }
        // Dirty data overflowing the private cache writes back to PM —
        // the natural path by which lazy data becomes durable.
        if victim.meta.dirty {
            if victim.meta.lazy_pending {
                self.stats.lazy_lines_overflowed += 1;
            }
            let data = victim.data;
            self.signature_persist_check(victim.addr);
            self.persist_line_async(victim.addr, &data);
            victim.meta.dirty = false;
            victim.meta.lazy_pending = false;
        }
        victim.meta = LineMeta::clean();
        if let Some(victim3) = self.l3.insert(victim) {
            // L3 victims are clean by construction: silent drop.
            debug_assert!(!victim3.meta.dirty);
        }
    }

    // ------------------------------------------------------------------
    // Lazy-persistency enforcement

    /// Persists all deferred lines of every outstanding transaction up
    /// to and including `id`, releasing their IDs and signatures.
    fn force_persist_through(&mut self, id: TxnId) {
        let freed = self.txreg.reclaim_through(id);
        if freed.is_empty() {
            return;
        }
        self.trace(|t| {
            for lt in &self.lazy_txns {
                if freed.contains(&lt.id) {
                    t.emit(TraceEvent::TxnIdRetire {
                        txn: lt.seq,
                        id: lt.id.raw(),
                    });
                }
            }
        });
        // Collect the deferred lines of the freed transactions from the
        // lists recorded at commit (a superset of the still-pending
        // lines), then keep only lines whose metadata still says
        // lazy-pending for a freed ID — exactly the set a full sweep of
        // L1 + L2 + every parked core's L1 would find, without visiting
        // every cache entry on the hot path.
        let mut doomed: Vec<PmAddr> = Vec::new();
        for lt in &self.lazy_txns {
            if freed.contains(&lt.id) {
                doomed.extend_from_slice(&lt.lines);
            }
        }
        self.lazy_txns.retain(|lt| !freed.contains(&lt.id));
        doomed.sort();
        doomed.dedup();
        doomed.retain(|&addr| {
            self.core
                .l1
                .peek(addr)
                .or_else(|| self.l2.peek(addr))
                .or_else(|| self.parked.iter().find_map(|c| c.l1.peek(addr)))
                .is_some_and(|e| {
                    e.meta.lazy_pending && e.meta.txn_id.is_some_and(|t| freed.contains(&t))
                })
        });
        self.trace(|t| {
            t.emit(TraceEvent::SigForcedPersist {
                id: id.raw(),
                lines: doomed.len().min(u32::MAX as usize) as u32,
            });
        });
        for addr in doomed {
            let data = {
                let e = self
                    .core
                    .l1
                    .peek_mut(addr)
                    .or_else(|| self.l2.peek_mut(addr))
                    .or_else(|| self.parked.iter_mut().find_map(|c| c.l1.peek_mut(addr)))
                    .expect("collected above");
                let d = e.data;
                e.meta.dirty = false;
                e.meta.lazy_pending = false;
                e.meta.txn_id = None;
                d
            };
            // Forced persists are off the critical path (§III-C3): the
            // blocked access waits only for WPQ acceptance ordering,
            // i.e. backpressure, not for the full medium write.
            self.persist_line_async(addr, &data);
            self.stats.lazy_lines_forced += 1;
        }
    }

    /// Coherence-time check before an access to `addr` proceeds, based
    /// on the line's transaction-ID tag.
    ///
    /// * A **load** of lazily-persistent data owned by an earlier
    ///   transaction forces that transaction's deferred lines durable
    ///   first (§III-C3): the reader may derive new lazy data from the
    ///   value, and recovery re-derivation must see it durably.
    /// * A **store** instead *takes over* the line (§III-C1): the
    ///   deferral is cancelled or re-owned through the normal Table I
    ///   bit updates, and the undo log captures the pre-image — no
    ///   immediate persist is required for recoverability.
    ///
    /// The takeover is only sound when an abort of the *new*
    /// transaction can restore the lazy value: the undo pre-image
    /// record is what protects it. A store that creates no pre-image —
    /// a log-free store (`will_log` false), or any store under the
    /// redo discipline (redo records hold new values, not pre-images)
    /// — must instead force the earlier transaction's deferred lines
    /// durable before overwriting, or an abort would drop the line's
    /// only copy of committed data.
    fn lazy_checks(&mut self, addr: PmAddr, is_write: bool, will_log: bool) {
        // HTM-style conflict with a switched-out thread's transaction:
        // the requester wins, the suspended transaction aborts (§V-C).
        // The abort invalidates and repairs the accessed line, so it
        // must be re-fetched afterwards.
        if let Some(victim) = self.suspended_owner(addr, is_write) {
            self.abort_suspended(victim);
            self.ensure_l1(addr);
        }
        let tag = self
            .core
            .l1
            .peek(addr)
            .and_then(|e| (e.meta.lazy_pending).then_some(e.meta.txn_id).flatten());
        if let Some(id) = tag {
            let is_cur = self.core.cur.as_ref().is_some_and(|c| c.id == id);
            if is_cur {
                return;
            }
            let takeover_sound =
                !self.multi || (will_log && self.cfg.features.discipline == Discipline::Undo);
            if is_write && takeover_sound {
                // Ownership conversion (§III-C1): the line leaves the
                // earlier transaction's custody; the store path re-tags
                // it and sets the persist bit per its own operands.
                // With multiple cores the committed value's only copy
                // is this cached line, and a cross-core abort of the
                // new owner can only restore it from an undo pre-image
                // — so takeover is allowed there only when the incoming
                // store is about to log one; every other store forces
                // the deferred line durable first.
                let e = self.core.l1.peek_mut(addr).expect("line resident");
                e.meta.lazy_pending = false;
                e.meta.txn_id = None;
            } else {
                self.force_persist_through(id);
            }
        }
    }

    /// Persist-ordering check (§III-C): before *any* update reaches the
    /// persistence domain, every lazily-persistent datum that depends
    /// on the updated location must already be durable. The dependency
    /// signatures record each committed transaction's read set (minus
    /// locations it overwrote eagerly — their pre-images are gone
    /// regardless, so sound lazy data cannot depend on them); a hit
    /// forces the matching transaction and all earlier ones.
    fn signature_persist_check(&mut self, addr: PmAddr) {
        let hit = self
            .lazy_txns
            .iter()
            .rev() // newest match wins: persist through it covers priors
            .find(|lt| lt.sig.maybe_contains(addr))
            .map(|lt| lt.id);
        if let Some(id) = hit {
            self.stats.signature_hits += 1;
            self.trace(|t| {
                t.emit(TraceEvent::SigHit {
                    addr: addr.line().raw(),
                    id: id.raw(),
                });
            });
            self.force_persist_through(id);
        }
    }

    // ------------------------------------------------------------------
    // Logging

    fn log_store(&mut self, addr: PmAddr, new_bytes: [u8; WORD_BYTES]) {
        let Some(cur) = &self.core.cur else { return };
        let seq = cur.seq;
        let line = addr.line();
        let word = addr.word_in_line();
        let redo = self.cfg.features.discipline == Discipline::Redo;
        match self.cfg.features.granularity {
            Granularity::Word => {
                let (cached, logged, deferred) = {
                    let e = self.core.l1.peek(line).expect("line resident");
                    let mut pre = [0u8; WORD_BYTES];
                    pre.copy_from_slice(&e.data[word * 8..word * 8 + 8]);
                    (pre, e.meta.word_logged(word), e.meta.word_deferred(word))
                };
                // A word the open transaction already scribbled with a
                // deferred (lazy log-free) store holds that scribble in
                // the cache; the rollback target is the *durable*
                // pre-state, still intact in the image because the
                // deferral kept every persist away.
                let pre = if deferred {
                    let img = self.dev.image().read_line(line);
                    let mut p = [0u8; WORD_BYTES];
                    p.copy_from_slice(&img[word * 8..word * 8 + 8]);
                    p
                } else {
                    cached
                };
                // Undo records carry the pre-image; redo records the
                // final value of the word.
                let payload = if redo { new_bytes } else { pre };
                if logged {
                    if redo {
                        // The record must hold the *final* value: patch
                        // it in the buffer, or append a fresh record if
                        // it already flushed (forward replay applies
                        // the newest last).
                        let patched = match &mut self.core.log_path {
                            LogPath::Tiered(buf) => buf.update_word(seq, addr.word(), &payload),
                            _ => unreachable!("redo requires the tiered buffer"),
                        };
                        if !patched {
                            self.stats.log_records_created += 1;
                            let events: Vec<FlushEvent> = match &mut self.core.log_path {
                                LogPath::Tiered(buf) => {
                                    buf.insert(LogRecord::new(seq, addr.word(), &payload))
                                }
                                _ => unreachable!(),
                            };
                            for ev in events {
                                self.persist_flush(ev, false);
                            }
                        }
                    }
                    return;
                }
                self.stats.log_records_created += 1;
                let events: Vec<FlushEvent> = match &mut self.core.log_path {
                    LogPath::Tiered(buf) => buf.insert(LogRecord::new(seq, addr.word(), &payload)),
                    LogPath::Ede(e) => e.log_word(seq, addr.word(), payload).into_iter().collect(),
                    LogPath::Atom(_) => unreachable!("ATOM logs at line granularity"),
                };
                for ev in events {
                    self.persist_flush(ev, false);
                }
                self.core
                    .l1
                    .peek_mut(line)
                    .expect("line resident")
                    .meta
                    .set_word_logged(word);
                self.trace(|t| {
                    t.emit(TraceEvent::LogBit {
                        addr: line.raw(),
                        word: word as u8,
                        lazy: deferred,
                    });
                });
            }
            Granularity::Line => {
                let (mut pre, need, defer_bits) = {
                    let e = self.core.l1.peek(line).expect("line resident");
                    (e.data, e.meta.log_bits == 0, e.meta.defer_bits)
                };
                if !need {
                    return;
                }
                // Same-transaction deferred scribbles must not leak
                // into the whole-line pre-image: rollback restores the
                // durable pre-state, which for those words is still in
                // the image (the deferral kept every persist away).
                if defer_bits != 0 {
                    let img = self.dev.image().read_line(line);
                    for w in 0..LINE_BYTES / WORD_BYTES {
                        if defer_bits & (1 << w) != 0 {
                            pre[w * 8..w * 8 + 8].copy_from_slice(&img[w * 8..w * 8 + 8]);
                        }
                    }
                }
                self.stats.log_records_created += 1;
                let events: Vec<FlushEvent> = match &mut self.core.log_path {
                    LogPath::Tiered(buf) => buf.insert(LogRecord::new(seq, line, &pre)),
                    LogPath::Atom(buf) => buf.insert_line(seq, line, pre).into_iter().collect(),
                    LogPath::Ede(_) => unreachable!("EDE logs at word granularity"),
                };
                for ev in events {
                    self.persist_flush(ev, false);
                }
                self.core
                    .l1
                    .peek_mut(line)
                    .expect("line resident")
                    .meta
                    .log_bits = 0xFF;
            }
        }
    }

    // ------------------------------------------------------------------
    // Instruction interface

    /// Executes a load of the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn load_u64(&mut self, addr: PmAddr) -> u64 {
        assert!(addr.is_word_aligned(), "unaligned load at {addr}");
        self.stats.loads += 1;
        self.now += self.cfg.load_issue_cycles;
        self.ensure_l1(addr);
        self.lazy_checks(addr, false, false);
        if let Some(cur) = &mut self.core.cur {
            cur.read_set.insert(addr.line().raw());
        }
        let e = self.core.l1.peek(addr.line()).expect("line resident");
        let off = addr.offset_in_line();
        let mut b = [0u8; 8];
        b.copy_from_slice(&e.data[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Executes a store of `value` to the word at `addr` with the given
    /// instruction flavour (Table I).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn store_u64(&mut self, addr: PmAddr, value: u64, kind: StoreKind) {
        self.store_word_bytes(addr, value.to_le_bytes(), kind);
    }

    fn store_word_bytes(&mut self, addr: PmAddr, bytes: [u8; WORD_BYTES], kind: StoreKind) {
        assert!(addr.is_word_aligned(), "unaligned store at {addr}");
        // All (scheme, flavour) dispatch — Table I bit effects, degrade
        // rules, honoured-ness, deferral — was resolved into the action
        // table at construction; the hot path is a lookup.
        let act = self.store_actions[kind.index()];
        self.stats.stores += 1;
        self.stats.store_ts += act.count_store_t as u64;
        self.trace(|t| {
            t.emit(TraceEvent::StoreIssue {
                addr: addr.raw(),
                log: act.set_log,
                lazy: !act.set_persist,
                honoured: act.honoured,
            });
        });
        self.now += self.cfg.store_issue_cycles;
        self.ensure_l1(addr);
        self.lazy_checks(addr, true, act.set_log && self.core.cur.is_some());
        if self.cfg.battery_backed {
            // Battery mode: a line holding committed-but-unpersisted
            // data must flush before the in-flight transaction
            // overwrites it — at a crash the in-flight line is dropped,
            // so the committed value must already be in the image.
            let flush = {
                let e = self.core.l1.peek(addr.line()).expect("line resident");
                let cur_id = self.core.cur.as_ref().map(|c| c.id);
                e.meta.dirty && (cur_id.is_none() || e.meta.txn_id != cur_id)
            };
            if flush {
                let (line, data) = {
                    let e = self.core.l1.peek_mut(addr.line()).expect("line resident");
                    e.meta.dirty = false;
                    e.meta.txn_id = None;
                    (e.addr, e.data)
                };
                self.persist_line_async(line, &data);
            }
        } else if self.core.cur.is_some() && act.set_log {
            self.log_store(addr, bytes);
        }
        let cur_id = self.core.cur.as_ref().map(|c| c.id);
        let line = addr.line();
        let e = self.core.l1.peek_mut(line).expect("line resident");
        if act.set_persist {
            // A persistent store cancels any lazy deferral of the line
            // (§III-C1): the whole line persists at commit.
            e.meta.persist = true;
            e.meta.lazy_pending = false;
        }
        // A lazy log-free word has neither a record nor permission to
        // persist before its commit marker; track it per word so a
        // sibling eager store (which sets the line's persist bit)
        // cannot drag it into the commit-time in-place persist.
        if act.defer_word && cur_id.is_some() {
            e.meta.set_word_deferred(addr.word_in_line());
        } else {
            e.meta.clear_word_deferred(addr.word_in_line());
        }
        e.meta.dirty = true;
        if cur_id.is_some() {
            e.meta.txn_id = cur_id;
        }
        let off = addr.offset_in_line();
        e.data[off..off + 8].copy_from_slice(&bytes);
        if let Some(cur) = &mut self.core.cur {
            cur.write_set.insert(line.raw());
        }
    }

    /// Stores `data` (word-aligned, whole words) with one instruction
    /// per word.
    ///
    /// # Panics
    ///
    /// Panics on unaligned address or ragged length.
    pub fn store_bytes(&mut self, addr: PmAddr, data: &[u8], kind: StoreKind) {
        assert!(addr.is_word_aligned(), "unaligned store_bytes at {addr}");
        assert!(
            data.len().is_multiple_of(WORD_BYTES),
            "store_bytes length must be whole words"
        );
        for (i, chunk) in data.chunks_exact(WORD_BYTES).enumerate() {
            let mut w = [0u8; WORD_BYTES];
            w.copy_from_slice(chunk);
            self.store_word_bytes(addr.add((i * WORD_BYTES) as u64), w, kind);
        }
    }

    /// Loads `buf.len()` bytes (word-aligned, whole words) with one
    /// instruction per word.
    ///
    /// # Panics
    ///
    /// Panics on unaligned address or ragged length.
    pub fn load_bytes(&mut self, addr: PmAddr, buf: &mut [u8]) {
        assert!(addr.is_word_aligned(), "unaligned load_bytes at {addr}");
        assert!(
            buf.len().is_multiple_of(WORD_BYTES),
            "load_bytes length must be whole words"
        );
        for (i, chunk) in buf.chunks_exact_mut(WORD_BYTES).enumerate() {
            let v = self.load_u64(addr.add((i * WORD_BYTES) as u64));
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    // ------------------------------------------------------------------
    // Transactions

    /// Opens a durable transaction.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open (no nesting).
    pub fn tx_begin(&mut self) {
        assert!(
            self.core.cur.is_none(),
            "nested transactions are not supported"
        );
        assert!(
            self.txreg.free_count() > 0 || self.txreg.outstanding().count() > 0,
            "all four 2-bit transaction contexts are in use ({} suspended threads)",
            self.suspended.len()
        );
        self.txn_seq += 1;
        let id = loop {
            match self.txreg.allocate() {
                Ok(id) => break id,
                Err(oldest) => self.force_persist_through(oldest),
            }
        };
        self.trace(|t| {
            t.emit(TraceEvent::TxnIdAlloc {
                txn: self.txn_seq,
                id: id.raw(),
            });
        });
        self.core.cur = Some(CurTxn {
            seq: self.txn_seq,
            id,
            read_set: BTreeSet::new(),
            write_set: BTreeSet::new(),
        });
        self.stats.tx_begins += 1;
        self.now += self.cfg.tx_begin_cycles;
    }

    /// Commits the open transaction, enforcing the Figure 4 persist
    /// ordering for the configured discipline.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn tx_commit(&mut self) {
        let cur = self
            .core
            .cur
            .take()
            .expect("commit without an open transaction");
        let commit_start = self.now;
        let redo = self.cfg.features.discipline == Discipline::Redo;
        self.trace(|t| t.emit(TraceEvent::CommitBegin { txn: cur.seq }));

        if self.cfg.battery_backed {
            // §V-E: the private caches are inside the persistence
            // domain, so commit needs no data persists — drain any
            // records of overflowed lines, make the marker durable,
            // and clear the transaction's metadata (lines stay dirty;
            // they write back on natural eviction or battery flush).
            let ev = match &mut self.core.log_path {
                LogPath::Tiered(buf) => buf.drain_all(),
                LogPath::Atom(buf) => buf.drain_all(),
                LogPath::Ede(e) => e.drain(),
            };
            if let Some(ev) = ev {
                self.persist_flush(ev, true);
            }
            if self.commit_crash_point == Some(CommitPhase::AfterRecords) {
                // Pre-marker crash: the transaction is still in flight,
                // so the battery flush must drop its lines. Restore the
                // in-flight state before failing.
                self.commit_crash_point = None;
                self.core.cur = Some(cur);
                self.crash();
                return;
            }
            self.now = self.dev.persist_commit_marker(self.now, cur.seq);
            if self.take_crash_point(cur.seq, CommitPhase::AfterMarker) {
                // Marker durable: the battery flush preserved the
                // transaction's (still-tagged) lines, so it is durable.
                return;
            }
            self.dev.truncate_log();
            // Only lines the transaction wrote can carry its tag, so
            // walking the write set finds every tagged line without
            // sweeping both caches (battery mode is single-core, so no
            // other core's lines are involved).
            for &raw in &cur.write_set {
                let addr = PmAddr::new(raw);
                if let Some(e) = self
                    .core
                    .l1
                    .peek_mut(addr)
                    .or_else(|| self.l2.peek_mut(addr))
                {
                    if e.meta.txn_id == Some(cur.id) {
                        e.meta.persist = false;
                        e.meta.log_bits = 0;
                        e.meta.defer_bits = 0;
                        e.meta.txn_id = None;
                    }
                }
            }
            self.txreg.retire_clean(cur.id);
            self.trace(|t| {
                t.emit(TraceEvent::TxnIdRetire {
                    txn: cur.seq,
                    id: cur.id.raw(),
                });
                t.emit(TraceEvent::CommitEnd { txn: cur.seq });
            });
            self.stats.commit_stall_cycles += self.now - commit_start;
            self.stats.tx_commits += 1;
            return;
        }

        // 1. Identify this transaction's lazily-persistent lines:
        //    dirty, persist bit clear, tagged with our ID. Only lines
        //    in the write set can match (stores are the only path that
        //    tags a line), so commit walks the write set — already in
        //    ascending address order — instead of sweeping L1 + L2.
        let mut lazy_lines = std::mem::take(&mut self.scratch_lazy);
        lazy_lines.clear();
        for &raw in &cur.write_set {
            let addr = PmAddr::new(raw);
            if self
                .core
                .l1
                .peek(addr)
                .or_else(|| self.l2.peek(addr))
                .is_some_and(|e| {
                    e.meta.dirty
                        && !e.meta.persist
                        && e.meta.txn_id == Some(cur.id)
                        && !e.meta.lazy_pending
                })
            {
                lazy_lines.push(addr);
            }
        }

        // 2. Discard buffered records of lazy lines — their images are
        //    unnecessary because the lines will not persist eagerly
        //    (§III-B2).
        if !lazy_lines.is_empty() {
            if let LogPath::Tiered(buf) = &mut self.core.log_path {
                let dropped = buf.discard_lines(&lazy_lines);
                self.stats.log_records_discarded += dropped as u64;
            }
        }

        // Partition the persist-bit lines: logged lines (records exist)
        // vs log-free lines. Undo may persist them in any relative
        // order; redo must persist log-free lines *before* the records
        // and logged lines only *after* the marker (Figure 4).
        let mut logged_lines = std::mem::take(&mut self.scratch_logged);
        logged_lines.clear();
        let mut free_lines = std::mem::take(&mut self.scratch_free);
        free_lines.clear();
        for &raw in &cur.write_set {
            let addr = PmAddr::new(raw);
            let Some(e) = self.core.l1.peek(addr).or_else(|| self.l2.peek(addr)) else {
                continue;
            };
            // Multi-core: the shared L2 may hold persist-marked lines
            // of *other* cores' open transactions — commit must only
            // persist its own (the ID filter is vacuous single-core:
            // commit clears the bits it sets). Either way only lines
            // this transaction wrote are candidates, so the write-set
            // walk sees every line the old full-cache sweep saw.
            if e.meta.persist && (!self.multi || e.meta.txn_id == Some(cur.id)) {
                if e.meta.log_bits != 0 {
                    logged_lines.push(addr);
                } else {
                    free_lines.push(addr);
                }
            }
        }

        let mut deferred_mixed = false;
        // Mixed lines whose deferred words `commit_persist_line`
        // withheld: recorded alongside the lazy lines so a later forced
        // persist can find them without sweeping the caches.
        let mut mixed_lines: Vec<PmAddr> = Vec::new();
        if redo {
            // Figure 4 (right): log-free lines → redo records → marker
            // → logged lines (the in-place write-back).
            for &addr in &free_lines {
                if self.commit_persist_line(addr) {
                    deferred_mixed = true;
                    mixed_lines.push(addr);
                }
            }
            // A *mixed* line — log-free words sharing a line with
            // logged words — belongs to both phases: its log-free
            // words have no redo record, so the post-marker write-back
            // is their only durability path, and a crash in the replay
            // window would lose them even though the marker (hence the
            // transaction) is durable. Persist them now, without
            // exposing the logged words' new values: overlay only the
            // non-logged, non-deferred modified words onto the durable
            // image.
            for &addr in &logged_lines {
                let (data, log_bits, defer_bits) = {
                    let e = self
                        .core
                        .l1
                        .peek(addr)
                        .or_else(|| self.l2.peek(addr))
                        .expect("commit line resident");
                    (e.data, e.meta.log_bits, e.meta.defer_bits)
                };
                self.persist_log_free_words_premarker(addr, &data, log_bits, defer_bits);
            }
            let spilled_mixed: Vec<(u64, [u8; LINE_BYTES], u8, u8)> = self
                .core
                .redo_shadow
                .iter()
                .map(|(&a, &(d, b, f))| (a, d, b, f))
                .collect();
            for (a, data, bits, defer) in &spilled_mixed {
                self.persist_log_free_words_premarker(PmAddr::new(*a), data, *bits, *defer);
            }
            if self.take_crash_point(cur.seq, CommitPhase::AfterLogFree) {
                return;
            }
            let ev = match &mut self.core.log_path {
                LogPath::Tiered(buf) => buf.drain_all(),
                _ => unreachable!("redo requires the tiered buffer"),
            };
            if let Some(ev) = ev {
                self.persist_flush(ev, true);
            }
            if self.take_crash_point(cur.seq, CommitPhase::AfterRecords) {
                return;
            }
            self.now = self.dev.persist_commit_marker(self.now, cur.seq);
            if self.take_crash_point(cur.seq, CommitPhase::AfterMarker) {
                return;
            }
            // Write-back: logged lines from the caches and any spilled
            // to the redo shadow. (Spilled lines persist in full: the
            // marker is durable, so their deferred words are committed
            // and may land in place.)
            for &addr in &logged_lines {
                if self.commit_persist_line(addr) {
                    deferred_mixed = true;
                    mixed_lines.push(addr);
                }
            }
            let spilled: Vec<(u64, [u8; LINE_BYTES])> = self
                .core
                .redo_shadow
                .iter()
                .map(|(&a, &(d, _, _))| (a, d))
                .collect();
            for (a, data) in spilled {
                let addr = PmAddr::new(a);
                self.signature_persist_check(addr);
                self.persist_line_sync(addr, &data);
                self.stats.commit_line_persists += 1;
            }
            self.core.redo_shadow.clear();
            self.dev.truncate_log();
        } else {
            // Figure 4 (left): records → data (logged and log-free in
            // any order) → marker.
            let ev = match &mut self.core.log_path {
                LogPath::Tiered(buf) => buf.drain_all(),
                LogPath::Atom(buf) => buf.drain_all(),
                LogPath::Ede(e) => e.drain(),
            };
            if let Some(ev) = ev {
                self.persist_flush(ev, true);
            }
            if self.take_crash_point(cur.seq, CommitPhase::AfterRecords) {
                return;
            }
            for &addr in free_lines.iter().chain(logged_lines.iter()) {
                if self.commit_persist_line(addr) {
                    deferred_mixed = true;
                    mixed_lines.push(addr);
                }
            }
            if self.take_crash_point(cur.seq, CommitPhase::AfterData) {
                return;
            }
            self.now = self.dev.persist_commit_marker(self.now, cur.seq);
            if self.take_crash_point(cur.seq, CommitPhase::AfterMarker) {
                // For undo everything already persisted: the
                // transaction is durable despite the crash.
                return;
            }
            self.dev.truncate_log();
        }

        // Lazy lines stay cached, tagged and pending; record the
        // transaction's dependency set in a signature. A commit whose
        // only deferral came from mixed lines (deferred words withheld
        // by `commit_persist_line`) retires lazy too: those words'
        // durability is still outstanding.
        if lazy_lines.is_empty() && !deferred_mixed {
            self.txreg.retire_clean(cur.id);
            self.trace(|t| {
                t.emit(TraceEvent::TxnIdRetire {
                    txn: cur.seq,
                    id: cur.id.raw(),
                });
            });
        } else {
            for addr in &lazy_lines {
                let e = self
                    .core
                    .l1
                    .peek_mut(*addr)
                    .or_else(|| self.l2.peek_mut(*addr))
                    .expect("lazy line resident");
                e.meta.lazy_pending = true;
                e.meta.log_bits = 0;
                e.meta.defer_bits = 0;
                self.stats.lazy_lines_deferred += 1;
            }
            let mut sig = Signature::new();
            for &l in cur.read_set.difference(&cur.write_set) {
                sig.insert(PmAddr::new(l));
            }
            self.trace(|t| {
                // The exact line set is the aggregator's ground truth
                // for the false-positive rate; the `Vec` is built only
                // when tracing is on.
                t.emit(TraceEvent::SigInsert {
                    txn: cur.seq,
                    id: cur.id.raw(),
                    lines: cur.read_set.difference(&cur.write_set).copied().collect(),
                });
            });
            let mut lines = lazy_lines.clone();
            lines.extend_from_slice(&mixed_lines);
            self.lazy_txns.push(LazyTxn {
                seq: cur.seq,
                id: cur.id,
                sig,
                lines,
            });
            self.txreg.retire_lazy(cur.id);
        }
        self.trace(|t| t.emit(TraceEvent::CommitEnd { txn: cur.seq }));

        self.stats.commit_stall_cycles += self.now - commit_start;
        self.stats.tx_commits += 1;
        self.scratch_lazy = lazy_lines;
        self.scratch_logged = logged_lines;
        self.scratch_free = free_lines;
    }

    /// Redo commit, pre-marker phase: persists the *log-free* words of
    /// a logged (mixed) line by overlaying the line's non-logged
    /// modified words onto the durable image. Logged words keep their
    /// image (pre-transaction) values — their atomicity comes from the
    /// post-marker replay — and deferred words are withheld entirely
    /// (they have no record and asked to persist after commit). The
    /// line's cache metadata is left untouched for the write-back
    /// phase. No persist is issued when every modified word is logged
    /// or deferred (the common case; in particular every FG-RD line).
    fn persist_log_free_words_premarker(
        &mut self,
        addr: PmAddr,
        data: &[u8; LINE_BYTES],
        log_bits: u8,
        defer_bits: u8,
    ) {
        if self.cfg.features.granularity == Granularity::Line && log_bits != 0 {
            // Line-granularity records cover the whole line: replay
            // restores every word, logged or not.
            return;
        }
        let mut merged = self.dev.image().read_line(addr);
        let mut mixed = false;
        for w in 0..LINE_BYTES / WORD_BYTES {
            let r = w * WORD_BYTES..(w + 1) * WORD_BYTES;
            if (log_bits | defer_bits) & (1 << w) == 0 && merged[r.clone()] != data[r.clone()] {
                merged[r.clone()].copy_from_slice(&data[r]);
                mixed = true;
            }
        }
        if mixed {
            self.signature_persist_check(addr);
            self.persist_line_sync(addr, &merged);
            self.stats.commit_line_persists += 1;
        }
    }

    /// Persists one commit-path line and clears its metadata. Deferred
    /// (lazy log-free) words are withheld — they keep their durable
    /// image values, so a pre-marker crash rolls back cleanly with no
    /// record needed — and the line stays cached `lazy_pending`, dirty
    /// and transaction-tagged, so the withheld words become durable
    /// only through the post-commit lazy machinery (forced persists or
    /// natural eviction). Returns `true` when words were withheld: the
    /// caller must then retire the transaction as lazy.
    fn commit_persist_line(&mut self, addr: PmAddr) -> bool {
        self.signature_persist_check(addr);
        let (data, defer_bits) = {
            let e = self
                .core
                .l1
                .peek(addr)
                .or_else(|| self.l2.peek(addr))
                .expect("commit line resident");
            (e.data, e.meta.defer_bits)
        };
        if defer_bits == 0 {
            let e = self
                .core
                .l1
                .peek_mut(addr)
                .or_else(|| self.l2.peek_mut(addr))
                .expect("commit line resident");
            e.meta.persist = false;
            e.meta.dirty = false;
            e.meta.log_bits = 0;
            e.meta.txn_id = None;
            self.persist_line_sync(addr, &data);
            self.stats.commit_line_persists += 1;
            return false;
        }
        let mut merged = self.dev.image().read_line(addr);
        for w in 0..LINE_BYTES / WORD_BYTES {
            if defer_bits & (1 << w) == 0 {
                let r = w * WORD_BYTES..(w + 1) * WORD_BYTES;
                merged[r.clone()].copy_from_slice(&data[r]);
            }
        }
        let e = self
            .core
            .l1
            .peek_mut(addr)
            .or_else(|| self.l2.peek_mut(addr))
            .expect("commit line resident");
        e.meta.persist = false;
        e.meta.log_bits = 0;
        e.meta.defer_bits = 0;
        e.meta.lazy_pending = true;
        self.persist_line_sync(addr, &merged);
        self.stats.commit_line_persists += 1;
        self.stats.lazy_lines_deferred += 1;
        true
    }

    /// Consumes an armed crash injection for `phase`: performs the
    /// power failure and reports `true` if the commit must stop here.
    /// Also the single site stamping the commit persist-ordering trace:
    /// reaching a phase means its stage just completed, crash or not.
    fn take_crash_point(&mut self, txn: u64, phase: CommitPhase) -> bool {
        self.trace(|t| {
            let stage = match phase {
                CommitPhase::AfterLogFree => CommitStage::LogFree,
                CommitPhase::AfterRecords => CommitStage::Records,
                CommitPhase::AfterData => CommitStage::Data,
                CommitPhase::AfterMarker => CommitStage::Marker,
            };
            t.emit(TraceEvent::CommitStageDone { txn, stage });
        });
        if self.commit_crash_point == Some(phase) {
            self.commit_crash_point = None;
            self.crash();
            true
        } else {
            false
        }
    }

    /// Aborts the open transaction (§V-B): clears the log buffer,
    /// invalidates lines updated by the transaction, and applies any
    /// already-persisted undo records back to the image.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn tx_abort(&mut self) {
        let cur = self
            .core
            .cur
            .take()
            .expect("abort without an open transaction");
        self.trace(|t| {
            t.emit(TraceEvent::Abort { txn: cur.seq });
            t.emit(TraceEvent::TxnIdRetire {
                txn: cur.seq,
                id: cur.id.raw(),
            });
        });
        // (1) Clear the log buffer — the records' lines are still in the
        // private cache or were flushed already.
        match &mut self.core.log_path {
            LogPath::Tiered(buf) => buf.clear(),
            LogPath::Atom(buf) => buf.clear(),
            LogPath::Ede(e) => e.clear(),
        }
        // Invalidate the transaction's updated lines in every level.
        let mut doomed: Vec<PmAddr> = Vec::new();
        for cache in [&self.core.l1, &self.l2] {
            for e in cache.iter() {
                if e.meta.txn_id == Some(cur.id) && e.meta.dirty && !e.meta.lazy_pending {
                    doomed.push(e.addr);
                }
            }
        }
        for addr in &doomed {
            self.core.l1.invalidate(*addr);
            self.l2.invalidate(*addr);
            // The L3/image copy may hold stolen (persisted) uncommitted
            // data; the undo application below repairs the image, so
            // drop any stale L3 copy too.
            self.l3.invalidate(*addr);
            for ctx in &mut self.parked {
                ctx.l1.invalidate(*addr);
            }
        }
        // (2) Kernel-assisted revocation. Under undo, apply this
        // transaction's persisted records (pre-images), newest first,
        // and persist the repaired lines. Under redo the image was
        // never touched in place: dropping the shadow and the records
        // suffices.
        self.now += 2000; // interrupt + syscall entry (§V-B)
        if self.cfg.features.discipline == Discipline::Redo {
            self.core.redo_shadow.clear();
        } else {
            let recs: Vec<(PmAddr, PayloadBuf)> = self
                .dev
                .log()
                .records_of(cur.seq)
                .map(|r| (r.addr, r.payload))
                .collect();
            let mut touched: BTreeSet<u64> = BTreeSet::new();
            for (addr, payload) in recs.iter().rev() {
                self.dev.image_mut().write(*addr, payload);
                touched.insert(addr.line().raw());
            }
            for line in touched {
                let la = PmAddr::new(line);
                // Any cached copy (even a clean one fetched moments ago)
                // is stale relative to the repaired image.
                self.core.l1.invalidate(la);
                self.l2.invalidate(la);
                self.l3.invalidate(la);
                for ctx in &mut self.parked {
                    ctx.l1.invalidate(la);
                }
                self.signature_persist_check(la);
                let data = self.dev.image().read_line(la);
                self.persist_line_sync(la, &data);
            }
        }
        // The revocations are durable: the aborted transaction's
        // records must never be replayed by a later recovery pass
        // (they would clobber newer committed data with stale
        // pre-images).
        self.dev.log_mut().drop_txn(cur.seq);
        self.txreg.retire_clean(cur.id);
        self.stats.tx_aborts += 1;
    }

    /// Thread context switch (§V-C): before switching out, the OS
    /// kernel drains the log buffer so the outgoing thread's undo
    /// records are durable; the signatures and transaction-ID
    /// allocation state are left untouched — they are not specific to
    /// a context, and lazy-persistency dependencies keep being tracked
    /// across the switch. The open transaction (if any) resumes when
    /// the thread is scheduled back.
    pub fn context_switch(&mut self) {
        let ev = match &mut self.core.log_path {
            LogPath::Tiered(buf) => buf.drain_all(),
            LogPath::Atom(buf) => buf.drain_all(),
            LogPath::Ede(e) => e.drain(),
        };
        if let Some(ev) = ev {
            self.persist_flush(ev, true);
        }
        self.now += 3000; // kernel entry/exit + state save
    }

    /// Switches the current thread out *with its transaction open*
    /// (§V-C): the kernel drains the log buffer, the transaction's
    /// cache-line metadata stays tagged with its 2-bit ID, and another
    /// thread may begin its own transaction. Returns the suspended
    /// transaction's sequence number for [`resume_txn`](Self::resume_txn).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open, or under the redo discipline
    /// (a suspended redo transaction would leave its shadow ambiguous).
    pub fn suspend_txn(&mut self) -> u64 {
        assert_eq!(
            self.cfg.features.discipline,
            Discipline::Undo,
            "suspension is supported for the undo discipline"
        );
        assert!(
            !self.cfg.battery_backed,
            "suspension with battery-backed caches is unsupported: the \
             failure flush cannot distinguish a suspended transaction's \
             uncommitted lines from committed ones"
        );
        let cur = self
            .core
            .cur
            .take()
            .expect("no open transaction to suspend");
        self.context_switch();
        let seq = cur.seq;
        self.suspended.push(cur);
        seq
    }

    /// Resumes the suspended transaction `seq` (the thread is
    /// scheduled back in).
    ///
    /// # Panics
    ///
    /// Panics if another transaction is active or `seq` is unknown.
    pub fn resume_txn(&mut self, seq: u64) {
        assert!(self.core.cur.is_none(), "a transaction is already active");
        let pos = self
            .suspended
            .iter()
            .position(|t| t.seq == seq)
            .unwrap_or_else(|| panic!("no suspended transaction {seq}"));
        self.core.cur = Some(self.suspended.swap_remove(pos));
        self.now += 3000; // schedule-in
    }

    /// Aborts the suspended transaction `seq` — the conflict-resolution
    /// path when the running thread collides with a switched-out one
    /// (§V-C "detect and resolve the conflicts when a thread is
    /// switched out"; requester wins).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not suspended.
    pub fn abort_suspended(&mut self, seq: u64) {
        let pos = self
            .suspended
            .iter()
            .position(|t| t.seq == seq)
            .unwrap_or_else(|| panic!("no suspended transaction {seq}"));
        let victim = self.suspended.swap_remove(pos);
        self.stats.suspended_aborts += 1;
        // Invalidate the victim's cached updates.
        let mut doomed: Vec<PmAddr> = Vec::new();
        for cache in [&self.core.l1, &self.l2] {
            for e in cache.iter() {
                if e.meta.txn_id == Some(victim.id) && e.meta.dirty && !e.meta.lazy_pending {
                    doomed.push(e.addr);
                }
            }
        }
        for addr in &doomed {
            self.core.l1.invalidate(*addr);
            self.l2.invalidate(*addr);
            self.l3.invalidate(*addr);
        }
        // Apply its persisted undo records (they were drained at
        // suspension), then drop them from the log region.
        self.now += 2000;
        let recs: Vec<(PmAddr, PayloadBuf)> = self
            .dev
            .log()
            .records_of(victim.seq)
            .map(|r| (r.addr, r.payload))
            .collect();
        let mut touched: BTreeSet<u64> = BTreeSet::new();
        for (addr, payload) in recs.iter().rev() {
            self.dev.image_mut().write(*addr, payload);
            touched.insert(addr.line().raw());
        }
        for line in touched {
            let la = PmAddr::new(line);
            // Any cached copy (even a clean one fetched moments ago)
            // is stale relative to the repaired image.
            self.core.l1.invalidate(la);
            self.l2.invalidate(la);
            self.l3.invalidate(la);
            self.signature_persist_check(la);
            let data = self.dev.image().read_line(la);
            self.persist_line_sync(la, &data);
        }
        self.dev.log_mut().drop_txn(victim.seq);
        self.txreg.retire_clean(victim.id);
        self.stats.tx_aborts += 1;
    }

    /// Whether an access to `addr` conflicts with a switched-out
    /// transaction. Detection uses the suspended transactions'
    /// read/write sets (the LogTM-SE-style mechanism the paper borrows
    /// for switched-out threads), which covers lines that were stolen
    /// to PM and lost their cache tags: a write conflicts with either
    /// set, a read only with the write set.
    fn suspended_owner(&self, addr: PmAddr, is_write: bool) -> Option<u64> {
        let line = addr.line().raw();
        self.suspended
            .iter()
            .find(|t| t.write_set.contains(&line) || (is_write && t.read_set.contains(&line)))
            .map(|t| t.seq)
    }

    /// Forces every outstanding lazy transaction's deferred data
    /// durable (the "run four empty transactions" effect of §III-C4,
    /// exposed directly for tests and checkpoints).
    pub fn drain_lazy(&mut self) {
        if let Some(last) = self.lazy_txns.last().map(|lt| lt.id) {
            self.force_persist_through(last);
        }
    }

    /// Simulates a power failure: all volatile state (caches, log
    /// buffer, signatures, transaction registers) is lost; the WPQ
    /// drains (ADR). The durable image and log region survive.
    pub fn crash(&mut self) {
        if self.cfg.battery_backed {
            // The battery flushes every dirty private-cache line except
            // those of the in-flight transaction, which vanish —
            // automatic roll-back of cache-resident updates (§V-E).
            let cur_id = self.core.cur.as_ref().map(|c| c.id);
            let mut dirty: Vec<(PmAddr, [u8; LINE_BYTES])> = Vec::new();
            for cache in [&self.core.l1, &self.l2] {
                for e in cache.iter() {
                    let in_flight = cur_id.is_some() && e.meta.txn_id == cur_id;
                    if e.meta.dirty && !in_flight {
                        dirty.push((e.addr, e.data));
                    }
                }
            }
            dirty.sort_by_key(|(a, _)| a.raw());
            for (addr, data) in dirty {
                self.dev.persist_line(self.now, addr, &data);
            }
        }
        self.dev.crash();
        self.core.l1.clear();
        self.l2.clear();
        self.l3.clear();
        match &mut self.core.log_path {
            LogPath::Tiered(buf) => buf.clear(),
            LogPath::Atom(buf) => buf.clear(),
            LogPath::Ede(e) => e.clear(),
        }
        self.lazy_txns.clear();
        self.txreg.reset();
        self.core.redo_shadow.clear();
        self.core.cur = None;
        self.suspended.clear();
        for ctx in &mut self.parked {
            ctx.l1.clear();
            match &mut ctx.log_path {
                LogPath::Tiered(buf) => buf.clear(),
                LogPath::Atom(buf) => buf.clear(),
                LogPath::Ede(e) => e.clear(),
            }
            ctx.cur = None;
            ctx.redo_shadow.clear();
        }
    }

    /// Mutable device access for recovery (`slpmt_core::recovery`).
    pub(crate) fn device_mut(&mut self) -> &mut PmDevice {
        &mut self.dev
    }

    // ------------------------------------------------------------------
    // Multi-core support (`crate::multi`)

    /// Converts a freshly built machine into an `n`-core one: cores
    /// `1..n` receive private contexts (L1 + log buffer + transaction
    /// slot + redo spill area) parked alongside; core 0's context is
    /// the machine's own fields. L2, L3, the device, the transaction-ID
    /// register and the signature set stay shared.
    ///
    /// # Panics
    ///
    /// Panics when called twice, on a machine that already executed
    /// anything, with battery-backed caches (§V-E has no multi-core
    /// story: the failure flush cannot tell cores apart), or with
    /// `cores` outside `1..=4` (one 2-bit transaction context per core).
    pub(crate) fn enable_multi(&mut self, cores: usize) {
        assert!(!self.multi, "enable_multi called twice");
        assert!(
            (1..=TxnId::COUNT as usize).contains(&cores),
            "core count {cores} outside 1..={} (one 2-bit transaction \
             context per core)",
            TxnId::COUNT
        );
        assert!(
            !self.cfg.battery_backed,
            "battery-backed caches are single-core only"
        );
        assert!(
            self.now == 0 && self.core.cur.is_none() && self.txn_seq == 0,
            "enable_multi requires a fresh machine"
        );
        // A single "multi-core" machine has nobody to conflict with;
        // leaving the flag off keeps it bit-identical to the plain
        // single-core machine (asserted by the wrapper's tests).
        self.multi = cores > 1;
        for _ in 1..cores {
            let mut log_path = match self.cfg.features.buffer {
                BufferKind::Tiered => LogPath::Tiered(TieredLogBuffer::new()),
                BufferKind::AtomLines => LogPath::Atom(AtomLineBuffer::new()),
                BufferKind::EdeDirect => LogPath::Ede(EdeCombiner::new()),
            };
            // Tracing enabled before the cores existed: the new private
            // buffers join the shared tracer too.
            if let (Some(h), LogPath::Tiered(buf)) = (&self.tracer, &mut log_path) {
                buf.set_tracer(Some(h.clone()));
            }
            self.parked.push(Box::new(CoreCtx {
                l1: SetAssocCache::new(self.cfg.caches.l1),
                log_path,
                cur: None,
                redo_shadow: BTreeMap::new(),
            }));
        }
    }

    /// Number of parked core contexts (`cores - 1` after
    /// [`enable_multi`](Self::enable_multi)).
    pub(crate) fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Swaps the active core's private state with parked slot `slot`.
    /// Pure bookkeeping: no cycles, no cache movement — the cores run
    /// concurrently in reality; the wrapper interleaves them onto one
    /// deterministic timeline.
    pub(crate) fn switch_core(&mut self, slot: usize) {
        // Both contexts are boxed, so this exchanges two pointers —
        // activation cost is independent of L1 size or shadow depth.
        std::mem::swap(&mut self.core, &mut self.parked[slot]);
    }

    /// Sequence number of the open transaction parked in `slot`.
    pub(crate) fn parked_cur_seq(&self, slot: usize) -> Option<u64> {
        self.parked[slot].cur.as_ref().map(|c| c.seq)
    }

    /// Sequence number of the *active* core's open transaction.
    pub(crate) fn cur_seq(&self) -> Option<u64> {
        self.core.cur.as_ref().map(|c| c.seq)
    }

    /// LogTM-SE-style conflict check against *parked cores'* open
    /// transactions (the §V-C mechanism, applied across cores): a
    /// write conflicts with either set, a read only with the write
    /// set. Returns the parked slot of the first conflicting owner.
    pub(crate) fn parked_conflict(&self, addr: PmAddr, is_write: bool) -> Option<usize> {
        let line = addr.line().raw();
        let hit = self.parked.iter().position(|c| {
            c.cur.as_ref().is_some_and(|t| {
                t.write_set.contains(&line) || (is_write && t.read_set.contains(&line))
            })
        });
        if let Some(slot) = hit {
            self.trace(|t| {
                t.emit(TraceEvent::CrossConflict {
                    addr: addr.raw(),
                    holder: slot as u8,
                });
            });
        }
        hit
    }

    /// Aborts the open transaction of the parked core in `slot` — the
    /// cross-core conflict-resolution path (requester wins, as for
    /// switched-out threads in §V-C). Mirrors
    /// [`abort_suspended`](Self::abort_suspended): the victim's
    /// buffered records are dropped, its cached updates invalidated
    /// everywhere, and any records it already persisted (drained on
    /// eviction or by an earlier switch) are applied back to the image
    /// under the undo discipline. Returns the aborted sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the slot has no open transaction.
    pub(crate) fn abort_parked(&mut self, slot: usize) -> u64 {
        let victim = self.parked[slot]
            .cur
            .take()
            .expect("no open transaction on parked core");
        self.stats.cross_core_aborts += 1;
        self.trace(|t| {
            t.emit(TraceEvent::CrossAbort {
                victim: slot as u8,
                txn: victim.seq,
            });
        });
        let undo = self.cfg.features.discipline == Discipline::Undo;
        // Collect the victim's still-buffered records: under undo
        // they carry pre-images the repair needs (their data may
        // already sit in the victim's L1 merged with committed sibling
        // words). Under redo they hold new values and are dropped.
        let buffered: Vec<(PmAddr, PayloadBuf)> = {
            let ev = match &mut self.parked[slot].log_path {
                LogPath::Tiered(buf) => buf.drain_all(),
                LogPath::Atom(buf) => buf.drain_all(),
                LogPath::Ede(e) => e.drain(),
            };
            ev.into_iter()
                .flat_map(|ev| ev.entries)
                .filter(|e| e.txn == victim.seq)
                .map(|e| (e.addr, e.payload))
                .collect()
        };
        // Validate the victim's durable records before repairing from
        // them: a torn or corrupt record seen here (the crash tripped
        // mid-trace with a tearing fault plan armed) must abort the
        // repair deterministically rather than replay garbage onto the
        // image. The records stay in the log, so post-crash recovery —
        // which runs the full validate phase — finishes the roll-back
        // from whatever is intact.
        let repair_tainted = undo
            && self
                .dev
                .log()
                .records_of(victim.seq)
                .any(|r| !r.is_intact());
        if repair_tainted {
            self.stats.cross_core_repair_aborts += 1;
        }
        self.trace(|t| {
            let records = self.dev.log().records_of(victim.seq).count() + buffered.len();
            t.emit(TraceEvent::CrossRepair {
                victim: slot as u8,
                records: records.min(u32::MAX as usize) as u32,
                deferred: repair_tainted,
            });
        });
        // Compute the undo repairs *before* invalidating anything: the
        // pre-images apply onto the line's coherent contents, because
        // the image can be stale — a sibling word's only up-to-date
        // copy may be a committed-but-lazy cached value the victim
        // took over.
        let repairs: Vec<(PmAddr, [u8; LINE_BYTES])> = if undo && !repair_tainted {
            let mut per_line: BTreeMap<u64, Vec<(PmAddr, PayloadBuf)>> = BTreeMap::new();
            for r in self.dev.log().records_of(victim.seq) {
                per_line
                    .entry(r.addr.line().raw())
                    .or_default()
                    .push((r.addr, r.payload));
            }
            for (addr, payload) in &buffered {
                per_line
                    .entry(addr.line().raw())
                    .or_default()
                    .push((*addr, *payload));
            }
            per_line
                .into_iter()
                .map(|(line, recs)| {
                    let la = PmAddr::new(line);
                    let mut data = [0u8; LINE_BYTES];
                    self.peek_bytes(la, &mut data);
                    // Newest-first, so the oldest pre-image of a word
                    // lands last (a word is logged at most once per
                    // transaction, but line-granularity records can
                    // overlap).
                    for (addr, payload) in recs.iter().rev() {
                        let off = (addr.raw() - line) as usize;
                        data[off..off + payload.len()].copy_from_slice(payload);
                    }
                    (la, data)
                })
                .collect()
        } else {
            Vec::new()
        };
        // Invalidate the victim's cached updates: its private L1 plus
        // the shared levels (lines it evicted while it was active).
        let mut doomed: Vec<PmAddr> = Vec::new();
        for e in self.parked[slot].l1.iter().chain(self.l2.iter()) {
            if e.meta.txn_id == Some(victim.id) && e.meta.dirty && !e.meta.lazy_pending {
                doomed.push(e.addr);
            }
        }
        for addr in &doomed {
            self.core.l1.invalidate(*addr);
            self.l2.invalidate(*addr);
            self.l3.invalidate(*addr);
            for ctx in &mut self.parked {
                ctx.l1.invalidate(*addr);
            }
        }
        self.now += 2000; // interrupt + syscall entry (§V-B)
        if !undo {
            self.parked[slot].redo_shadow.clear();
        }
        // Repair through the gated device path — the image is never
        // mutated out of band, so a persist-event crash tripping
        // mid-abort leaves an exact event-prefix durable state, with
        // the surviving records still rolling the victim back at
        // recovery.
        for (la, data) in repairs {
            self.core.l1.invalidate(la);
            self.l2.invalidate(la);
            self.l3.invalidate(la);
            for ctx in &mut self.parked {
                ctx.l1.invalidate(la);
            }
            self.signature_persist_check(la);
            self.persist_line_sync(la, &data);
        }
        // Keep the records when a crash tripped mid-repair — or when
        // the repair was aborted on a tainted record: recovery still
        // needs them to finish the roll-back.
        if !self.dev.crash_tripped() && !repair_tainted {
            self.dev.log_mut().drop_txn(victim.seq);
        }
        self.txreg.retire_clean(victim.id);
        self.stats.tx_aborts += 1;
        victim.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(scheme: Scheme) -> Machine {
        Machine::new(MachineConfig::for_scheme(scheme))
    }

    fn tiny(scheme: Scheme) -> Machine {
        Machine::new(MachineConfig::for_scheme(scheme).with_tiny_caches())
    }

    const A: PmAddr = PmAddr::new(0x10000);

    #[test]
    fn load_returns_setup_value() {
        let mut m = machine(Scheme::Slpmt);
        m.setup_write(A, &42u64.to_le_bytes());
        assert_eq!(m.load_u64(A), 42);
        assert_eq!(m.stats().loads, 1);
    }

    #[test]
    fn store_outside_txn_is_volatile_until_eviction() {
        let mut m = machine(Scheme::Slpmt);
        m.store_u64(A, 7, StoreKind::Store);
        assert_eq!(m.peek_u64(A), 7);
        // Not yet durable: it sits dirty in L1.
        assert_eq!(m.device().image().read_u64(A), 0);
    }

    #[test]
    fn committed_store_is_durable() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::Store);
        m.tx_commit();
        assert_eq!(m.device().image().read_u64(A), 7);
        assert_eq!(m.stats().commit_line_persists, 1);
        assert_eq!(m.stats().log_records_created, 1);
    }

    #[test]
    fn undo_ordering_logs_before_data() {
        // After commit the log was truncated, but traffic shows both the
        // record and the data line were persisted.
        let mut m = machine(Scheme::Fg);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::Store);
        m.tx_commit();
        let t = m.device().traffic();
        assert!(t.log_records >= 1);
        assert_eq!(t.data_lines, 1);
    }

    #[test]
    fn log_free_store_creates_no_record() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::log_free());
        m.tx_commit();
        assert_eq!(m.stats().log_records_created, 0);
        // But the data still persisted eagerly.
        assert_eq!(m.device().image().read_u64(A), 7);
    }

    #[test]
    fn log_free_ignored_by_baseline() {
        let mut m = machine(Scheme::Fg);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::log_free());
        m.tx_commit();
        assert_eq!(m.stats().log_records_created, 1, "FG logs everything");
    }

    #[test]
    fn lazy_line_stays_volatile_after_commit() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_log_free());
        m.tx_commit();
        assert_eq!(m.peek_u64(A), 7);
        assert_eq!(m.device().image().read_u64(A), 0, "deferred");
        assert_eq!(m.stats().lazy_lines_deferred, 1);
        assert_eq!(m.outstanding_lazy_txns(), 1);
    }

    #[test]
    fn drain_lazy_makes_deferred_data_durable() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_log_free());
        m.tx_commit();
        m.drain_lazy();
        assert_eq!(m.device().image().read_u64(A), 7);
        assert_eq!(m.stats().lazy_lines_forced, 1);
        assert_eq!(m.outstanding_lazy_txns(), 0);
    }

    #[test]
    fn lazy_logged_discards_record_when_line_cached() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_logged());
        m.tx_commit();
        assert_eq!(m.stats().log_records_created, 1);
        assert_eq!(m.stats().log_records_discarded, 1);
        assert_eq!(
            m.device().traffic().log_records,
            1,
            "only the commit marker"
        );
    }

    #[test]
    fn eager_store_does_not_cancel_deferral_of_other_words() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_log_free());
        m.store_u64(A.add(8), 8, StoreKind::Store); // same line, eager
        m.tx_commit();
        // The eager word is durable at commit, but the lazy log-free
        // word has no record and must not reach PM before the marker:
        // commit merges the image value for the deferred word and the
        // line stays pending (the Pattern 1 free case).
        assert_eq!(m.device().image().read_u64(A.add(8)), 8);
        assert_eq!(m.device().image().read_u64(A), 0, "still deferred");
        assert_eq!(m.stats().lazy_lines_deferred, 1);
        m.drain_lazy();
        assert_eq!(m.device().image().read_u64(A), 7);
        assert_eq!(m.device().image().read_u64(A.add(8)), 8);
    }

    #[test]
    fn eager_store_cancels_deferral_of_its_own_word() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_log_free());
        m.store_u64(A, 8, StoreKind::Store); // same word, eager
        m.tx_commit();
        // The overwrite supersedes the deferral: the word is logged
        // and persists in place at commit like any eager store.
        assert_eq!(m.device().image().read_u64(A), 8);
        assert_eq!(m.stats().lazy_lines_deferred, 0);
    }

    #[test]
    fn store_to_foreign_lazy_line_takes_ownership() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_log_free());
        m.tx_commit();
        // A later transaction overwrites the deferred line with an
        // eager store: the deferral is cancelled (§III-C1) and the
        // line persists at the new transaction's commit.
        m.tx_begin();
        m.store_u64(A, 9, StoreKind::Store);
        m.tx_commit();
        assert_eq!(m.device().image().read_u64(A), 9);
        // The earlier transaction no longer owns any deferred line;
        // draining it persists nothing new.
        let forced_before = m.stats().lazy_lines_forced;
        m.drain_lazy();
        assert_eq!(m.stats().lazy_lines_forced, forced_before);
        assert_eq!(m.device().image().read_u64(A), 9);
    }

    #[test]
    fn lazy_store_to_foreign_lazy_line_reowns_it() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_log_free());
        m.tx_commit();
        m.tx_begin();
        m.store_u64(A, 9, StoreKind::lazy_log_free());
        m.tx_commit();
        assert_eq!(m.device().image().read_u64(A), 0, "still deferred");
        assert_eq!(m.peek_u64(A), 9);
        m.drain_lazy();
        assert_eq!(m.device().image().read_u64(A), 9, "newest value persists");
    }

    #[test]
    fn load_of_foreign_lazy_line_forces_persistence() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_log_free());
        m.tx_commit();
        m.tx_begin();
        let v = m.load_u64(A);
        assert_eq!(v, 7);
        assert_eq!(m.device().image().read_u64(A), 7);
        m.tx_commit();
    }

    #[test]
    fn id_recycling_persists_oldest() {
        let mut m = machine(Scheme::Slpmt);
        // Five lazy transactions on distinct lines exhaust the four IDs.
        for i in 0..5u64 {
            m.tx_begin();
            m.store_u64(
                PmAddr::new(0x10000 + i * 64),
                i + 1,
                StoreKind::lazy_log_free(),
            );
            m.tx_commit();
        }
        // The first transaction's data was forced durable.
        assert_eq!(m.device().image().read_u64(PmAddr::new(0x10000)), 1);
        // The most recent is still deferred.
        assert_eq!(
            m.device().image().read_u64(PmAddr::new(0x10000 + 4 * 64)),
            0
        );
        assert_eq!(m.outstanding_lazy_txns(), 4);
    }

    #[test]
    fn sustained_lazy_transactions_bound_deferral() {
        // §III-C2/C4: with every transaction deferring data, ID
        // recycling forces each transaction durable within four
        // successors — early data can never stay volatile forever.
        let mut m = machine(Scheme::Slpmt);
        for i in 0..8u64 {
            m.tx_begin();
            m.store_u64(
                PmAddr::new(0x10000 + i * 64),
                i + 1,
                StoreKind::lazy_log_free(),
            );
            m.tx_commit();
        }
        for i in 0..4u64 {
            assert_eq!(
                m.device().image().read_u64(PmAddr::new(0x10000 + i * 64)),
                i + 1,
                "transaction {i} forced by ID recycling"
            );
        }
        // And drain_lazy flushes the tail explicitly (the paper's
        // empty-transaction idiom).
        m.drain_lazy();
        for i in 4..8u64 {
            assert_eq!(
                m.device().image().read_u64(PmAddr::new(0x10000 + i * 64)),
                i + 1
            );
        }
    }

    #[test]
    fn crash_loses_volatile_keeps_durable() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::Store);
        m.tx_commit();
        m.tx_begin();
        m.store_u64(A.add(64), 9, StoreKind::lazy_log_free());
        m.tx_commit();
        m.crash();
        assert_eq!(m.device().image().read_u64(A), 7);
        assert_eq!(m.device().image().read_u64(A.add(64)), 0, "lazy data lost");
        assert_eq!(m.peek_u64(A), 7, "reads fall back to the image");
    }

    #[test]
    fn abort_rolls_back_cached_updates() {
        let mut m = machine(Scheme::Slpmt);
        m.setup_write(A, &1u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        assert_eq!(m.peek_u64(A), 99);
        m.tx_abort();
        assert_eq!(m.peek_u64(A), 1);
        assert_eq!(m.stats().tx_aborts, 1);
    }

    #[test]
    fn abort_rolls_back_stolen_lines() {
        // Tiny caches force mid-transaction overflow (steal); the
        // persisted undo records must repair the image on abort.
        let mut m = tiny(Scheme::Fg);
        m.setup_write(A, &5u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 99, StoreKind::Store);
        // Thrash the caches so line A overflows to PM.
        for i in 0..512u64 {
            m.store_u64(PmAddr::new(0x40000 + i * 64), i, StoreKind::Store);
        }
        m.tx_abort();
        assert_eq!(m.peek_u64(A), 5, "stolen update revoked");
        assert_eq!(m.device().image().read_u64(A), 5);
    }

    #[test]
    fn overflow_persists_lazy_data_naturally() {
        let mut m = tiny(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_log_free());
        m.tx_commit();
        for i in 0..512u64 {
            m.load_u64(PmAddr::new(0x40000 + i * 64));
        }
        assert_eq!(m.device().image().read_u64(A), 7, "overflowed to PM");
        assert!(m.stats().lazy_lines_overflowed >= 1);
    }

    #[test]
    fn word_logging_creates_one_record_per_word() {
        let mut m = machine(Scheme::Fg);
        m.tx_begin();
        m.store_u64(A, 1, StoreKind::Store);
        m.store_u64(A, 2, StoreKind::Store); // same word: no new record
        m.store_u64(A.add(8), 3, StoreKind::Store); // new word: record
        m.tx_commit();
        assert_eq!(m.stats().log_records_created, 2);
    }

    #[test]
    fn line_granularity_logs_whole_line_once() {
        let mut m = machine(Scheme::FgCl);
        m.tx_begin();
        m.store_u64(A, 1, StoreKind::Store);
        m.store_u64(A.add(8), 2, StoreKind::Store);
        m.tx_commit();
        assert_eq!(m.stats().log_records_created, 1);
        // The single record covers the full 64-byte line (+8 tag).
        assert!(m.device().traffic().log_bytes >= 72);
    }

    #[test]
    fn atom_traffic_exceeds_fg_for_sparse_updates() {
        let run = |scheme| {
            let mut m = machine(scheme);
            m.tx_begin();
            for i in 0..8u64 {
                m.store_u64(PmAddr::new(0x10000 + i * 64), i, StoreKind::Store);
            }
            m.tx_commit();
            m.device().traffic().total_bytes()
        };
        assert!(
            run(Scheme::Atom) > run(Scheme::Fg),
            "line-granularity records cost more than coalesced words"
        );
    }

    #[test]
    fn ede_traffic_exceeds_fg_for_coalescible_runs() {
        // Sequential multi-word writes: the tiered buffer buddy-merges
        // each line's eight word records into one 72-byte line record,
        // while bufferless EDE pays eight 16-byte records per line.
        let run = |scheme| {
            let mut m = machine(scheme);
            m.tx_begin();
            for i in 0..32u64 {
                m.store_u64(PmAddr::new(0x10000 + i * 8), i, StoreKind::Store);
            }
            m.tx_commit();
            m.device().traffic().log_bytes
        };
        let ede = run(Scheme::Ede);
        let fg = run(Scheme::Fg);
        assert!(
            ede > fg,
            "EDE {ede} B vs FG {fg} B: buffer coalescing must win"
        );
    }

    #[test]
    fn slpmt_beats_fg_on_a_log_free_value_write() {
        let run = |scheme| {
            let mut m = machine(scheme);
            m.tx_begin();
            // A freshly allocated 256-byte value: log-free candidate.
            let val = vec![0xCD; 256];
            m.store_bytes(PmAddr::new(0x20000), &val, StoreKind::log_free());
            // One logged metadata update.
            m.store_u64(A, 1, StoreKind::Store);
            m.tx_commit();
            (m.now(), m.device().traffic().total_bytes())
        };
        let (t_slpmt, b_slpmt) = run(Scheme::Slpmt);
        let (t_fg, b_fg) = run(Scheme::Fg);
        assert!(b_slpmt < b_fg, "selective logging reduces traffic");
        assert!(t_slpmt < t_fg, "and reduces commit latency");
    }

    #[test]
    fn speculative_logging_survives_eviction_round_trip() {
        let mut m = tiny(Scheme::Slpmt);
        m.tx_begin();
        // Log three words of a group, then evict the line from L1 (but
        // not from L2: the thrash lines share A's L1 set — tiny L1 has
        // 4 sets — while landing in different L2 sets).
        for w in 0..3u64 {
            m.store_u64(A.add(w * 8), w, StoreKind::Store);
        }
        let created_before = m.stats().log_records_created;
        assert_eq!(created_before, 3);
        for line_no in [4u64, 8, 12, 20] {
            m.load_u64(PmAddr::new(line_no * 64));
        }
        assert!(m.core.l1.peek(A).is_none(), "A evicted from L1");
        assert!(m.l2.peek(A).is_some(), "A still in L2");
        // Re-store one of the words: with speculative logging the group
        // bit survived the round trip, so no duplicate record appears.
        let spec_created = m.stats().log_records_created;
        m.store_u64(A, 99, StoreKind::Store);
        assert_eq!(
            m.stats().log_records_created,
            spec_created,
            "group aggregated by speculative fill — no re-log"
        );
        m.tx_commit();
    }

    #[test]
    fn peek_bytes_merges_cache_and_image() {
        let mut m = machine(Scheme::Slpmt);
        m.setup_write(A, &[1u8; 128]);
        m.tx_begin();
        m.store_u64(A.add(64), 0xFFFF_FFFF_FFFF_FFFF, StoreKind::Store);
        let mut buf = [0u8; 128];
        m.peek_bytes(A, &mut buf);
        assert_eq!(buf[0], 1);
        assert_eq!(buf[64], 0xFF);
        assert_eq!(buf[72], 1);
        m.tx_commit();
    }

    #[test]
    #[should_panic(expected = "nested transactions")]
    fn nested_txn_rejected() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.tx_begin();
    }

    #[test]
    #[should_panic(expected = "bypass a cached copy")]
    fn setup_write_through_cache_rejected() {
        let mut m = machine(Scheme::Slpmt);
        m.load_u64(A);
        m.setup_write(A, &1u64.to_le_bytes());
    }

    #[test]
    fn timing_monotonicity_and_commit_stall() {
        let mut m = machine(Scheme::Fg);
        let t0 = m.now();
        m.tx_begin();
        m.store_u64(A, 1, StoreKind::Store);
        let t1 = m.now();
        assert!(t1 > t0);
        m.tx_commit();
        assert!(m.now() > t1);
        assert!(m.stats().commit_stall_cycles > 0);
    }

    #[test]
    fn context_switch_drains_the_log_buffer() {
        // §V-C: before a switch the kernel drains the log buffer; the
        // open transaction then resumes and commits normally.
        let mut m = machine(Scheme::Slpmt);
        m.setup_write(A, &1u64.to_le_bytes());
        m.tx_begin();
        m.store_u64(A, 2, StoreKind::Store);
        assert_eq!(m.device().log().len(), 0, "record still buffered");
        m.context_switch();
        assert_eq!(m.device().log().len(), 1, "record persisted at switch");
        // Resume: more stores, then a normal commit.
        m.store_u64(A.add(8), 3, StoreKind::Store);
        m.tx_commit();
        assert_eq!(m.device().image().read_u64(A), 2);
        assert_eq!(m.device().image().read_u64(A.add(8)), 3);
        // Crash-interruption after a switch still rolls back cleanly.
        m.tx_begin();
        m.store_u64(A, 9, StoreKind::Store);
        m.context_switch();
        m.crash();
        let report = m.recover();
        assert!(report.undo_applied >= 1, "switched-out record replayed");
        assert_eq!(m.device().image().read_u64(A), 2);
    }

    #[test]
    fn context_switch_leaves_lazy_tracking_intact() {
        let mut m = machine(Scheme::Slpmt);
        m.tx_begin();
        m.store_u64(A, 7, StoreKind::lazy_log_free());
        m.tx_commit();
        m.context_switch();
        assert_eq!(m.outstanding_lazy_txns(), 1, "signatures survive switches");
        m.drain_lazy();
        assert_eq!(m.device().image().read_u64(A), 7);
    }

    #[test]
    fn write_latency_sweep_slows_commit() {
        let run = |ns| {
            let mut m = machine(Scheme::Fg);
            m.set_write_latency_ns(ns);
            m.tx_begin();
            for i in 0..32u64 {
                m.store_u64(PmAddr::new(0x10000 + i * 64), i, StoreKind::Store);
            }
            m.tx_commit();
            m.now()
        };
        assert!(run(2300) > run(500));
    }
}
