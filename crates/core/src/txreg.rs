//! The circular transaction-ID register (§III-C2).
//!
//! Each core owns four 2-bit transaction IDs. The register keeps the
//! paper's first/last-free pointer pair: free IDs form a contiguous
//! arc of the circle, allocation takes the first free ID and a cleanly
//! retired ID re-joins at the tail. An ID stays *outstanding* after
//! its transaction commits with lazily-persistent data, until that
//! data is forced to persistent memory. When the free arc empties, the
//! allocator reports the **oldest** outstanding ID ("the one next to
//! the last free ID") so the caller persists that transaction's lazy
//! data first — organising the IDs as a circle thereby bounds how long
//! early transactions' data can stay volatile (§III-C4; the
//! [`Machine::drain_lazy`](crate::Machine::drain_lazy) helper provides
//! the explicit full flush).

use slpmt_cache::TxnId;
use std::collections::VecDeque;

/// Allocator for the per-core 2-bit transaction IDs.
///
/// ```
/// use slpmt_core::TxnIdRegister;
/// let mut reg = TxnIdRegister::new();
/// let id = reg.allocate().unwrap();
/// reg.retire_lazy(id);                 // committed with deferred data
/// assert_eq!(reg.outstanding().count(), 1);
/// let freed = reg.reclaim_through(id); // deferred data persisted
/// assert_eq!(freed, vec![id]);
/// ```
#[derive(Debug, Clone)]
pub struct TxnIdRegister {
    /// The free arc, first-free at the front.
    free: VecDeque<TxnId>,
    /// IDs of committed transactions whose lazy data is still volatile,
    /// oldest first.
    outstanding: VecDeque<TxnId>,
}

impl Default for TxnIdRegister {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnIdRegister {
    /// Creates a register with all four IDs free, in circular order.
    pub fn new() -> Self {
        TxnIdRegister {
            free: (0..TxnId::COUNT).map(TxnId::new).collect(),
            outstanding: VecDeque::new(),
        }
    }

    /// Allocates the first free ID.
    ///
    /// # Errors
    ///
    /// When the free arc is empty, returns `Err(oldest)` — the caller
    /// must persist the lazy data of that transaction, call
    /// [`reclaim_through`](Self::reclaim_through), and retry.
    pub fn allocate(&mut self) -> Result<TxnId, TxnId> {
        match self.free.pop_front() {
            Some(id) => Ok(id),
            None => Err(*self
                .outstanding
                .front()
                .expect("no free and no outstanding IDs — an ID leaked")),
        }
    }

    /// Marks a committed transaction's ID as outstanding (it still owns
    /// unpersisted lazy data).
    ///
    /// # Panics
    ///
    /// Panics on a double retire: a retired ID re-entering the circle
    /// would grow it past four entries and corrupt the oldest-first
    /// reclaim order lazy persistency depends on, so the invariant is
    /// enforced in every build (the circle has only four slots — the
    /// containment scans are trivially cheap).
    pub fn retire_lazy(&mut self, id: TxnId) {
        assert!(
            !self.outstanding.contains(&id),
            "double retire: {id:?} is already outstanding"
        );
        assert!(
            !self.free.contains(&id),
            "double retire: {id:?} is already free"
        );
        self.outstanding.push_back(id);
    }

    /// Returns an ID whose transaction committed with nothing deferred:
    /// it re-joins the free arc at the tail (the last-free pointer
    /// advances).
    ///
    /// # Panics
    ///
    /// Panics on a double retire, like [`retire_lazy`](Self::retire_lazy).
    pub fn retire_clean(&mut self, id: TxnId) {
        assert!(
            !self.outstanding.contains(&id),
            "double retire: {id:?} is already outstanding"
        );
        assert!(
            !self.free.contains(&id),
            "double retire: {id:?} is already free"
        );
        self.free.push_back(id);
    }

    /// Reclaims every outstanding ID up to and including `id` (the
    /// persist-prior-transactions rule of §III-C2), returning them in
    /// oldest-first order. Returns an empty vector if `id` is not
    /// outstanding.
    pub fn reclaim_through(&mut self, id: TxnId) -> Vec<TxnId> {
        let Some(pos) = self.outstanding.iter().position(|&o| o == id) else {
            return Vec::new();
        };
        let mut freed = Vec::with_capacity(pos + 1);
        for _ in 0..=pos {
            let f = self.outstanding.pop_front().expect("position in range");
            self.free.push_back(f);
            freed.push(f);
        }
        freed
    }

    /// Outstanding IDs, oldest first.
    pub fn outstanding(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.outstanding.iter().copied()
    }

    /// `true` if `id` is outstanding (committed, data still deferred).
    pub fn is_outstanding(&self, id: TxnId) -> bool {
        self.outstanding.contains(&id)
    }

    /// Number of free IDs.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Resets to the boot state (crash).
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_in_circular_order() {
        let mut r = TxnIdRegister::new();
        let ids: Vec<u8> = (0..6)
            .map(|_| {
                let id = r.allocate().unwrap();
                r.retire_clean(id);
                id.raw()
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn one_outstanding_id_does_not_block_allocation() {
        // The lazy transaction's data stays deferred while the other
        // three IDs rotate through the free arc.
        let mut r = TxnIdRegister::new();
        let lazy = r.allocate().unwrap();
        r.retire_lazy(lazy);
        for _ in 0..32 {
            let id = r.allocate().unwrap();
            assert_ne!(id, lazy);
            r.retire_clean(id);
        }
        assert!(r.is_outstanding(lazy));
    }

    #[test]
    fn exhaustion_reports_oldest_outstanding() {
        let mut r = TxnIdRegister::new();
        for _ in 0..4 {
            let id = r.allocate().unwrap();
            r.retire_lazy(id);
        }
        let blocked = r.allocate().unwrap_err();
        assert_eq!(blocked.raw(), 0, "oldest outstanding first");
    }

    #[test]
    fn reclaim_through_frees_prefix() {
        let mut r = TxnIdRegister::new();
        let ids: Vec<_> = (0..4).map(|_| r.allocate().unwrap()).collect();
        for &id in &ids {
            r.retire_lazy(id);
        }
        let freed = r.reclaim_through(ids[2]);
        assert_eq!(freed, ids[..3].to_vec());
        assert_eq!(r.free_count(), 3);
        assert!(r.is_outstanding(ids[3]));
        // Freed IDs re-join the arc in order.
        assert_eq!(r.allocate().unwrap(), ids[0]);
    }

    #[test]
    fn reclaim_unknown_id_is_noop() {
        let mut r = TxnIdRegister::new();
        let id = r.allocate().unwrap();
        assert!(r.reclaim_through(id).is_empty());
        assert_eq!(r.free_count(), 3);
    }

    #[test]
    fn sustained_lazy_pressure_recycles_oldest() {
        // Every transaction retires lazy: each new allocation beyond
        // the four IDs must reclaim the oldest outstanding one, so no
        // transaction's data stays volatile for more than four
        // successors (§III-C2's boundedness guarantee).
        let mut r = TxnIdRegister::new();
        let mut reclaimed = Vec::new();
        for _ in 0..8 {
            let id = loop {
                match r.allocate() {
                    Ok(id) => break id,
                    Err(oldest) => {
                        reclaimed.push(oldest.raw());
                        r.reclaim_through(oldest);
                    }
                }
            };
            r.retire_lazy(id);
        }
        assert_eq!(reclaimed, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "double retire")]
    fn double_retire_clean_rejected() {
        let mut r = TxnIdRegister::new();
        let id = r.allocate().unwrap();
        r.retire_clean(id);
        r.retire_clean(id);
    }

    #[test]
    #[should_panic(expected = "double retire")]
    fn double_retire_lazy_rejected() {
        let mut r = TxnIdRegister::new();
        let id = r.allocate().unwrap();
        r.retire_lazy(id);
        r.retire_lazy(id);
    }

    #[test]
    #[should_panic(expected = "double retire")]
    fn lazy_then_clean_retire_rejected() {
        let mut r = TxnIdRegister::new();
        let id = r.allocate().unwrap();
        r.retire_lazy(id);
        r.retire_clean(id);
    }

    #[test]
    fn reset_restores_boot_state() {
        let mut r = TxnIdRegister::new();
        let id = r.allocate().unwrap();
        r.retire_lazy(id);
        r.reset();
        assert_eq!(r.free_count(), 4);
        assert_eq!(r.outstanding().count(), 0);
        assert_eq!(r.allocate().unwrap().raw(), 0);
    }
}
